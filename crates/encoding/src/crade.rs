//! The CRADE baseline codec \[61\]: FPC compression followed by
//! compression-ratio-aware expansion coding, with no awareness of log data.
//!
//! CRADE is the "existing coding mechanism" every FWB-* and MorLog-CRADE
//! configuration in the evaluation uses. It is implemented by
//! [`SldeCodec`] with the DLDC path disabled; this module provides the
//! conventionally named constructor plus CRADE-specific tests.

use crate::cell::CellModel;
use crate::slde::SldeCodec;

/// Constructor alias for the CRADE configuration of the codec.
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, crade::CradeCodec};
/// let codec = CradeCodec::new(CellModel::table_iii());
/// assert!(!codec.dldc_enabled());
/// ```
#[derive(Debug, Clone)]
pub struct CradeCodec;

impl CradeCodec {
    /// Builds an [`SldeCodec`] configured as the CRADE baseline.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(model: CellModel) -> SldeCodec {
        SldeCodec::crade(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::ExpansionMode;
    use crate::slde::LogWordRequest;
    use morlog_sim_core::LineData;

    #[test]
    fn crade_compresses_and_expands() {
        let codec = CradeCodec::new(CellModel::table_iii());
        let mut line = LineData::zeroed();
        for i in 0..8 {
            line.set_word(i, i as u64); // small integers, highly compressible
        }
        let region = codec.encode_data_block(&line);
        // Small integers compress far enough for the widest expansion.
        for seg in &region.segments {
            assert_eq!(seg.mode, ExpansionMode::Idm1);
        }
        assert_eq!(codec.decode_data_block(&region), line);
    }

    #[test]
    fn crade_log_entry_keeps_fpc_for_log_data() {
        let codec = CradeCodec::new(CellModel::table_iii());
        let old = 0xAAAA_AAAA_AAAA_AAAAu64;
        let new = 0xAAAA_AAAA_AAAA_AAABu64; // 1 dirty byte: DLDC would win, CRADE cannot
        let region = codec.encode_log_entry(&[], &[LogWordRequest::redo(new, old)], 1, 96);
        assert!(region
            .choices
            .iter()
            .all(|&c| c == crate::slde::EncodingChoice::Fpc));
        let (_, d) = codec.decode_log_entry(&region, 0, &[true], &[old]);
        assert_eq!(d, vec![new]);
    }

    #[test]
    fn fig4_example_sizes() {
        // Fig. 4(b): undo 0xFFFFFFFFABCDEFFF and redo 0xFFFFFFFFABCDF000 both
        // FPC-compress to tag+32 bits under CRADE.
        let codec = CradeCodec::new(CellModel::table_iii());
        let undo = codec.encode_log_word(&LogWordRequest::redo(
            0xFFFF_FFFF_ABCD_EFFF,
            0xFFFF_FFFF_ABCD_F000,
        ));
        assert_eq!(undo.payload_bits, 2 + 3 + 32); // choice flag + FPC tag + payload
    }
}
