//! 64-bit frequent-pattern compression (FPC), after Palangappa & Mohanram
//! (CompEx, HPCA'16) as used by CRADE \[61\] and Fig. 4 of the MorLog paper.
//!
//! Each 64-bit word is matched against a small set of frequent patterns and
//! replaced by a 3-bit prefix plus the pattern's payload. Unmatchable words
//! are stored uncompressed behind the escape prefix.

/// The eight 64-bit FPC patterns. Discriminants are the 3-bit prefix values.
///
/// # Example
///
/// ```
/// use morlog_encoding::fpc::{compress_word, FpcPattern};
/// // Fig. 4: 0xFFFFFFFFABCDEFFF sign-extends from its low 32 bits.
/// let e = compress_word(0xFFFF_FFFF_ABCD_EFFF);
/// assert_eq!(e.pattern, FpcPattern::SignExt32);
/// assert_eq!(e.total_bits(), 3 + 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpcPattern {
    /// The word is zero. Payload: none.
    Zero = 0,
    /// The word sign-extends from its low 8 bits. Payload: 8 bits.
    SignExt8 = 1,
    /// The word sign-extends from its low 16 bits. Payload: 16 bits.
    SignExt16 = 2,
    /// The word sign-extends from its low 32 bits. Payload: 32 bits.
    SignExt32 = 3,
    /// Both 32-bit halves sign-extend from their low 16 bits. Payload: 32 bits.
    TwoHalfSignExt16 = 4,
    /// The low 32 bits are zero. Payload: the high 32 bits.
    LowHalfZero = 5,
    /// All eight bytes are equal. Payload: 8 bits.
    RepeatedByte = 6,
    /// Escape: stored verbatim. Payload: 64 bits.
    Uncompressed = 7,
}

impl FpcPattern {
    /// The 3-bit prefix value.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Payload size in bits for this pattern.
    pub fn payload_bits(self) -> u32 {
        match self {
            FpcPattern::Zero => 0,
            FpcPattern::SignExt8 | FpcPattern::RepeatedByte => 8,
            FpcPattern::SignExt16 => 16,
            FpcPattern::SignExt32 | FpcPattern::TwoHalfSignExt16 | FpcPattern::LowHalfZero => 32,
            FpcPattern::Uncompressed => 64,
        }
    }
}

/// Number of bits in the FPC prefix.
pub const FPC_TAG_BITS: u32 = 3;

/// A word compressed by FPC: the matched pattern and its payload.
///
/// # Example
///
/// ```
/// use morlog_encoding::fpc::{compress_word, decompress_word};
/// let e = compress_word(0x0101_0101_0101_0101);
/// assert_eq!(decompress_word(&e), 0x0101_0101_0101_0101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpcEncoded {
    /// The pattern the word matched.
    pub pattern: FpcPattern,
    /// The payload, right-aligned in a `u64`.
    pub payload: u64,
}

impl FpcEncoded {
    /// Total encoded size: prefix plus payload.
    pub fn total_bits(&self) -> u32 {
        FPC_TAG_BITS + self.pattern.payload_bits()
    }
}

fn sign_extends_from(word: u64, bits: u32) -> bool {
    debug_assert!(bits < 64);
    ((word as i64) << (64 - bits) >> (64 - bits)) as u64 == word
}

/// Compresses one 64-bit word, choosing the smallest applicable pattern
/// (ties resolved toward the lowest tag).
pub fn compress_word(word: u64) -> FpcEncoded {
    if word == 0 {
        return FpcEncoded {
            pattern: FpcPattern::Zero,
            payload: 0,
        };
    }
    if sign_extends_from(word, 8) {
        return FpcEncoded {
            pattern: FpcPattern::SignExt8,
            payload: word & 0xFF,
        };
    }
    let bytes = word.to_le_bytes();
    if bytes.iter().all(|&b| b == bytes[0]) {
        return FpcEncoded {
            pattern: FpcPattern::RepeatedByte,
            payload: bytes[0] as u64,
        };
    }
    if sign_extends_from(word, 16) {
        return FpcEncoded {
            pattern: FpcPattern::SignExt16,
            payload: word & 0xFFFF,
        };
    }
    let lo = word as u32;
    let hi = (word >> 32) as u32;
    if sign_extends_from(word, 32) {
        return FpcEncoded {
            pattern: FpcPattern::SignExt32,
            payload: word & 0xFFFF_FFFF,
        };
    }
    let half_ext = |h: u32| ((h as i32) << 16 >> 16) as u32 == h;
    if half_ext(lo) && half_ext(hi) {
        let payload = ((hi as u64 & 0xFFFF) << 16) | (lo as u64 & 0xFFFF);
        return FpcEncoded {
            pattern: FpcPattern::TwoHalfSignExt16,
            payload,
        };
    }
    if lo == 0 {
        return FpcEncoded {
            pattern: FpcPattern::LowHalfZero,
            payload: hi as u64,
        };
    }
    FpcEncoded {
        pattern: FpcPattern::Uncompressed,
        payload: word,
    }
}

/// Decompresses a word previously produced by [`compress_word`].
pub fn decompress_word(enc: &FpcEncoded) -> u64 {
    match enc.pattern {
        FpcPattern::Zero => 0,
        FpcPattern::SignExt8 => (enc.payload as u8) as i8 as i64 as u64,
        FpcPattern::SignExt16 => (enc.payload as u16) as i16 as i64 as u64,
        FpcPattern::SignExt32 => (enc.payload as u32) as i32 as i64 as u64,
        FpcPattern::TwoHalfSignExt16 => {
            let lo = ((enc.payload & 0xFFFF) as u16) as i16 as i32 as u32;
            let hi = (((enc.payload >> 16) & 0xFFFF) as u16) as i16 as i32 as u32;
            ((hi as u64) << 32) | lo as u64
        }
        FpcPattern::LowHalfZero => enc.payload << 32,
        FpcPattern::RepeatedByte => {
            let b = enc.payload & 0xFF;
            b * 0x0101_0101_0101_0101
        }
        FpcPattern::Uncompressed => enc.payload,
    }
}

/// Compresses a sequence of 64-bit words and returns the total encoded bits
/// (prefixes included). This is the block-level FPC size used by CRADE's
/// compression-ratio decision.
///
/// # Example
///
/// ```
/// use morlog_encoding::fpc::compressed_bits;
/// // Eight zero words: 8 × 3 = 24 bits instead of 512.
/// assert_eq!(compressed_bits(&[0u64; 8]), 24);
/// ```
pub fn compressed_bits(words: &[u64]) -> u32 {
    words.iter().map(|&w| compress_word(w).total_bits()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_sizes() {
        assert_eq!(FpcPattern::Zero.payload_bits(), 0);
        assert_eq!(FpcPattern::SignExt8.payload_bits(), 8);
        assert_eq!(FpcPattern::Uncompressed.payload_bits(), 64);
    }

    #[test]
    fn zero_word() {
        let e = compress_word(0);
        assert_eq!(e.pattern, FpcPattern::Zero);
        assert_eq!(e.total_bits(), 3);
        assert_eq!(decompress_word(&e), 0);
    }

    #[test]
    fn sign_extension_tiers() {
        for (w, p) in [
            (0x7Fu64, FpcPattern::SignExt8),
            (0xFFFF_FFFF_FFFF_FF80, FpcPattern::SignExt8),
            (0x7FFF, FpcPattern::SignExt16),
            (0xFFFF_FFFF_FFFF_8000, FpcPattern::SignExt16),
            (0x7FFF_FFFF, FpcPattern::SignExt32),
            (0xFFFF_FFFF_ABCD_EFFF, FpcPattern::SignExt32), // Fig. 4
        ] {
            let e = compress_word(w);
            assert_eq!(e.pattern, p, "word {w:#x}");
            assert_eq!(decompress_word(&e), w);
        }
    }

    #[test]
    fn repeated_bytes_and_halves() {
        let e = compress_word(0xABAB_ABAB_ABAB_ABAB);
        assert_eq!(e.pattern, FpcPattern::RepeatedByte);
        assert_eq!(decompress_word(&e), 0xABAB_ABAB_ABAB_ABAB);

        let w = 0x0000_1234_FFFF_8001; // halves 0x00001234 and 0xFFFF8001 both sign-extend
        let e = compress_word(w);
        assert_eq!(e.pattern, FpcPattern::TwoHalfSignExt16);
        assert_eq!(decompress_word(&e), w);

        let w = 0xDEAD_BEEF_0000_0000;
        let e = compress_word(w);
        assert_eq!(e.pattern, FpcPattern::LowHalfZero);
        assert_eq!(decompress_word(&e), w);
    }

    #[test]
    fn escape_round_trip() {
        let w = 0x0123_4567_89AB_CDEF;
        let e = compress_word(w);
        assert_eq!(e.pattern, FpcPattern::Uncompressed);
        assert_eq!(e.total_bits(), 67);
        assert_eq!(decompress_word(&e), w);
    }

    #[test]
    fn exhaustive_round_trip_sample() {
        // A structured sweep of byte patterns.
        let mut w: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..10_000 {
            w = w.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
            let e = compress_word(w);
            assert_eq!(decompress_word(&e), w, "round trip failed for {w:#x}");
            assert!(e.total_bits() <= 67);
        }
    }

    #[test]
    fn block_bits_sum() {
        let words = [0u64, 0x7F, 0x0123_4567_89AB_CDEF];
        assert_eq!(compressed_bits(&words), 3 + 11 + 67);
    }
}
