//! Differential log-data compression (DLDC) — §IV-A and Table II of the
//! paper.
//!
//! DLDC is the encoder MorLog adds for log data. It exploits the observation
//! that *the log data for clean bits are clean*: bytes of an updated word
//! whose value did not change need not be logged at all, because the
//! corresponding bytes of the in-place data are never programmed.
//!
//! Encoding proceeds in two steps (Fig. 9):
//!
//! 1. discard the clean bytes of the word according to the per-byte dirty
//!    flag, keeping only the dirty bytes (packed LSB-first);
//! 2. compress the packed dirty bytes against the eight data patterns of
//!    Table II, falling back to storing them raw when none matches.
//!
//! A word whose dirty flag is zero is a *silent log write* and is discarded
//! entirely before reaching the encoder.

/// The Table II data patterns. Discriminants are the 3-bit pattern tags.
///
/// `N` below is the size in bits of the packed dirty bytes before
/// compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DldcPattern {
    /// All dirty bytes are zero. Compressed size 3 bits (tag only).
    AllZero = 0,
    /// Every dirty byte sign-extends from its low 2 bits. 3 + N/4 bits.
    SignExt2PerByte = 1,
    /// Every dirty byte sign-extends from its low 4 bits. 3 + N/2 bits.
    SignExt4PerByte = 2,
    /// The packed value sign-extends from its low byte. 3 + 8 bits.
    SignExt1Byte = 3,
    /// The packed value sign-extends from its low 2 bytes. 3 + 16 bits.
    SignExt2Byte = 4,
    /// The packed value sign-extends from its low 4 bytes. 3 + 32 bits.
    SignExt4Byte = 5,
    /// Every dirty byte is a high nibble padded with a zero low nibble.
    /// 3 + N/2 bits.
    NibblePadded = 6,
    /// The least-significant dirty byte is zero; the rest are stored raw.
    /// 3 + (N − 8) bits.
    LsByteZero = 7,
    /// Escape: dirty bytes stored raw, 3 + N bits. (In hardware the escape
    /// shares the entry's encoding-type flag; we model it as a ninth case.)
    Raw = 8,
}

impl DldcPattern {
    /// The pattern tag stored with the compressed bytes (3 bits; [`Raw`]
    /// is signalled through the entry's encoding-type flag).
    ///
    /// [`Raw`]: DldcPattern::Raw
    pub fn tag(self) -> u8 {
        (self as u8) & 0x7
    }

    /// All Table II patterns (excluding the raw escape), in tag order.
    pub const TABLE_II: [DldcPattern; 8] = [
        DldcPattern::AllZero,
        DldcPattern::SignExt2PerByte,
        DldcPattern::SignExt4PerByte,
        DldcPattern::SignExt1Byte,
        DldcPattern::SignExt2Byte,
        DldcPattern::SignExt4Byte,
        DldcPattern::NibblePadded,
        DldcPattern::LsByteZero,
    ];
}

/// Number of bits in the DLDC pattern tag.
pub const DLDC_TAG_BITS: u32 = 3;
/// Bits in the per-word dirty flag that DLDC stores alongside the data.
pub const DIRTY_FLAG_BITS: u32 = 8;

/// One log word encoded by DLDC.
///
/// # Example
///
/// ```
/// use morlog_encoding::dldc::{compress_dirty, decompress, DldcPattern};
/// // Old 0xFFFF_FFFF_ABCD_EFFF, new 0xFFFF_FFFF_ABCD_F000: bytes 0 and 1 dirty.
/// let enc = compress_dirty(0xFFFF_FFFF_ABCD_F000, 0b0000_0011).unwrap();
/// assert_eq!(enc.n_dirty, 2);
/// assert!(enc.total_bits() < 64);
/// let restored = decompress(&enc, 0xFFFF_FFFF_ABCD_EFFF);
/// assert_eq!(restored, 0xFFFF_FFFF_ABCD_F000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DldcEncoded {
    /// The matched pattern (or the raw escape).
    pub pattern: DldcPattern,
    /// Compressed payload, right-aligned.
    pub payload: u64,
    /// The per-byte dirty flag of the word.
    pub dirty_mask: u8,
    /// Number of dirty bytes (`dirty_mask.count_ones()`).
    pub n_dirty: u32,
}

impl DldcEncoded {
    /// Payload size in bits for this encoding.
    pub fn payload_bits(&self) -> u32 {
        let n = self.n_dirty * 8;
        match self.pattern {
            DldcPattern::AllZero => 0,
            DldcPattern::SignExt2PerByte => n / 4,
            DldcPattern::SignExt4PerByte | DldcPattern::NibblePadded => n / 2,
            DldcPattern::SignExt1Byte => 8,
            DldcPattern::SignExt2Byte => 16,
            DldcPattern::SignExt4Byte => 32,
            DldcPattern::LsByteZero => n - 8,
            DldcPattern::Raw => n,
        }
    }

    /// Tag + payload bits (the Table II "compressed size").
    pub fn total_bits(&self) -> u32 {
        DLDC_TAG_BITS + self.payload_bits()
    }

    /// Tag + payload + the dirty flag DLDC must store with the entry — the
    /// size SLDE compares against the FPC path (§IV-B).
    pub fn total_bits_with_flag(&self) -> u32 {
        self.total_bits() + DIRTY_FLAG_BITS
    }
}

/// Packs the dirty bytes of `word` (per `mask`, LSB-first) into a compact
/// value; returns the packed value and the byte count.
fn pack_dirty(word: u64, mask: u8) -> (u64, u32) {
    let mut packed = 0u64;
    let mut n = 0u32;
    for byte in 0..8 {
        if mask & (1 << byte) != 0 {
            packed |= ((word >> (byte * 8)) & 0xFF) << (n * 8);
            n += 1;
        }
    }
    (packed, n)
}

fn sign_extends_bytes(packed: u64, n_bytes: u32, from_bits: u32) -> bool {
    if n_bytes * 8 < from_bits {
        return false;
    }
    let total = n_bytes * 8;
    let v = ((packed as i64) << (64 - total)) >> (64 - total); // interpret as n-byte signed
    let trunc = (v << (64 - from_bits as i64)) >> (64 - from_bits as i64);
    trunc == v
}

fn matches_pattern(packed: u64, n: u32, pattern: DldcPattern) -> Option<u64> {
    let total = n * 8;
    let bytes = (0..n).map(|i| ((packed >> (i * 8)) & 0xFF) as u8);
    match pattern {
        DldcPattern::AllZero => (packed == 0).then_some(0),
        DldcPattern::SignExt2PerByte => {
            let mut payload = 0u64;
            for (i, b) in bytes.enumerate() {
                let two = b & 0b11;
                let ext = ((two as i8) << 6 >> 6) as u8;
                if ext != b {
                    return None;
                }
                payload |= (two as u64) << (i * 2);
            }
            Some(payload)
        }
        DldcPattern::SignExt4PerByte => {
            let mut payload = 0u64;
            for (i, b) in bytes.enumerate() {
                let nib = b & 0xF;
                let ext = ((nib as i8) << 4 >> 4) as u8;
                if ext != b {
                    return None;
                }
                payload |= (nib as u64) << (i * 4);
            }
            Some(payload)
        }
        DldcPattern::SignExt1Byte => {
            (n >= 2 && sign_extends_bytes(packed, n, 8)).then_some(packed & 0xFF)
        }
        DldcPattern::SignExt2Byte => {
            (n >= 3 && sign_extends_bytes(packed, n, 16)).then_some(packed & 0xFFFF)
        }
        DldcPattern::SignExt4Byte => {
            (n >= 5 && sign_extends_bytes(packed, n, 32)).then_some(packed & 0xFFFF_FFFF)
        }
        DldcPattern::NibblePadded => {
            let mut payload = 0u64;
            for (i, b) in bytes.enumerate() {
                if b & 0x0F != 0 {
                    return None;
                }
                payload |= ((b >> 4) as u64) << (i * 4);
            }
            Some(payload)
        }
        DldcPattern::LsByteZero => (n >= 2 && packed & 0xFF == 0).then_some(packed >> 8),
        DldcPattern::Raw => {
            let _ = total;
            Some(packed)
        }
    }
}

/// Compresses the dirty bytes of `word` under the dirty flag `mask`.
///
/// Returns `None` when the mask is zero — a silent log write that the log
/// buffer discards without encoding.
///
/// The smallest applicable encoding wins; ties resolve to the lowest tag,
/// mirroring a priority encoder.
pub fn compress_dirty(word: u64, mask: u8) -> Option<DldcEncoded> {
    if mask == 0 {
        return None;
    }
    let (packed, n) = pack_dirty(word, mask);
    let mut best: Option<DldcEncoded> = None;
    let candidates = DldcPattern::TABLE_II
        .iter()
        .copied()
        .chain(std::iter::once(DldcPattern::Raw));
    for pattern in candidates {
        if let Some(payload) = matches_pattern(packed, n, pattern) {
            let enc = DldcEncoded {
                pattern,
                payload,
                dirty_mask: mask,
                n_dirty: n,
            };
            match &best {
                Some(b) if b.total_bits() <= enc.total_bits() => {}
                _ => best = Some(enc),
            }
        }
    }
    Some(best.expect("raw escape always applies"))
}

/// Reconstructs the new word from a DLDC encoding and the old in-place word.
///
/// The clean bytes come from `old_word`; the dirty bytes come from the
/// decompressed payload. Used by the recovery routine (§III-E).
pub fn decompress(enc: &DldcEncoded, old_word: u64) -> u64 {
    let n = enc.n_dirty;
    let packed = match enc.pattern {
        DldcPattern::AllZero => 0,
        DldcPattern::SignExt2PerByte => {
            let mut packed = 0u64;
            for i in 0..n {
                let two = ((enc.payload >> (i * 2)) & 0b11) as u8;
                let b = ((two as i8) << 6 >> 6) as u8;
                packed |= (b as u64) << (i * 8);
            }
            packed
        }
        DldcPattern::SignExt4PerByte => {
            let mut packed = 0u64;
            for i in 0..n {
                let nib = ((enc.payload >> (i * 4)) & 0xF) as u8;
                let b = ((nib as i8) << 4 >> 4) as u8;
                packed |= (b as u64) << (i * 8);
            }
            packed
        }
        DldcPattern::SignExt1Byte => sign_extend_to(enc.payload, 8, n),
        DldcPattern::SignExt2Byte => sign_extend_to(enc.payload, 16, n),
        DldcPattern::SignExt4Byte => sign_extend_to(enc.payload, 32, n),
        DldcPattern::NibblePadded => {
            let mut packed = 0u64;
            for i in 0..n {
                let nib = (enc.payload >> (i * 4)) & 0xF;
                packed |= (nib << 4) << (i * 8);
            }
            packed
        }
        DldcPattern::LsByteZero => enc.payload << 8,
        DldcPattern::Raw => enc.payload,
    };
    // Scatter packed dirty bytes over the old word.
    let mut result = old_word;
    let mut taken = 0u32;
    for byte in 0..8 {
        if enc.dirty_mask & (1 << byte) != 0 {
            let b = (packed >> (taken * 8)) & 0xFF;
            result = (result & !(0xFFu64 << (byte * 8))) | (b << (byte * 8));
            taken += 1;
        }
    }
    result
}

fn sign_extend_to(payload: u64, from_bits: u32, n_bytes: u32) -> u64 {
    let v = ((payload as i64) << (64 - from_bits)) >> (64 - from_bits);
    let total = n_bytes * 8;
    if total >= 64 {
        v as u64
    } else {
        (v as u64) & ((1u64 << total) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::types::dirty_byte_mask;

    fn round_trip(old: u64, new: u64) {
        let mask = dirty_byte_mask(old, new);
        if mask == 0 {
            assert!(compress_dirty(new, mask).is_none());
            return;
        }
        let enc = compress_dirty(new, mask).unwrap();
        assert_eq!(
            decompress(&enc, old),
            new,
            "old={old:#x} new={new:#x} enc={enc:?}"
        );
    }

    #[test]
    fn silent_write_is_none() {
        assert!(compress_dirty(0x1234, 0).is_none());
    }

    #[test]
    fn table_ii_examples() {
        // Tag 000: all-zero dirty bytes.
        let enc = compress_dirty(0, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::AllZero);
        assert_eq!(enc.total_bits(), 3);

        // Tag 110 example 0x10203040 -> nibbles 1,2,3,4.
        let enc = compress_dirty(0x1020_3040, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::NibblePadded);
        assert_eq!(enc.payload, 0x1234 & 0xFFFF); // packed LSB-first: 0x4,0x3,0x2,0x1
        assert_eq!(enc.total_bits(), 3 + 16);

        // Tag 111 example 0x1234567800 (5 dirty bytes, LSByte zero).
        let enc = compress_dirty(0x12_3456_7800, 0x1F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::LsByteZero);
        assert_eq!(enc.total_bits(), 3 + 32);

        // Tag 101 example 0xFF80000000 (5 bytes, sign-extends from 32 bits).
        let enc = compress_dirty(0xFF_8000_0000, 0x1F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::SignExt4Byte);
        assert_eq!(enc.total_bits(), 3 + 32);
    }

    #[test]
    fn per_byte_sign_extension() {
        // 0x01F20101: bytes 01, 01, F2, 01 — wait Table II example is per-byte
        // 2-bit: 0x01 (=sext(0b01)), 0xF2? No: 0xFE sign-extends from 0b10.
        // Use bytes that genuinely 2-bit sign-extend: 0x00, 0x01, 0xFE, 0xFF.
        let word = 0x00_01_FE_FFu64;
        let enc = compress_dirty(word, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::SignExt2PerByte);
        assert_eq!(enc.total_bits(), 3 + 8);
        assert_eq!(decompress(&enc, 0), word);

        // 4-bit per byte: 0x03, 0xF9, 0x05, 0xFE (Table II example 0x03F905FE).
        let word = 0x03_F9_05_FEu64;
        let enc = compress_dirty(word, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::SignExt4PerByte);
        assert_eq!(enc.total_bits(), 3 + 16);
        assert_eq!(decompress(&enc, 0), word);
    }

    #[test]
    fn whole_value_sign_extension() {
        // Table II tag 011 example: 0xFFFFFF80 (4 bytes sign-extending from 8).
        let enc = compress_dirty(0xFFFF_FF80, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::SignExt1Byte);
        assert_eq!(enc.total_bits(), 11);
        // Tag 100 example: 0x00007FFF.
        let enc = compress_dirty(0x0000_7FFF, 0x0F).unwrap();
        assert_eq!(enc.pattern, DldcPattern::SignExt2Byte);
        assert_eq!(enc.total_bits(), 19);
    }

    #[test]
    fn raw_escape_for_incompressible() {
        let enc = compress_dirty(0xD3A1_57C2_9B64_E8F1, 0xFF).unwrap();
        assert_eq!(enc.pattern, DldcPattern::Raw);
        assert_eq!(enc.total_bits(), 3 + 64);
        assert_eq!(decompress(&enc, 0), 0xD3A1_57C2_9B64_E8F1);
    }

    #[test]
    fn sparse_masks_round_trip() {
        // Dirty bytes scattered through the word.
        round_trip(0x1111_1111_1111_1111, 0x1111_2211_1133_1111);
        round_trip(0xAAAA_AAAA_AAAA_AAAA, 0xAAAA_AAAA_AAAA_AAAB);
        round_trip(0, u64::MAX);
        round_trip(u64::MAX, 0);
        round_trip(0xFF00_FF00_FF00_FF00, 0xFF00_FF11_FF00_FF33);
    }

    #[test]
    fn fuzz_round_trip() {
        let mut x: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20_000 {
            let old = step();
            // Bias toward partially-clean words, as real updates are.
            let keep = step();
            let new = (old & keep) | (step() & !keep);
            round_trip(old, new);
        }
    }

    #[test]
    fn clean_discard_beats_whole_word() {
        // 1 dirty byte out of 8: DLDC total must be far below 64 bits.
        let old = 0x0102_0304_0506_0708u64;
        let new = 0x0102_0304_0506_07FF;
        let mask = dirty_byte_mask(old, new);
        assert_eq!(mask, 1);
        let enc = compress_dirty(new, mask).unwrap();
        assert!(enc.total_bits_with_flag() <= 3 + 8 + 8);
    }

    #[test]
    fn tag_is_three_bits() {
        for p in DldcPattern::TABLE_II {
            assert!(p.tag() < 8);
        }
        assert_eq!(DldcPattern::Raw.tag(), 0); // escape shares tag space
    }
}
