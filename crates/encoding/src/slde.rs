//! Selective log data encoding (SLDE) — §IV-B of the paper.
//!
//! The SLDE codec sits on the write path of the NVMM module controller
//! (Fig. 10). For every write it runs the FPC encoder and, for log data, the
//! DLDC encoder in parallel, keeps the output with the least write cost,
//! expands the chosen bit stream over the region's cells with the
//! compression-ratio-aware mapping, and lets DCW program only the modified
//! cells. The decode path reverses the chosen encoder per the stored
//! encoding-type flags.
//!
//! # Per-word cell sub-regions
//!
//! Every 64-bit word owns a fixed [`WORD_REGION_CELLS`]-cell sub-region of
//! its block or log slot. Compression and expansion happen *within* the
//! word's own region, so an update that leaves a word untouched leaves its
//! cells untouched and DCW programs nothing for it — this is what makes the
//! Fig. 4(c) behaviour ("only 13 bits are programmed to update A")
//! reproducible. A stream-packed layout would dislocate every bit after the
//! first changed word and defeat DCW.
//!
//! The same type also implements the CRADE baseline \[61\] (FPC + expansion
//! coding with no DLDC path) by construction: see [`SldeCodec::crade`].

use morlog_sim_core::{LineData, WORDS_PER_LINE};

use crate::bits::{BitReader, BitWriter};
use crate::cell::CellModel;
use crate::dldc::{self, DldcEncoded, DldcPattern, DIRTY_FLAG_BITS, DLDC_TAG_BITS};
use crate::expansion::{map_payload, map_payload_with_mode, ExpansionMode, MappedWrite};
use crate::fpc::{self, FpcEncoded, FpcPattern, FPC_TAG_BITS};

/// Cells in the sub-region backing one 64-bit word: 24 cells = 72 bits of
/// TLC capacity, enough for the worst-case encoded word (67-bit FPC escape
/// plus a 2-bit encoding-type flag).
pub const WORD_REGION_CELLS: usize = 24;

/// Cells backing one 64-byte block: eight word regions.
pub const BLOCK_CELLS: usize = WORDS_PER_LINE * WORD_REGION_CELLS;

/// Per-word encoding-type flag width (the paper stores 2–3 flag bits per
/// log entry; we carry 2 bits per log-data word).
pub const CHOICE_FLAG_BITS: u32 = 2;

/// How one log-data word ended up encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingChoice {
    /// Whole word compressed by FPC (the CRADE path).
    Fpc,
    /// Clean bytes discarded and dirty bytes pattern-compressed by DLDC.
    Dldc,
    /// Clean bytes discarded, dirty bytes stored raw (DLDC's escape).
    DldcRaw,
}

impl EncodingChoice {
    fn flag(self) -> u64 {
        match self {
            EncodingChoice::Fpc => 0,
            EncodingChoice::Dldc => 1,
            EncodingChoice::DldcRaw => 2,
        }
    }

    fn from_flag(flag: u64) -> Self {
        match flag {
            0 => EncodingChoice::Fpc,
            1 => EncodingChoice::Dldc,
            2 => EncodingChoice::DldcRaw,
            f => panic!("invalid encoding-type flag {f}"),
        }
    }
}

/// One log-data or metadata word presented to the codec.
///
/// # Example
///
/// ```
/// use morlog_encoding::slde::LogWordRequest;
/// let r = LogWordRequest::redo(0xAB, 0xAA); // new value, old value
/// assert!(r.log_data);
/// assert_eq!(r.dirty_mask, 0b1);
/// let m = LogWordRequest::metadata(42);
/// assert!(!m.log_data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogWordRequest {
    /// The value to store.
    pub new: u64,
    /// The per-byte dirty flag of the update this word logs. Maintained by
    /// the logging hardware (§IV-A); the codec never recomputes it.
    pub dirty_mask: u8,
    /// Whether this word is log data (DLDC-eligible) or metadata.
    pub log_data: bool,
}

impl LogWordRequest {
    /// A redo (or undo) log-data word, deriving the dirty flag from the old
    /// and new value of the update.
    pub fn redo(new: u64, old: u64) -> Self {
        LogWordRequest {
            new,
            dirty_mask: morlog_sim_core::types::dirty_byte_mask(old, new),
            log_data: true,
        }
    }

    /// A log-data word with a hardware-maintained dirty flag (redo entries
    /// carry the flag accumulated in the L1 line, not a recomputed one).
    pub fn with_mask(new: u64, dirty_mask: u8) -> Self {
        LogWordRequest {
            new,
            dirty_mask,
            log_data: true,
        }
    }

    /// A metadata word (entry header, commit record): FPC path only.
    pub fn metadata(value: u64) -> Self {
        LogWordRequest {
            new: value,
            dirty_mask: 0,
            log_data: false,
        }
    }
}

/// Summary of a single encoded log word (used by the profilers and the
/// crate-level example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedLogWord {
    /// Which encoder won.
    pub choice: EncodingChoice,
    /// Bits the word contributes to its region (flags included).
    pub payload_bits: u32,
}

/// A fully encoded write: one mapped sub-region per word, each starting at
/// `index × WORD_REGION_CELLS` within the block or slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedRegion {
    /// Per-word mapped payloads, in word order.
    pub segments: Vec<MappedWrite>,
    /// Total encoded payload bits across segments (pre-expansion).
    pub payload_bits: usize,
    /// Encoder choice per log-data word, in request order.
    pub choices: Vec<EncodingChoice>,
}

impl EncodedRegion {
    /// Total cells the write may program (sum of segment footprints).
    pub fn cells_touched(&self) -> usize {
        self.segments.iter().map(|s| s.states.len()).sum()
    }
}

/// The SLDE codec (also usable as the CRADE baseline).
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// let slde = SldeCodec::new(CellModel::table_iii());
/// let crade = SldeCodec::crade(CellModel::table_iii());
/// assert!(slde.dldc_enabled());
/// assert!(!crade.dldc_enabled());
/// ```
#[derive(Debug, Clone)]
pub struct SldeCodec {
    model: CellModel,
    use_dldc: bool,
    expansion: bool,
}

impl SldeCodec {
    /// Full SLDE: DLDC + FPC in parallel, expansion coding on.
    pub fn new(model: CellModel) -> Self {
        SldeCodec {
            model,
            use_dldc: true,
            expansion: true,
        }
    }

    /// The CRADE baseline: FPC + expansion coding, no DLDC path.
    pub fn crade(model: CellModel) -> Self {
        SldeCodec {
            model,
            use_dldc: false,
            expansion: true,
        }
    }

    /// Disables or enables expansion coding (Table VI disables it to count
    /// raw log bits).
    pub fn with_expansion(mut self, enabled: bool) -> Self {
        self.expansion = enabled;
        self
    }

    /// Whether the DLDC path is active.
    pub fn dldc_enabled(&self) -> bool {
        self.use_dldc
    }

    /// The cell cost model this codec programs against.
    pub fn model(&self) -> &CellModel {
        &self.model
    }

    fn map_segment(&self, writer: BitWriter) -> MappedWrite {
        let (words, bits) = writer.finish();
        if self.expansion {
            map_payload(&words, bits, WORD_REGION_CELLS)
        } else {
            map_payload_with_mode(&words, bits, ExpansionMode::Tlc)
        }
    }

    /// Encodes a 64-byte in-place data block (not log data): FPC per word
    /// plus expansion coding within each word's sub-region. This is the
    /// Fig. 11 "Write C1" path where the evicted cache line A is compressed
    /// by FPC "because they are not log data".
    pub fn encode_data_block(&self, line: &LineData) -> EncodedRegion {
        let mut segments = Vec::with_capacity(WORDS_PER_LINE);
        let mut payload_bits = 0;
        for i in 0..WORDS_PER_LINE {
            let mut w = BitWriter::new();
            push_fpc(&mut w, fpc::compress_word(line.word(i)));
            payload_bits += w.len_bits();
            segments.push(self.map_segment(w));
        }
        EncodedRegion {
            segments,
            payload_bits,
            choices: Vec::new(),
        }
    }

    /// Decodes a data block previously produced by [`encode_data_block`]
    /// (the read path of Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if the region does not hold eight word segments.
    ///
    /// [`encode_data_block`]: SldeCodec::encode_data_block
    pub fn decode_data_block(&self, region: &EncodedRegion) -> LineData {
        assert_eq!(
            region.segments.len(),
            WORDS_PER_LINE,
            "data block has 8 words"
        );
        let mut line = LineData::zeroed();
        for (i, seg) in region.segments.iter().enumerate() {
            let bits = seg.states.len() * seg.mode.bits_per_cell();
            let words = crate::expansion::unmap_payload(seg, bits);
            let mut r = BitReader::new(&words, bits);
            line.set_word(i, pull_fpc(&mut r));
        }
        line
    }

    /// Encodes a log entry: `meta` words through FPC, `data` words through
    /// the SLDE selector, each into its own sub-region. `dldc_budget` bounds
    /// how many data words may use DLDC (the paper never DLDC-compresses
    /// both the undo and the redo word of one entry, §IV-B).
    pub fn encode_log_entry(
        &self,
        meta: &[u64],
        data: &[LogWordRequest],
        dldc_budget: usize,
        region_cells: usize,
    ) -> EncodedRegion {
        assert!(
            (meta.len() + data.len()) * WORD_REGION_CELLS <= region_cells,
            "entry of {} words exceeds slot of {region_cells} cells",
            meta.len() + data.len()
        );
        // Decide choices first: rank DLDC-eligible words by savings.
        let mut choices = vec![EncodingChoice::Fpc; data.len()];
        if self.use_dldc && dldc_budget > 0 {
            let mut candidates: Vec<(usize, u32, EncodingChoice)> = Vec::new();
            for (i, req) in data.iter().enumerate() {
                if !req.log_data {
                    continue;
                }
                let fpc_bits = FPC_TAG_BITS + fpc::compress_word(req.new).pattern.payload_bits();
                if let Some(enc) = dldc::compress_dirty(req.new, req.dirty_mask) {
                    let dldc_bits = enc.total_bits_with_flag();
                    if dldc_bits < fpc_bits {
                        let choice = if enc.pattern == DldcPattern::Raw {
                            EncodingChoice::DldcRaw
                        } else {
                            EncodingChoice::Dldc
                        };
                        candidates.push((i, fpc_bits - dldc_bits, choice));
                    }
                }
            }
            candidates.sort_by_key(|&(_, savings, _)| std::cmp::Reverse(savings));
            for &(i, _, choice) in candidates.iter().take(dldc_budget) {
                choices[i] = choice;
            }
        }
        let mut segments = Vec::with_capacity(meta.len() + data.len());
        let mut payload_bits = 0;
        for &m in meta {
            let mut w = BitWriter::new();
            push_fpc(&mut w, fpc::compress_word(m));
            payload_bits += w.len_bits();
            segments.push(self.map_segment(w));
        }
        for (req, &choice) in data.iter().zip(choices.iter()) {
            let mut w = BitWriter::new();
            if req.log_data {
                w.push(choice.flag(), CHOICE_FLAG_BITS);
            }
            match choice {
                EncodingChoice::Fpc => push_fpc(&mut w, fpc::compress_word(req.new)),
                EncodingChoice::Dldc | EncodingChoice::DldcRaw => {
                    let enc = dldc::compress_dirty(req.new, req.dirty_mask)
                        .expect("choice implies a dirty word");
                    push_dldc(&mut w, &enc);
                }
            }
            payload_bits += w.len_bits();
            segments.push(self.map_segment(w));
        }
        EncodedRegion {
            segments,
            payload_bits,
            choices,
        }
    }

    /// Decodes a log entry produced by [`encode_log_entry`]: returns the
    /// metadata words and the data words. `old_words` supplies, per data
    /// word, the in-place word DLDC scatters dirty bytes over (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent with the encoded region.
    ///
    /// [`encode_log_entry`]: SldeCodec::encode_log_entry
    pub fn decode_log_entry(
        &self,
        region: &EncodedRegion,
        n_meta: usize,
        data_is_log: &[bool],
        old_words: &[u64],
    ) -> (Vec<u64>, Vec<u64>) {
        assert_eq!(data_is_log.len(), old_words.len());
        assert_eq!(region.segments.len(), n_meta + data_is_log.len());
        let read_segment = |seg: &MappedWrite| {
            let bits = seg.states.len() * seg.mode.bits_per_cell();
            (crate::expansion::unmap_payload(seg, bits), bits)
        };
        let mut meta = Vec::with_capacity(n_meta);
        for seg in &region.segments[..n_meta] {
            let (words, bits) = read_segment(seg);
            let mut r = BitReader::new(&words, bits);
            meta.push(pull_fpc(&mut r));
        }
        let mut data = Vec::with_capacity(old_words.len());
        for ((seg, &is_log), &old) in region.segments[n_meta..]
            .iter()
            .zip(data_is_log.iter())
            .zip(old_words.iter())
        {
            let (words, bits) = read_segment(seg);
            let mut r = BitReader::new(&words, bits);
            if !is_log {
                data.push(pull_fpc(&mut r));
                continue;
            }
            let choice = EncodingChoice::from_flag(r.pull(CHOICE_FLAG_BITS));
            match choice {
                EncodingChoice::Fpc => data.push(pull_fpc(&mut r)),
                EncodingChoice::Dldc | EncodingChoice::DldcRaw => {
                    let enc = pull_dldc(&mut r, choice);
                    data.push(dldc::decompress(&enc, old));
                }
            }
        }
        (meta, data)
    }

    /// Encodes a single log-data word and reports which encoder won — the
    /// per-word view used by the Table II profiler and examples.
    pub fn encode_log_word(&self, req: &LogWordRequest) -> EncodedLogWord {
        let fpc_bits = FPC_TAG_BITS + fpc::compress_word(req.new).pattern.payload_bits();
        if self.use_dldc && req.log_data {
            if let Some(enc) = dldc::compress_dirty(req.new, req.dirty_mask) {
                let dldc_bits = enc.total_bits_with_flag();
                if dldc_bits < fpc_bits {
                    let choice = if enc.pattern == DldcPattern::Raw {
                        EncodingChoice::DldcRaw
                    } else {
                        EncodingChoice::Dldc
                    };
                    return EncodedLogWord {
                        choice,
                        payload_bits: CHOICE_FLAG_BITS + dldc_bits,
                    };
                }
            }
        }
        let flag = if req.log_data { CHOICE_FLAG_BITS } else { 0 };
        EncodedLogWord {
            choice: EncodingChoice::Fpc,
            payload_bits: flag + fpc_bits,
        }
    }
}

fn push_fpc(w: &mut BitWriter, enc: FpcEncoded) {
    w.push(enc.pattern.tag() as u64, FPC_TAG_BITS);
    w.push(enc.payload, enc.pattern.payload_bits());
}

fn pull_fpc(r: &mut BitReader<'_>) -> u64 {
    let tag = r.pull(FPC_TAG_BITS) as u8;
    let pattern = match tag {
        0 => FpcPattern::Zero,
        1 => FpcPattern::SignExt8,
        2 => FpcPattern::SignExt16,
        3 => FpcPattern::SignExt32,
        4 => FpcPattern::TwoHalfSignExt16,
        5 => FpcPattern::LowHalfZero,
        6 => FpcPattern::RepeatedByte,
        7 => FpcPattern::Uncompressed,
        _ => unreachable!("3-bit tag"),
    };
    let payload = r.pull(pattern.payload_bits());
    fpc::decompress_word(&FpcEncoded { pattern, payload })
}

fn push_dldc(w: &mut BitWriter, enc: &DldcEncoded) {
    w.push(enc.dirty_mask as u64, DIRTY_FLAG_BITS);
    if enc.pattern != DldcPattern::Raw {
        w.push(enc.pattern.tag() as u64, DLDC_TAG_BITS);
    }
    w.push(enc.payload, enc.payload_bits());
}

fn pull_dldc(r: &mut BitReader<'_>, choice: EncodingChoice) -> DldcEncoded {
    let dirty_mask = r.pull(DIRTY_FLAG_BITS) as u8;
    let n_dirty = dirty_mask.count_ones();
    let pattern = if choice == EncodingChoice::DldcRaw {
        DldcPattern::Raw
    } else {
        match r.pull(DLDC_TAG_BITS) as u8 {
            0 => DldcPattern::AllZero,
            1 => DldcPattern::SignExt2PerByte,
            2 => DldcPattern::SignExt4PerByte,
            3 => DldcPattern::SignExt1Byte,
            4 => DldcPattern::SignExt2Byte,
            5 => DldcPattern::SignExt4Byte,
            6 => DldcPattern::NibblePadded,
            7 => DldcPattern::LsByteZero,
            _ => unreachable!("3-bit tag"),
        }
    };
    let mut probe = DldcEncoded {
        pattern,
        payload: 0,
        dirty_mask,
        n_dirty,
    };
    probe.payload = r.pull(probe.payload_bits());
    probe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> SldeCodec {
        SldeCodec::new(CellModel::table_iii())
    }

    #[test]
    fn data_block_round_trip() {
        let mut line = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            line.set_word(
                i,
                0x0101_0101u64.wrapping_mul(i as u64 + 1) ^ 0xFFFF_0000_1234,
            );
        }
        let region = codec().encode_data_block(&line);
        assert_eq!(codec().decode_data_block(&region), line);
        assert!(region.payload_bits <= 512 + 24);
        assert!(region.cells_touched() <= BLOCK_CELLS);
    }

    #[test]
    fn zero_block_compresses_to_idm1() {
        let region = codec().encode_data_block(&LineData::zeroed());
        assert_eq!(region.payload_bits, 24); // 8 zero tags
        for seg in &region.segments {
            assert_eq!(seg.mode, ExpansionMode::Idm1);
            assert_eq!(seg.states.len(), 3);
        }
    }

    #[test]
    fn incompressible_words_use_tlc() {
        let mut line = LineData::zeroed();
        let mut x = 0x9E37_79B9_97F4_A7C5u64;
        for i in 0..WORDS_PER_LINE {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            line.set_word(i, x | 0x8000_0000_0000_0001); // defeat sign-extension
        }
        let region = codec().encode_data_block(&line);
        for seg in &region.segments {
            assert_eq!(seg.mode, ExpansionMode::Tlc);
        }
        assert_eq!(codec().decode_data_block(&region), line);
    }

    #[test]
    fn unmodified_words_have_identical_segments() {
        // The property that makes DCW effective: only the changed word's
        // sub-region differs between consecutive encodings.
        let mut line = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            line.set_word(i, 0xABCD_0000_1111_2222 + i as u64);
        }
        let before = codec().encode_data_block(&line);
        let mut line2 = line;
        line2.set_word(3, line.word(3) ^ 0x1FFF); // Fig. 4: 13 flipped bits
        let after = codec().encode_data_block(&line2);
        for i in 0..WORDS_PER_LINE {
            if i == 3 {
                assert_ne!(before.segments[i], after.segments[i]);
            } else {
                assert_eq!(before.segments[i], after.segments[i]);
            }
        }
    }

    #[test]
    fn expansion_disable_forces_tlc() {
        let c = codec().with_expansion(false);
        let region = c.encode_data_block(&LineData::zeroed());
        for seg in &region.segments {
            assert_eq!(seg.mode, ExpansionMode::Tlc);
        }
        assert_eq!(c.decode_data_block(&region), LineData::zeroed());
    }

    #[test]
    fn log_entry_round_trip_mixed_choices() {
        let c = codec();
        let meta = [0x0000_1234_5678_9ABCu64, 0x42];
        let old_a = 0x0102_0304_0506_0708u64;
        let new_a = 0x0102_0304_0506_FFFF; // 2 dirty bytes -> DLDC wins
        let old_b = 0u64;
        let new_b = 0xD3A1_57C2_9B64_E8F1; // everything dirty -> FPC escape
        let data = [
            LogWordRequest::redo(new_a, old_a),
            LogWordRequest::redo(new_b, old_b),
        ];
        let region = c.encode_log_entry(&meta, &data, 2, 96);
        let (m, d) = c.decode_log_entry(&region, 2, &[true, true], &[old_a, old_b]);
        assert_eq!(m, meta.to_vec());
        assert_eq!(d, vec![new_a, new_b]);
        assert_eq!(region.choices.len(), 2);
        assert_eq!(region.choices[0], EncodingChoice::Dldc);
    }

    #[test]
    fn dldc_budget_limits_usage() {
        let c = codec();
        let old = 0x1111_1111_1111_1111u64;
        let new = 0x1111_1111_1111_11FF; // 1 dirty byte, DLDC-friendly
        let data = [
            LogWordRequest::redo(new, old),
            LogWordRequest::redo(new, old),
        ];
        let region = c.encode_log_entry(&[], &data, 1, 96);
        let dldc_count = region
            .choices
            .iter()
            .filter(|&&ch| ch != EncodingChoice::Fpc)
            .count();
        assert_eq!(dldc_count, 1, "budget of one DLDC word per entry");
        let (_, d) = c.decode_log_entry(&region, 0, &[true, true], &[old, old]);
        assert_eq!(d, vec![new, new]);
    }

    #[test]
    fn crade_never_uses_dldc() {
        let c = SldeCodec::crade(CellModel::table_iii());
        let old = 0x1111_1111_1111_1111u64;
        let new = 0x1111_1111_1111_11FF;
        let region = c.encode_log_entry(&[], &[LogWordRequest::redo(new, old)], 1, 96);
        assert_eq!(region.choices, vec![EncodingChoice::Fpc]);
        let w = c.encode_log_word(&LogWordRequest::redo(new, old));
        assert_eq!(w.choice, EncodingChoice::Fpc);
    }

    #[test]
    fn slde_picks_cheaper_side_per_word() {
        let c = codec();
        // Nearly-clean word: DLDC wins.
        let w = c.encode_log_word(&LogWordRequest::redo(0xAA00, 0xAA01));
        assert_ne!(w.choice, EncodingChoice::Fpc);
        // FPC-friendly fully-dirty word (zero): FPC wins (3 bits vs flag+mask).
        let w = c.encode_log_word(&LogWordRequest::redo(0, 0xFFFF_FFFF_FFFF_FFFF));
        assert_eq!(w.choice, EncodingChoice::Fpc);
        assert_eq!(w.payload_bits, 2 + 3);
    }

    #[test]
    fn metadata_words_have_no_choice_flag() {
        let c = codec();
        let w = c.encode_log_word(&LogWordRequest::metadata(0));
        assert_eq!(w.payload_bits, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn oversized_entry_panics() {
        codec().encode_log_entry(&[0, 0], &[LogWordRequest::metadata(0)], 0, 48);
    }

    #[test]
    fn log_entry_fuzz_round_trip() {
        let c = codec();
        let mut x = 0xBADC_0FFE_E0DD_F00Du64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            let old_u = step();
            let keep = step();
            let new_u = (old_u & keep) | (step() & !keep);
            let meta = [step(), step() & 0xFFFF];
            let data = [
                LogWordRequest::redo(old_u, new_u), // undo word (old as payload)
                LogWordRequest::redo(new_u, old_u), // redo word
            ];
            let region = c.encode_log_entry(&meta, &data, 1, 96);
            let (m, d) = c.decode_log_entry(&region, 2, &[true, true], &[new_u, old_u]);
            assert_eq!(m, meta.to_vec());
            assert_eq!(d[0], old_u);
            assert_eq!(d[1], new_u);
        }
    }
}
