//! Data-encoding stack for TLC-RRAM NVMM writes, reproducing §IV of the
//! MorLog paper.
//!
//! The crate models the write path of an NVMM module controller:
//!
//! * [`cell`] — the TLC RRAM cell-state cost model (Table III): per-state
//!   program latency and energy, 3 bits per cell.
//! * [`dcw`] — data-comparison write: only cells whose target state differs
//!   from their stored state are programmed.
//! * [`fpc`] — 64-bit frequent-pattern compression, the compressor CRADE is
//!   built on.
//! * [`dldc`] — differential log-data compression (the paper's new encoder,
//!   Table II): discards clean bytes of log data using per-byte dirty flags,
//!   then pattern-compresses the surviving dirty bytes.
//! * [`expansion`] — compression-ratio-aware expansion coding (incomplete
//!   data mapping): compressed payloads are spread over more cells restricted
//!   to the cheap TLC states.
//! * [`crade`] — FPC + expansion coding, the state-of-the-art baseline codec.
//! * [`slde`] — selective log-data encoding: runs CRADE's FPC path and DLDC
//!   in parallel on log data and keeps the cheaper encoding (§IV-B).
//! * [`overhead`] — the §IV-C capacity/latency/logic overhead arithmetic.
//!
//! # Example: encoding one log word
//!
//! ```
//! use morlog_encoding::{cell::CellModel, slde::SldeCodec};
//! use morlog_encoding::slde::LogWordRequest;
//!
//! let codec = SldeCodec::new(CellModel::table_iii());
//! // Fig. 4: A = 0xFFFFFFFFABCDEFFF updated to 0xFFFFFFFFABCDF000 — only
//! // the two low bytes change.
//! let req = LogWordRequest::redo(0xFFFF_FFFF_ABCD_F000, 0xFFFF_FFFF_ABCD_EFFF);
//! let enc = codec.encode_log_word(&req);
//! assert!(enc.payload_bits < 64); // DLDC discarded the six clean bytes
//! ```

#![deny(missing_docs)]

pub mod bits;
pub mod cell;
pub mod crade;
pub mod dcw;
pub mod dldc;
pub mod expansion;
pub mod fpc;
pub mod overhead;
pub mod secure;
pub mod slde;

pub use cell::{CellModel, CellState, BITS_PER_CELL};
pub use crade::CradeCodec;
pub use dcw::{write_cost, WriteCost};
pub use dldc::{DldcEncoded, DldcPattern};
pub use expansion::{ExpansionMode, MappedWrite};
pub use fpc::{FpcEncoded, FpcPattern};
pub use secure::SecureMode;
pub use slde::{EncodingChoice, SldeCodec};
