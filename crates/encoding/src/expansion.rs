//! Compression-ratio-aware expansion coding (incomplete data mapping, IDM).
//!
//! After compression, a payload of `q` bits destined for a region of `C`
//! TLC cells (capacity `3·C` bits) usually has slack. Expansion coding
//! (CompEx \[45\], IDM \[42\], CRADE \[61\]) spends that slack on *cheaper cell
//! states*: instead of packing 3 bits into each cell, the payload is spread
//! at 1 or 2 bits per cell over a mapping restricted to the states with the
//! lowest program cost (Table III is strongly asymmetric: programming `111`
//! costs 1.5 pJ/12.1 ns while `100` costs 35.6 pJ/150 ns).
//!
//! The mode is chosen per write from the compression ratio: the widest
//! expansion whose capacity still fits the payload.

use crate::cell::{CellState, BITS_PER_CELL};

/// How payload bits are mapped onto cell states.
///
/// # Example
///
/// ```
/// use morlog_encoding::ExpansionMode;
/// assert_eq!(ExpansionMode::for_payload(100, 171), ExpansionMode::Idm1);
/// assert_eq!(ExpansionMode::for_payload(300, 171), ExpansionMode::Idm2);
/// assert_eq!(ExpansionMode::for_payload(500, 171), ExpansionMode::Tlc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpansionMode {
    /// 1 bit per cell over the two cheapest states (`000`, `111`).
    Idm1,
    /// 2 bits per cell over the four cheapest states
    /// (`111`, `000`, `001`, `110`).
    Idm2,
    /// Full 3-bits-per-cell TLC mapping (no expansion).
    Tlc,
}

impl ExpansionMode {
    /// Bits of payload stored per cell in this mode.
    pub fn bits_per_cell(self) -> usize {
        match self {
            ExpansionMode::Idm1 => 1,
            ExpansionMode::Idm2 => 2,
            ExpansionMode::Tlc => BITS_PER_CELL,
        }
    }

    /// Chooses the widest expansion that fits `payload_bits` into `cells`.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not fit even at full TLC density — callers
    /// size their regions so this cannot happen.
    pub fn for_payload(payload_bits: usize, cells: usize) -> ExpansionMode {
        if payload_bits <= cells {
            ExpansionMode::Idm1
        } else if payload_bits <= 2 * cells {
            ExpansionMode::Idm2
        } else {
            assert!(
                payload_bits <= BITS_PER_CELL * cells,
                "payload of {payload_bits} bits exceeds {cells} TLC cells"
            );
            ExpansionMode::Tlc
        }
    }

    /// Maps a chunk of payload bits (`chunk < 2^bits_per_cell`) to a cell
    /// state under this mode's incomplete mapping.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` does not fit the mode's density.
    pub fn map_chunk(self, chunk: u8) -> CellState {
        match self {
            ExpansionMode::Idm1 => {
                assert!(chunk < 2, "IDM-1 maps single bits, got {chunk}");
                // 0 -> 000 (2.0 pJ), 1 -> 111 (1.5 pJ): the two cheapest states.
                CellState::new(if chunk == 0 { 0b000 } else { 0b111 })
            }
            ExpansionMode::Idm2 => {
                assert!(chunk < 4, "IDM-2 maps bit pairs, got {chunk}");
                // The four cheapest states by energy: 111, 000, 001, 110.
                // Mapping keeps the natural 00->000, 11->111 correspondence.
                CellState::new(match chunk {
                    0b00 => 0b000,
                    0b01 => 0b001,
                    0b10 => 0b110,
                    _ => 0b111,
                })
            }
            ExpansionMode::Tlc => {
                assert!(chunk < 8, "TLC maps 3-bit groups, got {chunk}");
                CellState::new(chunk)
            }
        }
    }

    /// Inverse of [`map_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is not part of this mode's restricted state set.
    ///
    /// [`map_chunk`]: ExpansionMode::map_chunk
    pub fn unmap_state(self, state: CellState) -> u8 {
        match self {
            ExpansionMode::Idm1 => match state.bits() {
                0b000 => 0,
                0b111 => 1,
                s => panic!("state {s:03b} not in the IDM-1 mapping"),
            },
            ExpansionMode::Idm2 => match state.bits() {
                0b000 => 0b00,
                0b001 => 0b01,
                0b110 => 0b10,
                0b111 => 0b11,
                s => panic!("state {s:03b} not in the IDM-2 mapping"),
            },
            ExpansionMode::Tlc => state.bits(),
        }
    }
}

/// A payload mapped onto a cell region: the target states DCW will compare
/// against the stored states.
///
/// # Example
///
/// ```
/// use morlog_encoding::expansion::map_payload;
/// // 4 payload bits into 8 cells: IDM-1, one bit per cell, 4 cells used.
/// let w = map_payload(&[0b1010], 4, 8);
/// assert_eq!(w.mode.bits_per_cell(), 1);
/// assert_eq!(w.states.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedWrite {
    /// The expansion mode chosen for the region.
    pub mode: ExpansionMode,
    /// Target state per cell actually carrying payload. Cells beyond the
    /// payload are untouched (DCW never programs them).
    pub states: Vec<CellState>,
}

/// Maps `payload_bits` bits (packed little-endian in `payload` words) onto a
/// region of `region_cells` cells, choosing the expansion mode by
/// compression ratio.
///
/// # Panics
///
/// Panics if `payload_bits` exceeds the region's TLC capacity or the packed
/// words provided.
pub fn map_payload(payload: &[u64], payload_bits: usize, region_cells: usize) -> MappedWrite {
    let mode = ExpansionMode::for_payload(payload_bits, region_cells);
    map_payload_with_mode(payload, payload_bits, mode)
}

/// Maps `payload_bits` bits onto cells using an explicitly chosen mode
/// (used when expansion coding is disabled and everything stays at full TLC
/// density, Table VI).
///
/// # Panics
///
/// Panics if the packed words are shorter than `payload_bits`.
pub fn map_payload_with_mode(
    payload: &[u64],
    payload_bits: usize,
    mode: ExpansionMode,
) -> MappedWrite {
    assert!(
        payload_bits <= payload.len() * 64,
        "payload words too short"
    );
    let bpc = mode.bits_per_cell();
    let cells_used = payload_bits.div_ceil(bpc);
    let mut states = Vec::with_capacity(cells_used);
    for cell in 0..cells_used {
        let mut chunk = 0u8;
        for bit in 0..bpc {
            let idx = cell * bpc + bit;
            if idx < payload_bits {
                let word = payload[idx / 64];
                if (word >> (idx % 64)) & 1 == 1 {
                    chunk |= 1 << bit;
                }
            }
        }
        states.push(mode.map_chunk(chunk));
    }
    MappedWrite { mode, states }
}

/// Recovers the payload bits from a mapped region (the decode path).
///
/// Returns the packed payload words.
pub fn unmap_payload(write: &MappedWrite, payload_bits: usize) -> Vec<u64> {
    let bpc = write.mode.bits_per_cell();
    let mut words = vec![0u64; payload_bits.div_ceil(64).max(1)];
    for (cell, &state) in write.states.iter().enumerate() {
        let chunk = write.mode.unmap_state(state);
        for bit in 0..bpc {
            let idx = cell * bpc + bit;
            if idx < payload_bits && (chunk >> bit) & 1 == 1 {
                words[idx / 64] |= 1 << (idx % 64);
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellModel;

    #[test]
    fn mode_selection_boundaries() {
        assert_eq!(ExpansionMode::for_payload(0, 10), ExpansionMode::Idm1);
        assert_eq!(ExpansionMode::for_payload(10, 10), ExpansionMode::Idm1);
        assert_eq!(ExpansionMode::for_payload(11, 10), ExpansionMode::Idm2);
        assert_eq!(ExpansionMode::for_payload(20, 10), ExpansionMode::Idm2);
        assert_eq!(ExpansionMode::for_payload(21, 10), ExpansionMode::Tlc);
        assert_eq!(ExpansionMode::for_payload(30, 10), ExpansionMode::Tlc);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        ExpansionMode::for_payload(31, 10);
    }

    #[test]
    fn idm_mappings_use_cheap_states() {
        let model = CellModel::table_iii();
        let cheap4 = &model.states_by_energy()[..4];
        for chunk in 0..4 {
            assert!(cheap4.contains(&ExpansionMode::Idm2.map_chunk(chunk)));
        }
        for chunk in 0..2 {
            assert!(cheap4[..2].contains(&ExpansionMode::Idm1.map_chunk(chunk)));
        }
    }

    #[test]
    fn map_unmap_round_trip() {
        let payload = [0xDEAD_BEEF_0123_4567u64, 0xFEED_FACE_CAFE_F00D];
        for bits in [1usize, 7, 64, 65, 100, 128] {
            for cells in [171usize, 80, 56] {
                if bits > 3 * cells {
                    continue;
                }
                let mapped = map_payload(&payload, bits, cells);
                let out = unmap_payload(&mapped, bits);
                for idx in 0..bits {
                    let want = (payload[idx / 64] >> (idx % 64)) & 1;
                    let got = (out[idx / 64] >> (idx % 64)) & 1;
                    assert_eq!(want, got, "bit {idx} with {bits} bits / {cells} cells");
                }
            }
        }
    }

    #[test]
    fn chunk_round_trip_all_modes() {
        for mode in [ExpansionMode::Idm1, ExpansionMode::Idm2, ExpansionMode::Tlc] {
            for chunk in 0..(1u8 << mode.bits_per_cell()) {
                assert_eq!(mode.unmap_state(mode.map_chunk(chunk)), chunk);
            }
        }
    }

    #[test]
    fn cells_used_matches_density() {
        let payload = [u64::MAX; 8];
        let w = map_payload(&payload, 171, 171); // exactly C bits -> IDM-1
        assert_eq!(w.mode, ExpansionMode::Idm1);
        assert_eq!(w.states.len(), 171);
        let w = map_payload(&payload, 342, 171);
        assert_eq!(w.mode, ExpansionMode::Idm2);
        assert_eq!(w.states.len(), 171);
        let w = map_payload(&payload, 343, 171);
        assert_eq!(w.mode, ExpansionMode::Tlc);
        assert_eq!(w.states.len(), 115); // ceil(343/3)
    }

    #[test]
    #[should_panic(expected = "not in the IDM-1 mapping")]
    fn unmap_rejects_foreign_state() {
        ExpansionMode::Idm1.unmap_state(CellState::new(0b010));
    }
}
