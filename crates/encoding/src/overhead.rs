//! SLDE hardware-overhead arithmetic (§IV-C of the paper).
//!
//! The paper quantifies SLDE's capacity overhead analytically and reports
//! synthesis results for the codec logic. The synthesis numbers are inputs
//! we carry as documented constants (see `DESIGN.md` §2 — we substitute the
//! Verilog/Design-Compiler flow with its published results); the capacity
//! arithmetic is reproduced exactly and checked by tests.

/// Size in bits of an undo+redo buffer entry (Fig. 7): 2-bit type + 8-bit
/// TID + 16-bit TxID + 48-bit address + two 64-bit data words.
pub const UNDO_REDO_ENTRY_BITS: u32 = 2 + 8 + 16 + 48 + 128;
/// Size in bits of a redo buffer entry (Fig. 7): as above with one data word.
pub const REDO_ENTRY_BITS: u32 = 2 + 8 + 16 + 48 + 64;
/// Bits in one L1 cache line (64 bytes).
pub const L1_LINE_BITS: u32 = 512;
/// Encoding-type flag bits per undo+redo entry (§IV-B).
pub const UNDO_REDO_TYPE_FLAG_BITS: u32 = 3;
/// Encoding-type flag bits per redo entry (§IV-B).
pub const REDO_TYPE_FLAG_BITS: u32 = 2;

/// Synthesis results for the SLDE codec, scaled to 22 nm (§IV-C). These are
/// constants of the reproduction, not measured outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SldeSynthesis {
    /// Extra logic, in gate count (≈4.2 K gates, <0.1 % of an NVMM module).
    pub extra_gates: f64,
    /// Extra encode latency in nanoseconds (<1 ns).
    pub encode_latency_ns: f64,
    /// Extra decode latency in nanoseconds (<1 ns).
    pub decode_latency_ns: f64,
    /// Extra encode energy in picojoules.
    pub encode_energy_pj: f64,
    /// Extra decode energy in picojoules.
    pub decode_energy_pj: f64,
}

impl SldeSynthesis {
    /// The paper's reported values.
    pub fn paper() -> Self {
        SldeSynthesis {
            extra_gates: 4200.0,
            encode_latency_ns: 1.0,
            decode_latency_ns: 1.0,
            encode_energy_pj: 1.4,
            decode_energy_pj: 1.3,
        }
    }
}

/// Capacity overhead of the dirty flag for an undo+redo buffer entry, as a
/// fraction of the entry, when one flag bit covers `m` bytes of log data
/// (§IV-C gives this as `4/(101·m)`).
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Example
///
/// ```
/// use morlog_encoding::overhead::undo_redo_dirty_flag_overhead;
/// let f = undo_redo_dirty_flag_overhead(1);
/// assert!((f - 4.0 / 101.0).abs() < 1e-12);
/// ```
pub fn undo_redo_dirty_flag_overhead(m: u32) -> f64 {
    dirty_flag_overhead(UNDO_REDO_ENTRY_BITS, m)
}

/// Capacity overhead of the dirty flag for a redo buffer entry
/// (`4/(69·m)` in §IV-C).
pub fn redo_dirty_flag_overhead(m: u32) -> f64 {
    dirty_flag_overhead(REDO_ENTRY_BITS, m)
}

/// Capacity overhead of the per-word dirty flags added to an L1 cache line
/// (`1/(8·m)` in §IV-C): eight words × (8/m) flag bits over 512 line bits.
pub fn l1_dirty_flag_overhead(m: u32) -> f64 {
    assert!(m > 0, "bytes per flag bit must be positive");
    (8.0 * 8.0 / m as f64) / L1_LINE_BITS as f64
}

fn dirty_flag_overhead(entry_bits: u32, m: u32) -> f64 {
    assert!(m > 0, "bytes per flag bit must be positive");
    // One 8-byte log word carries an (8/m)-bit dirty flag.
    (8.0 / m as f64) / entry_bits as f64
}

/// The log-region flag overhead bound of §IV-C: one metadata bit per
/// 64-byte block plus the per-entry encoding-type flag, `≤ 1/512 +
/// max(3/202, 2/138)`.
///
/// # Example
///
/// ```
/// use morlog_encoding::overhead::log_region_flag_overhead;
/// assert!(log_region_flag_overhead() < 0.017 + 1e-3); // "≤ 1.7%"
/// ```
pub fn log_region_flag_overhead() -> f64 {
    let metadata_bit = 1.0 / 512.0;
    let type_flag = f64::max(
        UNDO_REDO_TYPE_FLAG_BITS as f64 / UNDO_REDO_ENTRY_BITS as f64,
        REDO_TYPE_FLAG_BITS as f64 / REDO_ENTRY_BITS as f64,
    );
    metadata_bit + type_flag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_match_fig7() {
        assert_eq!(UNDO_REDO_ENTRY_BITS, 202);
        assert_eq!(REDO_ENTRY_BITS, 138);
    }

    #[test]
    fn paper_overhead_formulas() {
        // §IV-C: 4/(101m), 4/(69m), 1/(8m).
        for m in [1u32, 2, 4, 8] {
            assert!((undo_redo_dirty_flag_overhead(m) - 4.0 / (101.0 * m as f64)).abs() < 1e-12);
            assert!((redo_dirty_flag_overhead(m) - 4.0 / (69.0 * m as f64)).abs() < 1e-12);
            assert!((l1_dirty_flag_overhead(m) - 1.0 / (8.0 * m as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn flag_overhead_is_at_most_1_7_percent() {
        let o = log_region_flag_overhead();
        assert!(o <= 0.017, "overhead {o}");
        assert!(o > 0.016); // 1/512 + 3/202 ≈ 1.68 %
    }

    #[test]
    fn synthesis_energy_negligible_vs_cell_write() {
        // §IV-C: extra energy < 0.1 % of a 64-byte block write at 16 pJ/cell.
        let synth = SldeSynthesis::paper();
        let block_energy = 16.0 * (512.0 / 3.0);
        assert!(synth.encode_energy_pj / block_energy < 0.001);
        assert!(synth.decode_energy_pj / block_energy < 0.001);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_m_panics() {
        undo_redo_dirty_flag_overhead(0);
    }
}
