//! Data-comparison write (DCW, Yang et al. \[62\]).
//!
//! NVM writes are preceded by a read of the target cells; only cells whose
//! stored state differs from the target state are programmed. Because cells
//! are programmed in parallel, the write latency of a block is the *maximum*
//! latency over the programmed cells, while the energy is the *sum*.

use morlog_sim_core::{NanoSeconds, PicoJoules};

use crate::cell::{CellModel, CellState, BITS_PER_CELL};

/// The outcome of programming a cell vector under DCW.
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, dcw::write_cost, CellState};
/// let m = CellModel::table_iii();
/// let old = [CellState::new(0); 4];
/// let new = [CellState::new(0), CellState::new(7), CellState::new(0), CellState::new(7)];
/// let cost = write_cost(&m, &old, &new, 3);
/// assert_eq!(cost.cells_programmed, 2);      // two cells changed
/// assert!((cost.latency.as_f64() - 12.1).abs() < 1e-9); // programming 111
/// assert!(!cost.is_silent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriteCost {
    /// Program latency of the write (max over programmed cells); zero for a
    /// silent write.
    pub latency: NanoSeconds,
    /// Total program energy (sum over programmed cells).
    pub energy: PicoJoules,
    /// Number of cells whose state changed.
    pub cells_programmed: u64,
    /// Bits programmed: `cells_programmed ×` bits-per-cell of the mapping in
    /// effect. This is the metric of Table VI.
    pub bits_programmed: u64,
}

impl WriteCost {
    /// A write where DCW found no modified cell.
    pub fn silent() -> Self {
        WriteCost::default()
    }

    /// Returns `true` when no cell needs programming ("silent write").
    pub fn is_silent(&self) -> bool {
        self.cells_programmed == 0
    }

    /// Accumulates another cost into this one, as when one logical write is
    /// split across several encoded regions programmed in parallel.
    pub fn combine(&mut self, other: &WriteCost) {
        self.latency = self.latency.max(other.latency);
        self.energy += other.energy;
        self.cells_programmed += other.cells_programmed;
        self.bits_programmed += other.bits_programmed;
    }
}

/// Computes the DCW cost of replacing `old` cell states with `new` ones.
///
/// `bits_per_cell` is the density of the mapping used for these cells: 3 for
/// a full TLC mapping, 2 or 1 under incomplete data mappings. It only affects
/// the `bits_programmed` accounting; latency and energy depend solely on the
/// target states.
///
/// # Panics
///
/// Panics if the slices have different lengths or `bits_per_cell` is not in
/// `1..=3`.
pub fn write_cost(
    model: &CellModel,
    old: &[CellState],
    new: &[CellState],
    bits_per_cell: usize,
) -> WriteCost {
    assert_eq!(
        old.len(),
        new.len(),
        "DCW compares equal-length cell vectors"
    );
    assert!(
        (1..=BITS_PER_CELL).contains(&bits_per_cell),
        "bits_per_cell {bits_per_cell} out of range"
    );
    let mut cost = WriteCost::silent();
    for (&o, &n) in old.iter().zip(new.iter()) {
        if o != n {
            cost.latency = cost.latency.max(model.write_latency(n));
            cost.energy += model.write_energy(n);
            cost.cells_programmed += 1;
        }
    }
    cost.bits_programmed = cost.cells_programmed * bits_per_cell as u64;
    cost
}

/// Counts flipped *bits* between two equal-length state vectors (used by
/// bit-level traffic statistics and tests).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bit_flips(old: &[CellState], new: &[CellState]) -> u64 {
    assert_eq!(old.len(), new.len());
    old.iter()
        .zip(new.iter())
        .map(|(o, n)| (o.bits() ^ n.bits()).count_ones() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u8) -> CellState {
        CellState::new(v)
    }

    #[test]
    fn identical_vectors_are_silent() {
        let m = CellModel::table_iii();
        let v = [s(1), s(2), s(3)];
        let cost = write_cost(&m, &v, &v, 3);
        assert!(cost.is_silent());
        assert_eq!(cost.bits_programmed, 0);
        assert_eq!(cost.energy, PicoJoules::zero());
    }

    #[test]
    fn latency_is_max_energy_is_sum() {
        let m = CellModel::table_iii();
        let old = [s(0), s(0), s(0)];
        let new = [s(0b100), s(0b111), s(0)]; // 150 ns/35.6 pJ and 12.1 ns/1.5 pJ
        let cost = write_cost(&m, &old, &new, 3);
        assert_eq!(cost.cells_programmed, 2);
        assert!((cost.latency.as_f64() - 150.0).abs() < 1e-9);
        assert!((cost.energy.as_f64() - 37.1).abs() < 1e-9);
        assert_eq!(cost.bits_programmed, 6);
    }

    #[test]
    fn bits_programmed_uses_mapping_density() {
        let m = CellModel::table_iii();
        let old = [s(0), s(0)];
        let new = [s(7), s(7)];
        assert_eq!(write_cost(&m, &old, &new, 1).bits_programmed, 2);
        assert_eq!(write_cost(&m, &old, &new, 2).bits_programmed, 4);
        assert_eq!(write_cost(&m, &old, &new, 3).bits_programmed, 6);
    }

    #[test]
    fn combine_takes_max_latency() {
        let m = CellModel::table_iii();
        let mut a = write_cost(&m, &[s(0)], &[s(7)], 3); // 12.1 ns
        let b = write_cost(&m, &[s(0)], &[s(3)], 3); // 143 ns
        a.combine(&b);
        assert!((a.latency.as_f64() - 143.0).abs() < 1e-9);
        assert_eq!(a.cells_programmed, 2);
        assert!((a.energy.as_f64() - (1.5 + 35.1)).abs() < 1e-9);
    }

    #[test]
    fn bit_flip_count() {
        assert_eq!(bit_flips(&[s(0b000)], &[s(0b111)]), 3);
        assert_eq!(bit_flips(&[s(0b101)], &[s(0b100)]), 1);
        assert_eq!(bit_flips(&[s(1), s(2)], &[s(1), s(2)]), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let m = CellModel::table_iii();
        write_cost(&m, &[s(0)], &[s(0), s(1)], 3);
    }
}
