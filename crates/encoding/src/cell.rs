//! TLC RRAM cell-state model (Table III of the paper).
//!
//! A triple-level cell stores 3 bits in one of 8 resistance states. States
//! differ wildly in program latency (12.1–150 ns) and energy (1.5–35.6 pJ)
//! because the iterative program-and-verify loop needs different numbers of
//! pulses per target state. This asymmetry is what expansion coding and DLDC
//! exploit.

use std::fmt;

use morlog_sim_core::{NanoSeconds, PicoJoules};

/// Bits stored per TLC cell.
pub const BITS_PER_CELL: usize = 3;

/// One of the eight TLC resistance states, named by its 3-bit pattern.
///
/// # Example
///
/// ```
/// use morlog_encoding::CellState;
/// let s = CellState::new(0b101);
/// assert_eq!(s.bits(), 5);
/// assert_eq!(format!("{s}"), "101");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CellState(u8);

impl CellState {
    /// Creates a state from its 3-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 7`.
    pub fn new(bits: u8) -> Self {
        assert!(bits < 8, "TLC state {bits} out of range 0..8");
        CellState(bits)
    }

    /// Returns the 3-bit value.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// All eight states in ascending bit order.
    pub fn all() -> [CellState; 8] {
        [0, 1, 2, 3, 4, 5, 6, 7].map(CellState)
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

/// Per-state program latency and energy plus read latency — the device-side
/// numbers of Table III, with an optional uniform write-latency scale used by
/// the §VI-E sensitivity sweep.
///
/// # Example
///
/// ```
/// use morlog_encoding::{CellModel, CellState};
/// let m = CellModel::table_iii();
/// assert!((m.write_latency(CellState::new(0b111)).as_f64() - 12.1).abs() < 1e-9);
/// assert!((m.write_energy(CellState::new(0b100)).as_f64() - 35.6).abs() < 1e-9);
/// let slow = m.with_write_latency_scale(2.0);
/// assert!((slow.write_latency(CellState::new(0b111)).as_f64() - 24.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellModel {
    latency_ns: [f64; 8],
    energy_pj: [f64; 8],
    read_latency_ns: f64,
    write_latency_scale: f64,
}

impl CellModel {
    /// The TLC RRAM parameters of Table III (also used by refs.\ 42, 45, 61 of the paper).
    pub fn table_iii() -> Self {
        CellModel {
            //           000   001   010   011   100    101    110   111
            latency_ns: [15.2, 46.8, 98.3, 143.0, 150.0, 101.0, 52.7, 12.1],
            energy_pj: [2.0, 6.7, 19.3, 35.1, 35.6, 19.6, 8.5, 1.5],
            read_latency_ns: 25.0,
            write_latency_scale: 1.0,
        }
    }

    /// Returns a copy with all write latencies scaled by `scale` (the §VI-E
    /// NVMM-latency sensitivity study sweeps ×1..×32).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn with_write_latency_scale(&self, scale: f64) -> CellModel {
        assert!(
            scale.is_finite() && scale > 0.0,
            "invalid latency scale {scale}"
        );
        CellModel {
            write_latency_scale: scale,
            ..self.clone()
        }
    }

    /// Program latency for writing `state` into a cell.
    pub fn write_latency(&self, state: CellState) -> NanoSeconds {
        NanoSeconds::new(self.latency_ns[state.bits() as usize] * self.write_latency_scale)
    }

    /// Program energy for writing `state` into a cell.
    pub fn write_energy(&self, state: CellState) -> PicoJoules {
        PicoJoules::new(self.energy_pj[state.bits() as usize])
    }

    /// Array read latency (25 ns in Table III).
    pub fn read_latency(&self) -> NanoSeconds {
        NanoSeconds::new(self.read_latency_ns)
    }

    /// Average write energy over all eight states (≈16.0 pJ; the paper uses
    /// this figure when arguing SLDE's energy overhead is negligible, §IV-C).
    pub fn average_write_energy(&self) -> PicoJoules {
        PicoJoules::new(self.energy_pj.iter().sum::<f64>() / 8.0)
    }

    /// The states sorted by ascending write energy. Incomplete data mappings
    /// restrict writes to a prefix of this order.
    pub fn states_by_energy(&self) -> [CellState; 8] {
        let mut order = CellState::all();
        order.sort_by(|a, b| {
            self.energy_pj[a.bits() as usize]
                .partial_cmp(&self.energy_pj[b.bits() as usize])
                .expect("energies are finite")
        });
        order
    }
}

impl Default for CellModel {
    fn default() -> Self {
        CellModel::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let m = CellModel::table_iii();
        let lat: Vec<f64> = CellState::all()
            .iter()
            .map(|&s| m.write_latency(s).as_f64())
            .collect();
        assert_eq!(lat, vec![15.2, 46.8, 98.3, 143.0, 150.0, 101.0, 52.7, 12.1]);
        let en: Vec<f64> = CellState::all()
            .iter()
            .map(|&s| m.write_energy(s).as_f64())
            .collect();
        assert_eq!(en, vec![2.0, 6.7, 19.3, 35.1, 35.6, 19.6, 8.5, 1.5]);
        assert!((m.read_latency().as_f64() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn average_energy_is_sixteen() {
        // The paper: "the averaged write energy of a TLC RRAM cell is 16.0 pJ".
        let m = CellModel::table_iii();
        assert!((m.average_write_energy().as_f64() - 16.0375).abs() < 0.05);
    }

    #[test]
    fn energy_order_starts_with_cheap_states() {
        let m = CellModel::table_iii();
        let order = m.states_by_energy();
        assert_eq!(order[0], CellState::new(0b111)); // 1.5 pJ
        assert_eq!(order[1], CellState::new(0b000)); // 2.0 pJ
        assert_eq!(order[2], CellState::new(0b001)); // 6.7 pJ
        assert_eq!(order[3], CellState::new(0b110)); // 8.5 pJ
        assert_eq!(order[7], CellState::new(0b100)); // 35.6 pJ
    }

    #[test]
    fn latency_scaling() {
        let m = CellModel::table_iii().with_write_latency_scale(32.0);
        assert!((m.write_latency(CellState::new(4)).as_f64() - 4800.0).abs() < 1e-9);
        // Energy and read latency are unaffected.
        assert!((m.write_energy(CellState::new(4)).as_f64() - 35.6).abs() < 1e-12);
        assert!((m.read_latency().as_f64() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn state_out_of_range_panics() {
        CellState::new(8);
    }

    #[test]
    #[should_panic(expected = "invalid latency scale")]
    fn bad_scale_panics() {
        CellModel::table_iii().with_write_latency_scale(0.0);
    }
}
