//! Little-endian bit packing used to build encoded write payloads.
//!
//! Encoders emit (tag, payload) pairs; the bit writer packs them into `u64`
//! words that [`crate::expansion::map_payload`] spreads over cells. The bit
//! reader implements the decode path used during recovery.

/// Packs variable-width fields into a little-endian bit stream.
///
/// # Example
///
/// ```
/// use morlog_encoding::bits::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.push(0b101, 3);
/// w.push(0xFF, 8);
/// let (words, bits) = w.finish();
/// assert_eq!(bits, 11);
/// let mut r = BitReader::new(&words, bits);
/// assert_eq!(r.pull(3), 0b101);
/// assert_eq!(r.pull(8), 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    bits: usize,
}

impl BitWriter {
    /// Creates an empty stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} too large");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let word_idx = self.bits / 64;
        let bit_idx = (self.bits % 64) as u32;
        if self.words.len() <= word_idx {
            self.words.push(0);
        }
        self.words[word_idx] |= value << bit_idx;
        let spill = bit_idx + width;
        if spill > 64 {
            self.words.push(value >> (64 - bit_idx));
        }
        self.bits += width as usize;
    }

    /// Current stream length in bits.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// Finishes the stream, returning the packed words and the bit count.
    pub fn finish(self) -> (Vec<u64>, usize) {
        (self.words, self.bits)
    }
}

/// Reads fields back out of a packed bit stream.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u64],
    bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a packed stream of `bits` valid bits.
    pub fn new(words: &'a [u64], bits: usize) -> Self {
        BitReader {
            words,
            bits,
            pos: 0,
        }
    }

    /// Reads the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics when reading past the end of the stream.
    pub fn pull(&mut self, width: u32) -> u64 {
        assert!(width <= 64, "field width {width} too large");
        assert!(
            self.pos + width as usize <= self.bits,
            "bit stream underrun"
        );
        if width == 0 {
            return 0;
        }
        let word_idx = self.pos / 64;
        let bit_idx = (self.pos % 64) as u32;
        let mut value = self.words[word_idx] >> bit_idx;
        if bit_idx + width > 64 {
            value |= self.words[word_idx + 1] << (64 - bit_idx);
        }
        self.pos += width as usize;
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Bits remaining to be read.
    pub fn remaining(&self) -> usize {
        self.bits - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream() {
        let (words, bits) = BitWriter::new().finish();
        assert!(words.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn cross_word_boundary() {
        let mut w = BitWriter::new();
        w.push((1u64 << 60) - 1, 60);
        w.push(0b1011, 4);
        w.push(0xABCD, 16);
        let (words, bits) = w.finish();
        assert_eq!(bits, 80);
        let mut r = BitReader::new(&words, bits);
        assert_eq!(r.pull(60), (1u64 << 60) - 1);
        assert_eq!(r.pull(4), 0b1011);
        assert_eq!(r.pull(16), 0xABCD);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn full_width_fields() {
        let mut w = BitWriter::new();
        w.push(0xDEAD_BEEF_CAFE_F00D, 64);
        w.push(1, 1);
        w.push(0x0123_4567_89AB_CDEF, 64);
        let (words, bits) = w.finish();
        let mut r = BitReader::new(&words, bits);
        assert_eq!(r.pull(64), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.pull(1), 1);
        assert_eq!(r.pull(64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn many_small_fields_round_trip() {
        let mut w = BitWriter::new();
        for i in 0..200u64 {
            w.push(i % 8, 3);
        }
        let (words, bits) = w.finish();
        assert_eq!(bits, 600);
        let mut r = BitReader::new(&words, bits);
        for i in 0..200u64 {
            assert_eq!(r.pull(3), i % 8);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().push(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut w = BitWriter::new();
        w.push(3, 2);
        let (words, bits) = w.finish();
        BitReader::new(&words, bits).pull(3);
    }

    #[test]
    fn zero_width_fields_are_noops() {
        let mut w = BitWriter::new();
        w.push(0, 0);
        w.push(5, 3);
        let (words, bits) = w.finish();
        assert_eq!(bits, 3);
        let mut r = BitReader::new(&words, bits);
        assert_eq!(r.pull(0), 0);
        assert_eq!(r.pull(3), 5);
    }
}
