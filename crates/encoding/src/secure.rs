//! Secure-NVMM modelling (§IV-D).
//!
//! Systems that encrypt NVMM suffer from the diffusion property: changing
//! one plaintext bit flips about half the ciphertext bits, destroying the
//! clean-byte structure SLDE exploits. DEUCE (Young et al., ASPLOS'15)
//! re-encrypts only the *dirty words* of a line, so clean words keep their
//! ciphertext; §IV-D argues SLDE still works under such schemes.
//!
//! This module models the three cases as a transformation applied to a log
//! word (value + dirty flag) before it reaches the encoder:
//!
//! * [`SecureMode::None`] — plaintext NVMM (the paper's main evaluation).
//! * [`SecureMode::Deuce`] — dirty words become fully dirty ciphertext;
//!   clean words are untouched. Byte-level clean discarding degrades to
//!   word-level, but silent log writes survive.
//! * [`SecureMode::Full`] — whole-line re-encryption: every logged word is
//!   fully dirty ciphertext; SLDE degenerates to the FPC path (which also
//!   fails on high-entropy ciphertext).
//!
//! The "encryption" is a keyed 64-bit mixing permutation — cryptographically
//! worthless but statistically faithful (uniform, high-entropy output),
//! which is all the write-cost model observes.

use crate::slde::LogWordRequest;

/// How the NVMM contents are encrypted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SecureMode {
    /// Plaintext NVMM.
    #[default]
    None,
    /// DEUCE-style dual-counter encryption: only dirty words re-encrypt.
    Deuce,
    /// Naive whole-line re-encryption: everything diffuses.
    Full,
}

impl SecureMode {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SecureMode::None => "plaintext",
            SecureMode::Deuce => "DEUCE",
            SecureMode::Full => "full-encryption",
        }
    }
}

/// A keyed 64-bit mixing permutation standing in for AES-CTR ciphertext.
/// Bijective (xor-shift-multiply rounds), so "decryption" exists in
/// principle; statistically uniform output is what matters here.
pub fn scramble(value: u64, key: u64) -> u64 {
    let mut x = value ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Applies the secure-NVMM transformation to a log word before encoding.
///
/// Under [`SecureMode::Deuce`] a word with any dirty byte becomes a fully
/// dirty ciphertext word (the re-encryption diffuses the whole word) while
/// a completely clean word stays identical; under [`SecureMode::Full`]
/// every word becomes fully dirty ciphertext.
///
/// # Example
///
/// ```
/// use morlog_encoding::secure::{transform_log_word, SecureMode};
/// use morlog_encoding::slde::LogWordRequest;
///
/// let w = LogWordRequest::with_mask(0x1122, 0b1); // one dirty byte
/// let none = transform_log_word(&w, SecureMode::None, 7);
/// assert_eq!(none.dirty_mask, 0b1);
/// let deuce = transform_log_word(&w, SecureMode::Deuce, 7);
/// assert_eq!(deuce.dirty_mask, 0xFF, "dirty word diffuses fully");
/// let clean = LogWordRequest::with_mask(0x1122, 0);
/// let deuce_clean = transform_log_word(&clean, SecureMode::Deuce, 7);
/// assert_eq!(deuce_clean.dirty_mask, 0, "clean word keeps its ciphertext");
/// ```
pub fn transform_log_word(req: &LogWordRequest, mode: SecureMode, key: u64) -> LogWordRequest {
    match mode {
        SecureMode::None => *req,
        SecureMode::Deuce => {
            if req.dirty_mask == 0 {
                *req
            } else {
                LogWordRequest {
                    new: scramble(req.new, key),
                    dirty_mask: 0xFF,
                    log_data: req.log_data,
                }
            }
        }
        SecureMode::Full => LogWordRequest {
            new: scramble(req.new, key),
            dirty_mask: if req.log_data { 0xFF } else { req.dirty_mask },
            log_data: req.log_data,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellModel;
    use crate::slde::{EncodingChoice, SldeCodec};

    #[test]
    fn scramble_is_deterministic_and_diffusing() {
        assert_eq!(scramble(42, 7), scramble(42, 7));
        assert_ne!(scramble(42, 7), scramble(42, 8));
        // One input bit flips roughly half the output bits.
        let a = scramble(0x1000, 7);
        let b = scramble(0x1001, 7);
        let flips = (a ^ b).count_ones();
        assert!((16..=48).contains(&flips), "diffusion: {flips} bit flips");
    }

    #[test]
    fn deuce_preserves_silent_words() {
        let clean = LogWordRequest::with_mask(0xABCD, 0);
        let t = transform_log_word(&clean, SecureMode::Deuce, 1);
        assert_eq!(t, clean);
    }

    #[test]
    fn full_encryption_defeats_dldc() {
        // A nearly-clean word: under plaintext DLDC wins; under full
        // encryption the word is raw ciphertext and FPC's escape is all
        // that remains.
        let codec = SldeCodec::new(CellModel::table_iii());
        let plain = LogWordRequest::redo(0xAA00, 0xAA01);
        let enc_plain = codec.encode_log_word(&plain);
        assert_ne!(enc_plain.choice, EncodingChoice::Fpc);
        let full = transform_log_word(&plain, SecureMode::Full, 9);
        let enc_full = codec.encode_log_word(&full);
        assert!(enc_full.payload_bits > enc_plain.payload_bits);
    }

    #[test]
    fn deuce_sits_between_plaintext_and_full() {
        let codec = SldeCodec::new(CellModel::table_iii());
        // Average encoded bits over a population of small-delta updates.
        let mut bits = [0u64; 3];
        for i in 0..500u64 {
            let old = i.wrapping_mul(0x0101_0101).wrapping_add(0x4000_0000);
            let new = old + 1 + (i % 9);
            let req = LogWordRequest::redo(new, old);
            for (slot, mode) in [SecureMode::None, SecureMode::Deuce, SecureMode::Full]
                .iter()
                .enumerate()
            {
                let t = transform_log_word(&req, *mode, 0xFEED);
                bits[slot] += codec.encode_log_word(&t).payload_bits as u64;
            }
        }
        assert!(
            bits[0] < bits[1],
            "plaintext beats DEUCE ({} vs {})",
            bits[0],
            bits[1]
        );
        assert!(
            bits[1] <= bits[2],
            "DEUCE beats full encryption ({} vs {})",
            bits[1],
            bits[2]
        );
    }
}
