//! Mutation self-test: the checker must flag deliberately broken designs
//! and clear every real one. This is the subsystem's teeth — a checker
//! that passes sabotaged persist orderings proves nothing.

use morlog_checker::{check, double_store_trace, CheckOptions};
use morlog_sim_core::{CheckMutation, DesignKind, SystemConfig};

/// Smoke configuration: force-write-back scans every 16 cycles. The scan
/// is two-phase (flag, then write back one period later), so a freshly
/// dirtied line reaches NVMM 17–32 cycles after its first store — inside
/// the 32-cycle window where its undo record is still buffered (eager
/// eviction persists it at age 32). That is exactly the undo→data
/// ordering window the dropped fence sabotages; with a slower scan the
/// write-back always trails the undo persist and the mutation would be
/// unobservable. Real designs must pass even under this aggressive
/// schedule.
fn smoke_cfg(design: DesignKind) -> SystemConfig {
    let mut cfg = SystemConfig::for_design(design);
    cfg.hierarchy.force_write_back_period = 16;
    cfg
}

#[test]
fn real_synchronous_design_passes_exhaustively() {
    let cfg = smoke_cfg(DesignKind::MorLogSlde);
    let trace = double_store_trace(&cfg, 6);
    let report = check(&cfg, &trace, &CheckOptions::default());
    assert!(report.stats.explored > 0);
    assert_eq!(report.stats.capped, 0, "smoke run must be exhaustive");
    assert_eq!(
        report.stats.failures,
        0,
        "real design failed: {:?}",
        report.failures.first()
    );
    assert!(report.counterexample.is_none());
}

#[test]
fn real_dp_design_passes_exhaustively() {
    let cfg = smoke_cfg(DesignKind::MorLogDp);
    let trace = double_store_trace(&cfg, 6);
    let report = check(&cfg, &trace, &CheckOptions::default());
    assert_eq!(
        report.stats.failures,
        0,
        "real DP design failed: {:?}",
        report.failures.first()
    );
}

#[test]
fn torn_drain_variant_composes_with_hardened_recovery() {
    let cfg = smoke_cfg(DesignKind::MorLogSlde);
    let trace = double_store_trace(&cfg, 4);
    let opts = CheckOptions {
        fault_variant: true,
        fault_seed: 0xC0FFEE,
        ..CheckOptions::default()
    };
    let report = check(&cfg, &trace, &opts);
    // Every point ran twice: base + torn-drain variant.
    assert_eq!(report.stats.explored % 2, 0);
    assert_eq!(
        report.stats.failures,
        0,
        "hardened recovery must absorb a torn drain at every boundary: {:?}",
        report.failures.first()
    );
}

#[test]
fn drop_undo_fence_mutation_yields_minimized_counterexample() {
    let mut cfg = smoke_cfg(DesignKind::MorLogSlde);
    cfg.mutation = CheckMutation::DropUndoFence;
    let trace = double_store_trace(&cfg, 6);
    let report = check(&cfg, &trace, &CheckOptions::default());
    assert!(
        report.stats.failures > 0,
        "dropping the undo→data fence must be caught"
    );
    let cx = report.counterexample.expect("counterexample emitted");
    assert!(
        report.failures.iter().all(|f| f.point >= cx.point),
        "counterexample must be the smallest failing prefix"
    );
    assert!(!cx.error.is_empty());
    assert!(
        cx.trace_jsonl.contains("\"crash\""),
        "trace must include the crash event"
    );
    assert!(
        cx.trace_jsonl.contains("\"recovery\""),
        "trace must include recovery steps"
    );
}

#[test]
fn skip_ulog_bump_mutation_yields_minimized_counterexample() {
    let mut cfg = smoke_cfg(DesignKind::MorLogDp);
    // This mutation needs `ULog` words to form: the second store to a word
    // must land while the first store's record is persisted but the line is
    // still dirty in cache. The 16-cycle scan writes the line back between
    // the store pairs and resets the word state, so use the slower period
    // here; the dropped-fence test covers the fast-scan schedule.
    cfg.hierarchy.force_write_back_period = 64;
    cfg.mutation = CheckMutation::SkipUlogBump;
    let trace = double_store_trace(&cfg, 6);
    let report = check(&cfg, &trace, &CheckOptions::default());
    assert!(
        report.stats.failures > 0,
        "skipping the DP ulog bump must be caught"
    );
    let cx = report.counterexample.expect("counterexample emitted");
    assert!(report.failures.iter().all(|f| f.point >= cx.point));
    assert!(cx.trace_jsonl.contains("\"crash\""));
}

#[test]
fn reports_are_deterministic() {
    let cfg = smoke_cfg(DesignKind::MorLogDp);
    let trace = double_store_trace(&cfg, 3);
    let opts = CheckOptions {
        fault_variant: true,
        fault_seed: 7,
        ..CheckOptions::default()
    };
    let a = check(&cfg, &trace, &opts);
    let b = check(&cfg, &trace, &opts);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.failures, b.failures);
}
