//! Fuzz-campaign, differential, and partial-order-reduction self-tests:
//! the random mode must catch both sabotaged persist orderings on a
//! large workload, the differential mode must pin a spec-divergence
//! mutant to the design carrying it, and the reduced exhaustive mode
//! must agree with the unreduced one while doing strictly less work.

use morlog_checker::differential::diff;
use morlog_checker::{check, double_store_trace, fuzz, CheckOptions, DiffCulprit, FuzzOptions};
use morlog_sim_core::{CheckMutation, DesignKind, SystemConfig};

/// Aggressive force-write-back schedule (see `self_test.rs`): the scan
/// writes freshly dirtied lines back inside the window where their undo
/// records are still buffered, which is the ordering the dropped fence
/// sabotages.
fn smoke_cfg(design: DesignKind) -> SystemConfig {
    let mut cfg = SystemConfig::for_design(design);
    cfg.hierarchy.force_write_back_period = 16;
    cfg
}

/// The ≥500-transaction campaign workload: 2 threads × 250 transactions.
const FUZZ_TXS_PER_THREAD: usize = 250;

/// Pinned campaign budget for the mutant-catching tests. The campaign is
/// deterministic, so this seed/size pair is known to land on failing
/// points for both mutations; bump `points` before reaching for a new
/// seed if a legitimate change to the persist schedule ever dodges it.
fn campaign() -> FuzzOptions {
    FuzzOptions {
        seed: 0x5EED_CAFE,
        points: 6,
        fault_seed: 0xFA11,
        neighborhood: 1,
    }
}

#[test]
fn random_campaign_catches_dropped_undo_fence_at_scale() {
    let mut cfg = smoke_cfg(DesignKind::MorLogSlde);
    cfg.mutation = CheckMutation::DropUndoFence;
    let trace = double_store_trace(&cfg, FUZZ_TXS_PER_THREAD);
    let report = fuzz(&cfg, &trace, &campaign());
    assert!(
        report.stats.failures > 0,
        "random campaign must catch the dropped undo→data fence \
         (sampled {}, executed {})",
        report.stats.sampled,
        report.stats.executed
    );
    let cx = report.counterexample.expect("counterexample emitted");
    assert!(!cx.error.is_empty());
    assert!(
        cx.trace_jsonl.contains("\"crash\""),
        "trace must include the crash event"
    );
}

#[test]
fn random_campaign_catches_skipped_ulog_bump_at_scale() {
    let mut cfg = smoke_cfg(DesignKind::MorLogDp);
    // ULog words need the slower scan to form; see `self_test.rs`.
    cfg.hierarchy.force_write_back_period = 64;
    cfg.mutation = CheckMutation::SkipUlogBump;
    let trace = double_store_trace(&cfg, FUZZ_TXS_PER_THREAD);
    let report = fuzz(&cfg, &trace, &campaign());
    assert!(
        report.stats.failures > 0,
        "random campaign must catch the skipped ulog bump \
         (sampled {}, executed {})",
        report.stats.sampled,
        report.stats.executed
    );
    assert!(report.counterexample.is_some());
}

#[test]
fn random_campaign_clears_real_design_and_is_deterministic() {
    let cfg = smoke_cfg(DesignKind::MorLogSlde);
    let trace = double_store_trace(&cfg, 12);
    let opts = FuzzOptions {
        points: 16,
        ..campaign()
    };
    let a = fuzz(&cfg, &trace, &opts);
    assert_eq!(
        a.stats.failures,
        0,
        "real design failed under fuzzing: {:?}",
        a.failures.first()
    );
    // Campaign invariants.
    assert_eq!(a.stats.executed + a.stats.pruned, a.stats.sampled);
    assert_eq!(a.stats.verified + a.stats.failures, a.stats.executed);
    assert!(a.coverage > 0, "campaign must light coverage buckets");
    assert!(a.stats.novel > 0, "first hits must register as novel");
    // Same seed, same campaign — byte for byte.
    let b = fuzz(&cfg, &trace, &opts);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.coverage, b.coverage);
}

#[test]
fn differential_pins_spec_divergence_to_the_mutated_design() {
    // The slower scan lets `ULog` words form, so the sync commit path
    // queues redo records for them — the records the skew corrupts. At
    // the aggressive period the skew has almost no surface (the line is
    // written back and its word states reset between the store pairs).
    let mut skewed = smoke_cfg(DesignKind::MorLogSlde);
    skewed.hierarchy.force_write_back_period = 64;
    skewed.mutation = CheckMutation::SkewRedoValue;
    let mut clean = smoke_cfg(DesignKind::MorLogSlde);
    clean.hierarchy.force_write_back_period = 64;
    let trace = double_store_trace(&clean, 6);
    let report = diff(&skewed, &clean, &trace, 8);
    assert!(
        report.divergences > 0,
        "skewed redo values must diverge from the clean design"
    );
    let d = report.divergence.expect("minimized divergence emitted");
    assert_eq!(
        d.culprit,
        DiffCulprit::DesignA,
        "the mutated design must be tagged as the culprit: {}",
        d.error
    );
    assert!(!d.trace_jsonl.is_empty());
}

#[test]
fn differential_tolerates_legitimate_cross_design_variation() {
    // Slde vs DP accept different persist schedules and legitimately lose
    // different transaction suffixes at matched fractions; that must not
    // read as divergence.
    let a = smoke_cfg(DesignKind::MorLogSlde);
    let b = smoke_cfg(DesignKind::MorLogDp);
    let trace = double_store_trace(&a, 6);
    let report = diff(&a, &b, &trace, 8);
    assert_eq!(
        report.divergences,
        0,
        "clean designs must not diverge: {:?}",
        report.divergence.map(|d| d.error)
    );
    assert_eq!(report.checked, 8);
}

#[test]
fn reduction_shrinks_exhaustive_exploration_without_changing_verdicts() {
    // 32-transaction double-store workload: the reduced exploration must
    // execute strictly fewer points and reach the same verdict.
    let cfg = smoke_cfg(DesignKind::MorLogSlde);
    let trace = double_store_trace(&cfg, 16);
    let base = check(&cfg, &trace, &CheckOptions::default());
    let reduced = check(
        &cfg,
        &trace,
        &CheckOptions {
            reduce: true,
            ..CheckOptions::default()
        },
    );
    assert!(
        reduced.stats.explored < base.stats.explored,
        "reduction must skip pinned points ({} vs {})",
        reduced.stats.explored,
        base.stats.explored
    );
    assert_eq!(reduced.stats.events, base.stats.events);
    assert_eq!(
        reduced.stats.explored + reduced.stats.pruned,
        base.stats.explored + base.stats.pruned,
        "pinned points move to the pruned counter, none vanish"
    );
    assert_eq!(base.stats.failures, 0);
    assert_eq!(reduced.stats.failures, 0);
    assert!(reduced.counterexample.is_none());
}

#[test]
fn reduction_preserves_the_minimized_counterexample() {
    // On a sabotaged design the reduced exploration may skip *later*
    // failing points (each is equivalent to its predecessor) but can
    // never skip the smallest one: a pinned point's verdict equals its
    // predecessor's, so the smallest failure is always kept.
    let mut cfg = smoke_cfg(DesignKind::MorLogSlde);
    cfg.mutation = CheckMutation::DropUndoFence;
    let trace = double_store_trace(&cfg, 6);
    let base = check(&cfg, &trace, &CheckOptions::default());
    let reduced = check(
        &cfg,
        &trace,
        &CheckOptions {
            reduce: true,
            ..CheckOptions::default()
        },
    );
    assert!(base.stats.failures > 0 && reduced.stats.failures > 0);
    let (bcx, rcx) = (
        base.counterexample.expect("base counterexample"),
        reduced.counterexample.expect("reduced counterexample"),
    );
    assert_eq!(bcx.point, rcx.point, "minimized counterexample must agree");
    assert_eq!(bcx.error, rcx.error);
}
