//! Coverage-guided random crash campaigns.
//!
//! Exhaustive exploration ([`crate::plan`]) is the gold standard but its
//! cost is linear in persist events, which caps it at toy workloads. The
//! fuzzer trades exhaustiveness for scale: on a workload with thousands of
//! transactions it *samples* crash points with a seeded generator, prunes
//! samples the persist-domain hash proves redundant, composes a fault
//! variant (torn drain, crash-time bit flip, stuck-at wear) for a slice of
//! the samples, and feeds a [`CoverageMap`] with the (event kind, progress
//! decile) bucket of every executed point. A sample lighting a previously
//! empty bucket is *novel*: the campaign resamples its neighborhood
//! (`point ± 1..=radius`), on the theory that a fresh kind/phase
//! combination marks a schedule region the random draws have been
//! starving.
//!
//! The whole plan is built serially from one [`DetRng`] stream, so a given
//! `(seed, points)` pair always yields the same item list; execution is
//! embarrassingly parallel and the `bench` harness shards it across the
//! `SweepRunner` pool with input-order reassembly, keeping campaign
//! reports byte-identical across `MORLOG_CHECK_SHARDS` settings.

use crate::coverage::CoverageMap;
use crate::{run_point, PointOutcome};
use morlog_sim::System;
use morlog_sim_core::{
    DetRng, FaultVariantKind, FuzzStats, PersistEventKind, PersistEventMeta, SystemConfig,
};
use morlog_workloads::WorkloadTrace;
use std::collections::HashSet;

/// Tuning knobs for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Seed for the campaign's point draws and variant picks.
    pub seed: u64,
    /// Base crash points to draw (neighborhood resampling adds more).
    pub points: u64,
    /// Base seed for per-point fault plans (keyed via
    /// [`FaultVariantKind::point_seed`], so plans are deterministic per
    /// point regardless of sharding).
    pub fault_seed: u64,
    /// Resample radius around points that light a novel coverage bucket.
    pub neighborhood: u64,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0x4d6f_724c_6f67_f00d,
            points: 64,
            fault_seed: 0,
            neighborhood: 2,
        }
    }
}

/// One campaign work item: a crash point plus the fault variant to run it
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuzzItem {
    /// Persist events completed before the crash.
    pub point: u64,
    /// Fault plan family composed at this point.
    pub variant: FaultVariantKind,
}

/// Verdict of one executed campaign item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// The item that was replayed.
    pub item: FuzzItem,
    /// The oracle's description of the violation, if any.
    pub error: Option<String>,
}

/// The campaign's deterministic work list plus plan-side counters.
#[derive(Debug, Clone)]
pub struct FuzzPlan {
    /// Items to execute, in draw order (already deduplicated and
    /// hash-pruned).
    pub items: Vec<FuzzItem>,
    /// Persist events in the reference schedule.
    pub events: u64,
    /// The reference run's persist-domain hash samples (`samples[i]` =
    /// fold right after event `i + 1`) — the persist-state signature of
    /// each crash point, used downstream to deduplicate counterexamples.
    pub samples: Vec<u64>,
    /// Plan-side counters: `events`, `sampled`, `novel`, `pruned` are
    /// filled here; the execution-side counters stay zero until
    /// [`assemble_fuzz`].
    pub stats: FuzzStats,
    /// Coverage buckets lit during planning (out of
    /// [`CoverageMap::total_buckets`]).
    pub coverage: u64,
}

/// The smallest failing campaign item plus its replayable evidence.
#[derive(Debug, Clone)]
pub struct FuzzCounterexample {
    /// Persist events completed before the failing crash.
    pub point: u64,
    /// Fault variant the failure needed.
    pub variant: FaultVariantKind,
    /// The oracle's description of the violation.
    pub error: String,
    /// JSONL event trace of the failing replay, consumable by
    /// `trace_lint` and `trace2perfetto`.
    pub trace_jsonl: String,
}

/// Aggregated verdict of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Campaign counters (see [`FuzzStats`]).
    pub stats: FuzzStats,
    /// Every failing item, ordered by (point, variant).
    pub failures: Vec<FuzzOutcome>,
    /// Coverage buckets lit by the campaign.
    pub coverage: u64,
    /// The minimized counterexample, when any item failed.
    pub counterexample: Option<FuzzCounterexample>,
}

/// Builds the deterministic campaign work list.
///
/// One reference run records the persist-domain hash samples (the pruning
/// signal) and the persist-event metadata stream (the coverage signal).
/// Each base draw picks a point uniformly from `0..=events` and a variant
/// from [`FaultVariantKind::ALL`]; hash-equivalent base-variant points are
/// pruned, novel-bucket points seed neighborhood resampling.
pub fn fuzz_plan(cfg: &SystemConfig, trace: &WorkloadTrace, opts: &FuzzOptions) -> FuzzPlan {
    let mut sys = System::new(cfg.clone(), trace);
    sys.enable_persist_hash();
    sys.enable_persist_meta();
    sys.run();
    let samples = sys.persist_hash_samples().to_vec();
    let kinds: Vec<PersistEventKind> = sys
        .persist_event_meta()
        .iter()
        .filter_map(PersistEventMeta::kind)
        .collect();
    let events = samples.len() as u64;
    debug_assert_eq!(kinds.len() as u64, events, "meta/hash streams must agree");

    // `point` is hash-equivalent to `point - 1`: event `point` left the
    // persist domain bit-identical, so a crash there proves nothing new.
    // Only the base variant is prunable — fault plans are keyed by the
    // point index, so equal pre-fault states still diverge post-fault.
    let silent =
        |point: u64| point >= 2 && samples[point as usize - 1] == samples[point as usize - 2];

    let mut rng = DetRng::for_stream(opts.seed, 0x6675_7a7a);
    let mut coverage = CoverageMap::new();
    let mut seen: HashSet<FuzzItem> = HashSet::new();
    let mut items = Vec::new();
    let mut stats = FuzzStats {
        events,
        ..FuzzStats::default()
    };
    // (point, variant) candidates pending admission; base draws push one
    // candidate each, novelty pushes the neighborhood.
    let mut queue: Vec<FuzzItem> = Vec::new();
    for _ in 0..opts.points {
        let point = rng.gen_range(events + 1);
        let variant =
            FaultVariantKind::ALL[rng.gen_range(FaultVariantKind::ALL.len() as u64) as usize];
        queue.push(FuzzItem { point, variant });
        while let Some(item) = queue.pop() {
            if !seen.insert(item) {
                continue;
            }
            stats.sampled += 1;
            if item.variant == FaultVariantKind::Base && silent(item.point) {
                stats.pruned += 1;
                continue;
            }
            items.push(item);
            let novel = item.point >= 1
                && coverage.record(kinds[item.point as usize - 1], item.point, events);
            if novel {
                stats.novel += 1;
                for delta in 1..=opts.neighborhood {
                    for neighbor in [item.point.saturating_sub(delta), item.point + delta] {
                        if neighbor <= events && neighbor != item.point {
                            queue.push(FuzzItem {
                                point: neighbor,
                                variant: FaultVariantKind::Base,
                            });
                        }
                    }
                }
            }
        }
    }
    let coverage = coverage.hit_buckets();
    FuzzPlan {
        items,
        events,
        samples,
        stats,
        coverage,
    }
}

/// Replays one campaign item (crash, recover, verify) under its variant's
/// point-keyed fault plan.
pub fn run_fuzz_item(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    item: FuzzItem,
    fault_seed: u64,
) -> FuzzOutcome {
    let PointOutcome { error, .. } = run_point(
        cfg,
        trace,
        item.point,
        item.variant.plan_for(fault_seed, item.point),
    );
    FuzzOutcome { item, error }
}

/// Merges campaign outcomes into the final report, deterministically: the
/// failure list is sorted by (point, variant) and the minimized
/// counterexample (smallest failing point, mildest variant) is re-run
/// with tracing enabled to capture its JSONL evidence.
pub fn assemble_fuzz(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    opts: &FuzzOptions,
    plan: &FuzzPlan,
    outcomes: Vec<FuzzOutcome>,
) -> FuzzReport {
    let mut stats = plan.stats;
    stats.executed = outcomes.len() as u64;
    let mut failures: Vec<FuzzOutcome> =
        outcomes.into_iter().filter(|o| o.error.is_some()).collect();
    failures.sort_by_key(|o| (o.item.point, o.item.variant.index()));
    stats.failures = failures.len() as u64;
    stats.verified = stats.executed - stats.failures;
    let counterexample = failures.first().map(|f| {
        let mut traced = cfg.clone();
        traced.trace.enabled = true;
        traced.trace.buffer_capacity = 1 << 20;
        let mut sys = System::new(traced, trace);
        if let Some(plan) = f.item.variant.plan_for(opts.fault_seed, f.item.point) {
            sys.set_fault_plan(plan);
        }
        sys.arm_crash_at(f.item.point);
        sys.run_until_crash_point();
        sys.crash();
        let report = sys.recover();
        let error = sys
            .verify_recovery(&report)
            .err()
            .unwrap_or_else(|| "violation did not reproduce under tracing".to_string());
        FuzzCounterexample {
            point: f.item.point,
            variant: f.item.variant,
            error,
            trace_jsonl: sys.tracer().to_jsonl(),
        }
    });
    FuzzReport {
        stats,
        failures,
        coverage: plan.coverage,
        counterexample,
    }
}

/// Plans and executes a whole campaign on the calling thread. The `bench`
/// harness shards the execution loop instead; this serial driver is the
/// reference the sharded path must match byte-for-byte.
pub fn fuzz(cfg: &SystemConfig, trace: &WorkloadTrace, opts: &FuzzOptions) -> FuzzReport {
    let plan = fuzz_plan(cfg, trace, opts);
    let outcomes = plan
        .items
        .iter()
        .map(|&item| run_fuzz_item(cfg, trace, item, opts.fault_seed))
        .collect();
    assemble_fuzz(cfg, trace, opts, &plan, outcomes)
}
