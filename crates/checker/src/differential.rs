//! Differential cross-design crash checking.
//!
//! The oracle checks one design against the *program*; this module checks
//! two designs against *each other*. Both run the same workload; the
//! reference runs yield each design's persist-event count, and the two
//! schedules are crashed at matched persist-progress fractions (the two
//! designs accept different event streams, so absolute points are not
//! comparable — fractions of total progress are). After crash + recovery:
//!
//! 1. Each design is verified against its own oracle. A failure tags the
//!    *culprit* design — this is how a spec-divergence mutant such as
//!    [`CheckMutation::SkewRedoValue`] is pinned to the design carrying
//!    it.
//! 2. When both pass, recovered program-visible state is compared where a
//!    cross-design invariant holds:
//!    - on the **final** pair (crash after the full schedule, both
//!      designs quiesced) every workload-touched word must match exactly;
//!    - on interim pairs, when both designs rolled forward and rolled
//!      back the *same* transaction sets, words owned by exactly one
//!      redone transaction must match (both recoveries replayed the same
//!      transaction's redo values, which are program-determined).
//!
//!    Interim pairs with differing replay sets are legitimately divergent
//!    schedules and are not compared — persist progress is a per-design
//!    notion, not a spec obligation.
//!
//! A divergence is minimized to the smallest fraction exhibiting it and
//! re-run with tracing on the culprit design for replayable evidence.
//!
//! [`CheckMutation::SkewRedoValue`]: morlog_sim_core::CheckMutation::SkewRedoValue

use morlog_sim::System;
use morlog_sim_core::{Addr, SystemConfig, TxKey};
use morlog_workloads::{Op, WorkloadTrace};
use std::collections::{BTreeMap, BTreeSet};

/// Which design a divergence is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffCulprit {
    /// Design A failed its own oracle.
    DesignA,
    /// Design B failed its own oracle.
    DesignB,
    /// Both failed, or both passed their oracles yet disagree on
    /// program-visible state (the spec cannot say which is right).
    Both,
}

impl DiffCulprit {
    /// Stable label for reports and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            DiffCulprit::DesignA => "a",
            DiffCulprit::DesignB => "b",
            DiffCulprit::Both => "both",
        }
    }
}

/// One matched-fraction crash pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffPair {
    /// Pair index (ascending fraction).
    pub index: u64,
    /// Crash point in design A's schedule.
    pub point_a: u64,
    /// Crash point in design B's schedule.
    pub point_b: u64,
}

/// The matched crash schedule for one differential run.
#[derive(Debug, Clone)]
pub struct DiffPlan {
    /// Crash pairs, ascending fraction; the last pair crashes after each
    /// design's full schedule.
    pub pairs: Vec<DiffPair>,
    /// Persist events in design A's reference schedule.
    pub events_a: u64,
    /// Persist events in design B's reference schedule.
    pub events_b: u64,
}

/// Verdict of one executed crash pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The pair that was replayed.
    pub pair: DiffPair,
    /// The divergence, if any: culprit plus description.
    pub divergence: Option<(DiffCulprit, String)>,
}

/// The smallest diverging pair plus its replayable evidence.
#[derive(Debug, Clone)]
pub struct DiffDivergence {
    /// Crash point in design A's schedule.
    pub point_a: u64,
    /// Crash point in design B's schedule.
    pub point_b: u64,
    /// Which design the divergence is attributed to.
    pub culprit: DiffCulprit,
    /// Description of the divergence.
    pub error: String,
    /// JSONL event trace of the culprit's failing replay (design A when
    /// the culprit is `Both`).
    pub trace_jsonl: String,
}

/// Aggregated verdict of a differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Crash pairs executed.
    pub checked: u64,
    /// Pairs that diverged.
    pub divergences: u64,
    /// Every diverging pair, ascending fraction.
    pub failures: Vec<DiffOutcome>,
    /// The minimized divergence, when any pair diverged.
    pub divergence: Option<DiffDivergence>,
}

/// Builds the matched crash schedule: `pairs` fractions `i / pairs` for
/// `i` in `1..=pairs`, each rounded into both designs' event ranges. The
/// final pair always crashes after the complete schedules.
pub fn diff_plan(
    cfg_a: &SystemConfig,
    cfg_b: &SystemConfig,
    trace: &WorkloadTrace,
    pairs: u64,
) -> DiffPlan {
    let events_of = |cfg: &SystemConfig| {
        let mut sys = System::new(cfg.clone(), trace);
        sys.enable_persist_hash();
        sys.run();
        sys.persist_hash_samples().len() as u64
    };
    let events_a = events_of(cfg_a);
    let events_b = events_of(cfg_b);
    let pairs = pairs.max(1);
    let schedule = (1..=pairs)
        .map(|i| DiffPair {
            index: i - 1,
            point_a: events_a * i / pairs,
            point_b: events_b * i / pairs,
        })
        .collect();
    DiffPlan {
        pairs: schedule,
        events_a,
        events_b,
    }
}

/// Every word address the workload touches (initial images and stores).
fn touched_words(trace: &WorkloadTrace) -> BTreeSet<Addr> {
    let mut words = BTreeSet::new();
    for thread in &trace.threads {
        for (addr, _) in &thread.initial {
            words.insert(addr.word_base());
        }
        for tx in &thread.transactions {
            for op in &tx.ops {
                if let Op::Store(addr, _) = op {
                    words.insert(addr.word_base());
                }
            }
        }
    }
    words
}

/// Maps each word to the set of transactions that store to it.
fn word_writers(trace: &WorkloadTrace) -> BTreeMap<Addr, BTreeSet<TxKey>> {
    let mut writers: BTreeMap<Addr, BTreeSet<TxKey>> = BTreeMap::new();
    for (t, thread) in trace.threads.iter().enumerate() {
        for (x, tx) in thread.transactions.iter().enumerate() {
            let key = TxKey::new(
                morlog_sim_core::ThreadId::new(t as u8),
                morlog_sim_core::TxId::new(x as u16),
            );
            for op in &tx.ops {
                if let Op::Store(addr, _) = op {
                    writers.entry(addr.word_base()).or_default().insert(key);
                }
            }
        }
    }
    writers
}

struct CrashedState {
    error: Option<String>,
    redone: BTreeSet<TxKey>,
    undone: BTreeSet<TxKey>,
    words: BTreeMap<Addr, u64>,
}

fn crash_and_recover(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    point: u64,
    words: &BTreeSet<Addr>,
) -> CrashedState {
    let mut sys = System::new(cfg.clone(), trace);
    sys.arm_crash_at(point);
    sys.run_until_crash_point();
    sys.crash();
    let report = sys.recover();
    let error = sys.verify_recovery(&report).err();
    let recovered = words
        .iter()
        .map(|&addr| {
            let line = sys.memory().read_line(addr.line());
            (addr, line.word(addr.word_index()))
        })
        .collect();
    CrashedState {
        error,
        redone: report.redone.iter().copied().collect(),
        undone: report.undone.iter().copied().collect(),
        words: recovered,
    }
}

/// Replays one crash pair on both designs and compares the verdicts.
pub fn run_diff_pair(
    cfg_a: &SystemConfig,
    cfg_b: &SystemConfig,
    trace: &WorkloadTrace,
    plan: &DiffPlan,
    pair: DiffPair,
) -> DiffOutcome {
    let words = touched_words(trace);
    let a = crash_and_recover(cfg_a, trace, pair.point_a, &words);
    let b = crash_and_recover(cfg_b, trace, pair.point_b, &words);
    let divergence = match (&a.error, &b.error) {
        (Some(ea), Some(eb)) => Some((
            DiffCulprit::Both,
            format!("both designs failed their oracles: a: {ea}; b: {eb}"),
        )),
        (Some(ea), None) => Some((DiffCulprit::DesignA, ea.clone())),
        (None, Some(eb)) => Some((DiffCulprit::DesignB, eb.clone())),
        (None, None) => {
            let final_pair = pair.point_a == plan.events_a && pair.point_b == plan.events_b;
            let comparable: Box<dyn Fn(Addr) -> bool> = if final_pair {
                Box::new(|_| true)
            } else if a.redone == b.redone && a.undone == b.undone && !a.redone.is_empty() {
                let writers = word_writers(trace);
                let redone = a.redone.clone();
                Box::new(move |addr| {
                    writers
                        .get(&addr)
                        .is_some_and(|w| w.len() == 1 && w.iter().all(|k| redone.contains(k)))
                })
            } else {
                Box::new(|_| false)
            };
            words
                .iter()
                .filter(|&&addr| comparable(addr))
                .find(|&&addr| a.words[&addr] != b.words[&addr])
                .map(|&addr| {
                    (
                        DiffCulprit::Both,
                        format!(
                            "recovered state diverges at {addr:?}: a={:#x}, b={:#x}",
                            a.words[&addr], b.words[&addr]
                        ),
                    )
                })
        }
    };
    DiffOutcome { pair, divergence }
}

/// Merges pair outcomes into the final report; the minimized divergence
/// (smallest fraction) is re-run with tracing on the culprit design.
pub fn assemble_diff(
    cfg_a: &SystemConfig,
    cfg_b: &SystemConfig,
    trace: &WorkloadTrace,
    outcomes: Vec<DiffOutcome>,
) -> DiffReport {
    let checked = outcomes.len() as u64;
    let mut failures: Vec<DiffOutcome> = outcomes
        .into_iter()
        .filter(|o| o.divergence.is_some())
        .collect();
    failures.sort_by_key(|o| o.pair.index);
    let divergence = failures.first().map(|f| {
        let (culprit, error) = f.divergence.clone().expect("failures carry divergences");
        let (cfg, point) = match culprit {
            DiffCulprit::DesignB => (cfg_b, f.pair.point_b),
            _ => (cfg_a, f.pair.point_a),
        };
        let mut traced = cfg.clone();
        traced.trace.enabled = true;
        traced.trace.buffer_capacity = 1 << 20;
        let mut sys = System::new(traced, trace);
        sys.arm_crash_at(point);
        sys.run_until_crash_point();
        sys.crash();
        let report = sys.recover();
        let _ = sys.verify_recovery(&report);
        DiffDivergence {
            point_a: f.pair.point_a,
            point_b: f.pair.point_b,
            culprit,
            error,
            trace_jsonl: sys.tracer().to_jsonl(),
        }
    });
    DiffReport {
        checked,
        divergences: failures.len() as u64,
        failures,
        divergence,
    }
}

/// Plans and executes a whole differential run on the calling thread.
pub fn diff(
    cfg_a: &SystemConfig,
    cfg_b: &SystemConfig,
    trace: &WorkloadTrace,
    pairs: u64,
) -> DiffReport {
    let plan = diff_plan(cfg_a, cfg_b, trace, pairs);
    let outcomes = plan
        .pairs
        .iter()
        .map(|&pair| run_diff_pair(cfg_a, cfg_b, trace, &plan, pair))
        .collect();
    assemble_diff(cfg_a, cfg_b, trace, outcomes)
}
