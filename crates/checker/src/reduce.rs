//! Partial-order reduction: recovery-pinned write elision.
//!
//! Crash state at point `n` is a pure function of the accepted prefix
//! (the crash drains every accepted program), so two *different* prefixes
//! are never bit-identical and classic permutation pruning has nothing to
//! merge. What the exhaustive explorer can still skip is a point whose
//! *recovery outcome* is forced to match its predecessor's: if event `n`
//! is an in-place data program and every word it changed is covered by a
//! live undo+redo record, then recovery at point `n` overwrites each of
//! those words regardless of the in-place value — a winner's records are
//! rolled forward (redo replay writes absolute values), a loser's are
//! rolled back (oldest-anchor undo writes absolute values), and recovery
//! control flow reads only the log, which event `n` did not touch. Both
//! points recover to the same state and verdict; exploring `n` proves
//! nothing `n - 1` does not.
//!
//! Two guards keep this sound:
//!
//! - **No adjacent truncation.** Replays freeze *acceptances* but let the
//!   cycle containing the crash point finish, so a truncation bordering
//!   event `n` lands in one replay's crash state and possibly not the
//!   other's — the two points would then recover from *different* logs.
//!   A data event with a `Truncate` marker on either side is never
//!   pinned.
//! - **No fault variants.** A torn or corrupted covering record is
//!   excluded from replay, recovery skips the word, and the in-place
//!   value shows through — so the caller only applies the reduction when
//!   no fault plan is composed ([`crate::CheckOptions::reduce`] is
//!   ignored when `fault_variant` is set).

use morlog_sim_core::{PersistEventKind, PersistEventMeta, WORDS_PER_LINE};
use std::collections::{HashMap, HashSet};

/// Crash points (`n >= 2`) provably recovery-equivalent to their
/// predecessor, derived by replaying the reference run's persist-event
/// metadata stream.
pub fn recovery_pinned_points(meta: &[PersistEventMeta]) -> HashSet<u64> {
    let mut pinned = HashSet::new();
    // Live undo+redo records by identity, and per-word live-record counts.
    let mut live: HashMap<(usize, u64), u64> = HashMap::new();
    let mut covered: HashMap<u64, u32> = HashMap::new();
    let mut event = 0u64;
    // A data event judged pinned stays provisional until the next
    // acceptance: a Truncate marker arriving first retracts it (the
    // truncation may share the crash cycle, changing the log the replay
    // recovers from).
    let mut provisional: Option<u64> = None;
    for m in meta {
        match m {
            PersistEventMeta::Data { line, changed } => {
                event += 1;
                if let Some(p) = provisional.take() {
                    pinned.insert(p);
                }
                // A zero mask is a silent rewrite — the hash pruning
                // already elides it; only claim points it cannot.
                if event >= 2 && *changed != 0 {
                    let all_covered = (0..WORDS_PER_LINE)
                        .filter(|w| (*changed >> w) & 1 != 0)
                        .all(|w| {
                            let word_addr = line * 64 + w as u64 * 8;
                            covered.get(&word_addr).copied().unwrap_or(0) > 0
                        });
                    if all_covered {
                        provisional = Some(event);
                    }
                }
            }
            PersistEventMeta::Log {
                kind,
                addr,
                slice,
                offset,
                ..
            } => {
                event += 1;
                if let Some(p) = provisional.take() {
                    pinned.insert(p);
                }
                if *kind == PersistEventKind::UndoRedo {
                    let word = addr.word_base().as_u64();
                    if live.insert((*slice, *offset), word).is_none() {
                        *covered.entry(word).or_insert(0) += 1;
                    }
                }
            }
            PersistEventMeta::Truncate { slice, offsets } => {
                // Retract the provisional pin (truncation borders it) and
                // drop the deleted records' coverage.
                provisional = None;
                for off in offsets {
                    if let Some(word) = live.remove(&(*slice, *off)) {
                        if let Some(c) = covered.get_mut(&word) {
                            *c = c.saturating_sub(1);
                        }
                    }
                }
            }
        }
    }
    if let Some(p) = provisional {
        pinned.insert(p);
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::{Addr, ThreadId, TxId, TxKey};

    fn undo(line: u64, word: usize, offset: u64) -> PersistEventMeta {
        PersistEventMeta::Log {
            kind: PersistEventKind::UndoRedo,
            key: TxKey::new(ThreadId::new(0), TxId::new(0)),
            addr: Addr::new(line * 64 + word as u64 * 8),
            slice: 0,
            offset,
        }
    }

    fn data(line: u64, changed: u8) -> PersistEventMeta {
        PersistEventMeta::Data { line, changed }
    }

    #[test]
    fn covered_write_is_pinned_and_uncovered_is_not() {
        // Events: undo(word 0), undo(word 1), data{0,1} covered, data{2}
        // uncovered.
        let meta = vec![
            undo(5, 0, 0),
            undo(5, 1, 64),
            data(5, 0b011),
            data(5, 0b100),
        ];
        assert_eq!(recovery_pinned_points(&meta), HashSet::from([3]));
    }

    #[test]
    fn truncation_retracts_coverage_and_adjacent_pins() {
        // Coverage deleted before the write: not pinned.
        let dead = vec![
            undo(5, 0, 0),
            PersistEventMeta::Truncate {
                slice: 0,
                offsets: vec![0],
            },
            data(5, 0b001),
        ];
        assert!(recovery_pinned_points(&dead).is_empty());
        // Truncation immediately *after* an otherwise pinnable write: the
        // marker may share the crash cycle, so the pin is retracted.
        let bordered = vec![
            undo(5, 0, 0),
            undo(6, 0, 64),
            data(5, 0b001),
            PersistEventMeta::Truncate {
                slice: 0,
                offsets: vec![0],
            },
            data(6, 0b001),
        ];
        assert_eq!(recovery_pinned_points(&bordered), HashSet::from([4]));
    }

    #[test]
    fn early_points_are_never_pinned() {
        // Event 1 covered or not, points 0 and 1 stay in the explorer's
        // always-keep set.
        let meta = vec![data(5, 0b001)];
        assert!(recovery_pinned_points(&meta).is_empty());
    }
}
