//! Coverage signal for the random crash campaign.
//!
//! A crash point is interesting when it lands somewhere the campaign has
//! not crashed before. "Somewhere" is deliberately coarse: the bucket is
//! the *kind* of persist event the crash lands on (data line, undo+redo
//! record, coalesced redo, commit marker) crossed with the workload's
//! progress decile. The cross-product is small (40 buckets), so early
//! samples light buckets quickly and the campaign spends its budget
//! resampling the neighborhoods of genuinely fresh (kind, phase)
//! combinations — e.g. the first crash landing on a commit record late in
//! the run — instead of re-rolling the bulk of the schedule.

use morlog_sim_core::PersistEventKind;

/// Workload-progress buckets per event kind (deciles).
pub const PROGRESS_BUCKETS: usize = 10;

/// Hit map over `(event kind, progress decile)` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    hits: [[u64; PROGRESS_BUCKETS]; PersistEventKind::ALL.len()],
}

impl CoverageMap {
    /// An empty map (no bucket hit yet).
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// The bucket for a crash right after event `point` (1-based) of a
    /// schedule with `events` total persist events.
    pub fn bucket(kind: PersistEventKind, point: u64, events: u64) -> (usize, usize) {
        let decile = (point.saturating_sub(1) * PROGRESS_BUCKETS as u64 / events.max(1))
            .min(PROGRESS_BUCKETS as u64 - 1) as usize;
        (kind.index(), decile)
    }

    /// Records one crash sample; returns `true` when its bucket was
    /// previously empty (a novel coverage signal).
    pub fn record(&mut self, kind: PersistEventKind, point: u64, events: u64) -> bool {
        let (k, d) = CoverageMap::bucket(kind, point, events);
        self.hits[k][d] += 1;
        self.hits[k][d] == 1
    }

    /// Number of distinct buckets hit so far.
    pub fn hit_buckets(&self) -> u64 {
        self.hits.iter().flatten().filter(|&&h| h > 0).count() as u64
    }

    /// Total bucket count (the denominator for coverage ratios).
    pub fn total_buckets() -> u64 {
        (PersistEventKind::ALL.len() * PROGRESS_BUCKETS) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hit_is_novel_and_repeats_are_not() {
        let mut map = CoverageMap::new();
        assert!(map.record(PersistEventKind::Commit, 91, 100));
        assert!(!map.record(PersistEventKind::Commit, 95, 100));
        assert!(map.record(PersistEventKind::Commit, 5, 100));
        assert_eq!(map.hit_buckets(), 2);
    }

    #[test]
    fn buckets_span_deciles_without_overflow() {
        assert_eq!(CoverageMap::bucket(PersistEventKind::DataLine, 1, 100).1, 0);
        assert_eq!(
            CoverageMap::bucket(PersistEventKind::DataLine, 100, 100).1,
            PROGRESS_BUCKETS - 1
        );
        // Degenerate schedules must not panic or index out of range.
        assert_eq!(CoverageMap::bucket(PersistEventKind::Redo, 0, 0), (2, 0));
        assert_eq!(CoverageMap::total_buckets(), 40);
    }
}
