//! Crash-point model checker: exhaustive persist-order exploration with
//! equivalence pruning.
//!
//! MorLog's correctness argument rests on persist *ordering* — undo before
//! data (§III-A), coalesced redo before truncation (§III-B), and the DP
//! `ulog` counter deciding winners at recovery (§III-C). The sampled crash
//! testing in `crash_matrix` rolls seeded random crash cycles, so an
//! ordering bug that only bites at one specific persist boundary can
//! survive every run. This crate closes that gap by *enumerating* every
//! reachable crash state of a workload:
//!
//! 1. **Reference run** — execute the workload once with persist-domain
//!    hash sampling enabled, recording the total persist-event count `N`
//!    (every NVMM program acceptance; see
//!    `MemoryController::persist_events`).
//! 2. **Equivalence pruning** — crash point `n` (power loss exactly after
//!    the `n`th event) is skipped when event `n` did not change the
//!    persist-domain fold: the crash state is identical to point `n - 1`,
//!    so re-verifying it proves nothing. Silent rewrites of identical data
//!    are the common case pruned here.
//! 3. **Replay** — for every surviving point, re-run the workload from
//!    scratch, freeze the controller after exactly `n` events
//!    ([`System::arm_crash_at`]), crash, run hardened recovery, and check
//!    atomic persistence against the oracle.
//! 4. **Counterexample minimization** — because the exploration covers
//!    *all* inequivalent prefixes, the smallest failing point is the
//!    minimal counterexample by construction. It is re-run with tracing
//!    enabled to produce a JSONL trace consumable by `trace2perfetto`.
//!
//! Replays are independent, so the `bench` harness shards them across the
//! `SweepRunner` pool and reassembles with [`assemble`]; results are in
//! point order regardless of shard count, keeping reports byte-identical
//! across `MORLOG_CHECK_SHARDS` settings.
//!
//! The checker proves it has teeth via [`CheckMutation`]: deliberately
//! sabotaged variants (drop the undo→data write-ahead fence; skip the DP
//! `ulog` bump) must yield counterexamples while every real design passes.
//!
//! # Example
//!
//! ```
//! use morlog_checker::{check, double_store_trace, CheckOptions};
//! use morlog_sim_core::{DesignKind, SystemConfig};
//!
//! let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
//! let trace = double_store_trace(&cfg, 2);
//! let report = check(&cfg, &trace, &CheckOptions::default());
//! assert_eq!(report.stats.failures, 0);
//! assert!(report.counterexample.is_none());
//! ```

#![deny(missing_docs)]

pub mod coverage;
pub mod differential;
pub mod fuzz;
pub mod reduce;

pub use coverage::CoverageMap;
pub use differential::{diff, DiffCulprit, DiffDivergence, DiffOutcome, DiffReport};
pub use fuzz::{fuzz, FuzzCounterexample, FuzzItem, FuzzOptions, FuzzOutcome, FuzzReport};

use morlog_sim::System;
use morlog_sim_core::{Addr, CheckStats, FaultPlan, FaultVariantKind, SystemConfig};
use morlog_workloads::{Op, ThreadTrace, Transaction, WorkloadTrace};
use std::collections::HashSet;

/// Tuning knobs for one checker invocation.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Cap on explored crash points (`None` = exhaustive). Points dropped
    /// by the cap are counted in [`CheckStats::capped`] — a capped report
    /// is *not* an exhaustiveness proof.
    pub max_points: Option<u64>,
    /// Also replay every crash point under a torn-drain fault plan
    /// ([`torn_plan_for`]): the in-flight log slot at the crash loses a
    /// suffix of its data words, exercising hardened recovery at every
    /// enumerated boundary.
    pub fault_variant: bool,
    /// Base seed for the per-point fault plans (site-keyed rolls stay
    /// deterministic per point regardless of sharding).
    pub fault_seed: u64,
    /// Partial-order reduction: additionally prune crash points whose
    /// recovery outcome is pinned to their predecessor's — in-place data
    /// writes fully covered by live undo+redo records (see
    /// [`reduce::recovery_pinned_points`]). Only honored when
    /// `fault_variant` is off: a torn covering record makes recovery skip
    /// the word, so the in-place value becomes observable and the
    /// equivalence breaks.
    pub reduce: bool,
}

/// The reference run's persist-event schedule, reduced to the set of
/// inequivalent crash points.
#[derive(Debug, Clone)]
pub struct CheckPlan {
    /// Crash points to explore, ascending (`n` = crash after the `n`th
    /// persist event; `0` = nothing persisted).
    pub points: Vec<u64>,
    /// The reference run's persist-domain hash samples (`samples[i]` =
    /// fold right after event `i + 1`) — the persist-state signature of
    /// each crash point, used downstream to deduplicate counterexamples.
    pub samples: Vec<u64>,
    /// Plan-side counters: `events`, `points_total`, `pruned`, `capped`
    /// are filled here; the replay-side counters stay zero until
    /// [`assemble`].
    pub stats: CheckStats,
}

/// Verdict of replaying one crash point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointOutcome {
    /// Persist events completed before the crash.
    pub point: u64,
    /// Whether this replay ran the torn-drain fault variant.
    pub torn_variant: bool,
    /// The oracle's description of the violation, if any.
    pub error: Option<String>,
}

/// The smallest failing crash point plus its replayable evidence.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Persist events completed before the failing crash.
    pub point: u64,
    /// Whether the failure needed the torn-drain fault variant.
    pub torn_variant: bool,
    /// The oracle's description of the violation.
    pub error: String,
    /// JSONL event trace of the failing replay (crash and recovery
    /// included), consumable by `trace_lint` and `trace2perfetto`.
    pub trace_jsonl: String,
}

/// Aggregated verdict of a checker invocation.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Exploration counters (see [`CheckStats`]).
    pub stats: CheckStats,
    /// Every failing replay, ordered by (point, variant).
    pub failures: Vec<PointOutcome>,
    /// The minimized counterexample, when any replay failed.
    pub counterexample: Option<Counterexample>,
}

/// Records the reference schedule and prunes equivalent crash points.
///
/// Point `n` (for `n >= 2`) is pruned when the persist-domain hash after
/// event `n` equals the hash after event `n - 1` — the crash state is
/// bit-identical to the previous point's, so its verdict is too. Points
/// `0` and `1` are always kept (there is no earlier sample to compare
/// against, and a zero-delta fold at `n = 1` could also be a baseline
/// coincidence).
pub fn plan(cfg: &SystemConfig, trace: &WorkloadTrace, opts: &CheckOptions) -> CheckPlan {
    let mut sys = System::new(cfg.clone(), trace);
    sys.enable_persist_hash();
    let por = opts.reduce && !opts.fault_variant;
    if por {
        sys.enable_persist_meta();
    }
    sys.run();
    let samples = sys.persist_hash_samples();
    let events = samples.len() as u64;
    let pinned = if por {
        reduce::recovery_pinned_points(sys.persist_event_meta())
    } else {
        HashSet::new()
    };
    let mut points = Vec::new();
    let mut pruned = 0u64;
    for n in 0..=events {
        let silent = n >= 2 && samples[n as usize - 1] == samples[n as usize - 2];
        if silent || pinned.contains(&n) {
            pruned += 1;
        } else {
            points.push(n);
        }
    }
    let mut capped = 0u64;
    if let Some(max) = opts.max_points {
        let max = usize::try_from(max).unwrap_or(usize::MAX);
        if points.len() > max {
            capped = (points.len() - max) as u64;
            points.truncate(max);
        }
    }
    let stats = CheckStats {
        events,
        points_total: events + 1,
        pruned,
        capped,
        ..CheckStats::default()
    };
    let samples = samples.to_vec();
    CheckPlan {
        points,
        samples,
        stats,
    }
}

/// The torn-drain fault plan used for crash point `point` when
/// [`CheckOptions::fault_variant`] is on: exactly one in-flight log slot
/// (the site-keyed roll picks which) loses a suffix of its data words in
/// the ADR flush.
pub fn torn_plan_for(fault_seed: u64, point: u64) -> FaultPlan {
    FaultVariantKind::Torn
        .plan_for(fault_seed, point)
        .expect("the torn variant always composes a plan")
}

/// Replays one crash point: run to the freeze, crash, recover, verify.
///
/// With a fault plan installed the controller's write-ahead gating changes
/// the schedule, so the armed point may lie beyond that replay's total
/// events — the run then completes and crashes post-quiesce, which is
/// still a legal (if boring) crash state.
pub fn run_point(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    point: u64,
    fault: Option<FaultPlan>,
) -> PointOutcome {
    let torn_variant = fault.is_some();
    let mut sys = System::new(cfg.clone(), trace);
    if let Some(plan) = fault {
        sys.set_fault_plan(plan);
    }
    sys.arm_crash_at(point);
    sys.run_until_crash_point();
    sys.crash();
    let report = sys.recover();
    let error = sys.verify_recovery(&report).err();
    PointOutcome {
        point,
        torn_variant,
        error,
    }
}

/// Merges replay outcomes into the final report, deterministically: the
/// outcome list is sorted by (point, variant) so any shard interleaving
/// produces the same report, and the minimized counterexample (smallest
/// failing point, base variant preferred) is re-run with tracing enabled
/// to capture its JSONL evidence.
pub fn assemble(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    opts: &CheckOptions,
    plan: &CheckPlan,
    outcomes: Vec<PointOutcome>,
) -> CheckReport {
    let mut stats = plan.stats;
    stats.explored = outcomes.len() as u64;
    let mut failures: Vec<PointOutcome> =
        outcomes.into_iter().filter(|o| o.error.is_some()).collect();
    failures.sort_by_key(|o| (o.point, o.torn_variant));
    stats.failures = failures.len() as u64;
    stats.verified = stats.explored - stats.failures;
    let counterexample = failures.first().map(|f| {
        let mut traced = cfg.clone();
        traced.trace.enabled = true;
        traced.trace.buffer_capacity = 1 << 20;
        let fault = f
            .torn_variant
            .then(|| torn_plan_for(opts.fault_seed, f.point));
        let mut sys = System::new(traced, trace);
        if let Some(plan) = fault {
            sys.set_fault_plan(plan);
        }
        sys.arm_crash_at(f.point);
        sys.run_until_crash_point();
        sys.crash();
        let report = sys.recover();
        let error = sys
            .verify_recovery(&report)
            .err()
            .unwrap_or_else(|| "violation did not reproduce under tracing".to_string());
        Counterexample {
            point: f.point,
            torn_variant: f.torn_variant,
            error,
            trace_jsonl: sys.tracer().to_jsonl(),
        }
    });
    CheckReport {
        stats,
        failures,
        counterexample,
    }
}

/// Plans and replays every crash point on the calling thread. The `bench`
/// harness shards the replay loop instead; this serial driver is the
/// reference the sharded path must match byte-for-byte.
pub fn check(cfg: &SystemConfig, trace: &WorkloadTrace, opts: &CheckOptions) -> CheckReport {
    let p = plan(cfg, trace, opts);
    let mut outcomes = Vec::with_capacity(p.points.len() * (1 + opts.fault_variant as usize));
    for &n in &p.points {
        outcomes.push(run_point(cfg, trace, n, None));
        if opts.fault_variant {
            outcomes.push(run_point(
                cfg,
                trace,
                n,
                Some(torn_plan_for(opts.fault_seed, n)),
            ));
        }
    }
    assemble(cfg, trace, opts, &p, outcomes)
}

/// A crafted workload for the mutation self-test: two threads, each
/// transaction storing *twice* to each of two words, with enough compute
/// between the store pairs for the first pair's undo+redo records to
/// persist (eager eviction takes 32 cycles). The second store then drives
/// each word through `URLog → ULog` (§III-B), giving delay-persistence
/// transactions a non-zero `ulog` count.
///
/// Every transaction writes its *own* cache line (rotating through
/// `txs_per_thread` lines per thread). This matters for the checker's
/// teeth: if consecutive transactions re-wrote the same words, a data
/// line leaked ahead of its undo records would still be healed at
/// recovery by replaying the *previous* committed transaction's redo
/// records — the crash state is consistent by accident and the dropped
/// fence stays invisible. A fresh line per transaction leaves leaked
/// words with no surviving log coverage, so the violation is observable.
pub fn double_store_trace(cfg: &SystemConfig, txs_per_thread: usize) -> WorkloadTrace {
    let base = System::data_base(cfg).as_u64();
    let threads = (0..2u64)
        .map(|t| {
            let line = |k: u64| base + (t * txs_per_thread as u64 + k) * 64;
            let transactions = (0..txs_per_thread as u64)
                .map(|k| {
                    let w0 = Addr::new(line(k));
                    let w1 = Addr::new(line(k) + 8);
                    Transaction {
                        ops: vec![
                            Op::Store(w0, 1 + t * 1_000_000 + k * 100),
                            Op::Store(w1, 2 + t * 1_000_000 + k * 100),
                            Op::Compute(48),
                            Op::Store(w0, 3 + t * 1_000_000 + k * 100),
                            Op::Store(w1, 4 + t * 1_000_000 + k * 100),
                            Op::Compute(17),
                        ],
                    }
                })
                .collect();
            let initial = (0..txs_per_thread as u64)
                .flat_map(|k| {
                    [
                        (Addr::new(line(k)), 900 + t),
                        (Addr::new(line(k) + 8), 950 + t),
                    ]
                })
                .collect();
            ThreadTrace {
                transactions,
                initial,
            }
        })
        .collect();
    WorkloadTrace {
        name: "double-store".to_string(),
        threads,
    }
}

/// Parses a `MORLOG_CHECK_MAX_POINTS` value: a cap on explored crash
/// points.
///
/// # Errors
///
/// Returns a message when the value is not a plain positive integer.
pub fn parse_check_max_points(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!(
            "MORLOG_CHECK_MAX_POINTS={raw:?} must be at least 1"
        )),
        Err(_) => Err(format!(
            "MORLOG_CHECK_MAX_POINTS={raw:?} is not a plain positive integer \
             (suffixes like \"10k\" are not supported)"
        )),
    }
}

/// The crash-point cap from `MORLOG_CHECK_MAX_POINTS`. An unset variable
/// means exhaustive exploration; a malformed one aborts with exit code 2,
/// matching the `MORLOG_TXS`/`MORLOG_JOBS` convention.
pub fn check_max_points_from_env() -> Option<u64> {
    match std::env::var("MORLOG_CHECK_MAX_POINTS") {
        Err(_) => None,
        Ok(raw) => Some(parse_check_max_points(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
    }
}

/// Parses a `MORLOG_CHECK_SHARDS` value: the replay worker count.
///
/// # Errors
///
/// Returns a message when the value is not a positive integer.
pub fn parse_check_shards(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "MORLOG_CHECK_SHARDS={raw:?} is not a positive integer shard count"
        )),
    }
}

/// The shard count from `MORLOG_CHECK_SHARDS`. An unset variable lets the
/// caller pick a default; a malformed one aborts with exit code 2,
/// matching the `MORLOG_TXS`/`MORLOG_JOBS` convention.
pub fn check_shards_from_env() -> Option<usize> {
    match std::env::var("MORLOG_CHECK_SHARDS") {
        Err(_) => None,
        Ok(raw) => Some(parse_check_shards(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
    }
}

/// Parses a `MORLOG_FUZZ_POINTS` value: base crash points per fuzz
/// campaign (the deterministic size knob — two runs with equal seeds and
/// points produce byte-identical reports).
///
/// # Errors
///
/// Returns a message when the value is not a plain positive integer.
pub fn parse_fuzz_points(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("MORLOG_FUZZ_POINTS={raw:?} must be at least 1")),
        Err(_) => Err(format!(
            "MORLOG_FUZZ_POINTS={raw:?} is not a plain positive integer \
             (suffixes like \"10k\" are not supported)"
        )),
    }
}

/// The campaign size from `MORLOG_FUZZ_POINTS`. An unset variable lets
/// the caller pick a default; a malformed one aborts with exit code 2,
/// matching the `MORLOG_TXS`/`MORLOG_JOBS` convention.
pub fn fuzz_points_from_env() -> Option<u64> {
    match std::env::var("MORLOG_FUZZ_POINTS") {
        Err(_) => None,
        Ok(raw) => Some(parse_fuzz_points(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
    }
}

/// Parses a `MORLOG_FUZZ_BUDGET_MS` value: a wall-clock budget for the
/// nightly deep campaign. Campaign *rounds* stop once the budget is
/// spent, so the report depends on machine speed — use
/// `MORLOG_FUZZ_POINTS` instead wherever determinism matters (shard
/// diffing, per-PR smoke).
///
/// # Errors
///
/// Returns a message when the value is not a plain positive integer.
pub fn parse_fuzz_budget_ms(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("MORLOG_FUZZ_BUDGET_MS={raw:?} must be at least 1")),
        Err(_) => Err(format!(
            "MORLOG_FUZZ_BUDGET_MS={raw:?} is not a plain positive integer \
             millisecond count (suffixes like \"5s\" are not supported)"
        )),
    }
}

/// The wall-clock budget from `MORLOG_FUZZ_BUDGET_MS`. An unset variable
/// means no budget (run the configured rounds to completion); a malformed
/// one aborts with exit code 2, matching the `MORLOG_TXS`/`MORLOG_JOBS`
/// convention.
pub fn fuzz_budget_ms_from_env() -> Option<u64> {
    match std::env::var("MORLOG_FUZZ_BUDGET_MS") {
        Err(_) => None,
        Ok(raw) => Some(parse_fuzz_budget_ms(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::DesignKind;

    #[test]
    fn max_points_parsing_is_strict() {
        assert_eq!(parse_check_max_points("128"), Ok(128));
        assert_eq!(parse_check_max_points(" 7 "), Ok(7));
        assert!(parse_check_max_points("0").is_err());
        assert!(parse_check_max_points("10k").is_err());
        assert!(parse_check_max_points("-3").is_err());
        assert!(parse_check_max_points("").is_err());
    }

    #[test]
    fn shards_parsing_is_strict() {
        assert_eq!(parse_check_shards("4"), Ok(4));
        assert_eq!(parse_check_shards(" 1 "), Ok(1));
        assert!(parse_check_shards("0").is_err());
        assert!(parse_check_shards("four").is_err());
        assert!(parse_check_shards("1.5").is_err());
    }

    #[test]
    fn pruning_skips_silent_points_and_cap_records_drops() {
        let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
        let trace = double_store_trace(&cfg, 2);
        let p = plan(&cfg, &trace, &CheckOptions::default());
        assert_eq!(p.stats.points_total, p.stats.events + 1);
        assert_eq!(p.points.len() as u64 + p.stats.pruned, p.stats.points_total);
        assert!(p.points.windows(2).all(|w| w[0] < w[1]), "ascending");
        // Cap to 3 points: the remainder must be accounted, not silently
        // dropped.
        let capped = plan(
            &cfg,
            &trace,
            &CheckOptions {
                max_points: Some(3),
                ..CheckOptions::default()
            },
        );
        assert_eq!(capped.points.len(), 3);
        assert_eq!(capped.stats.capped, p.points.len() as u64 - 3);
    }

    #[test]
    fn torn_plan_is_point_keyed_and_active() {
        let a = torn_plan_for(42, 3);
        let b = torn_plan_for(42, 4);
        assert!(a.is_active() && b.is_active());
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.fault_budget, Some(1));
    }
}
