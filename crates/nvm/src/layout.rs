//! The physical address map of the simulated machine.
//!
//! As in §III-A, DRAM and NVMM sit on the same memory bus in a single
//! physical address space: DRAM holds data that needs no persistence, NVMM
//! holds the user's critical data, and a log region is carved out of NVMM
//! for the hardware log.

use morlog_sim_core::{Addr, LineAddr};

/// Which device an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Volatile DRAM (no persistence, no logging).
    Dram,
    /// The NVMM log region (log entries and commit records).
    NvmmLog,
    /// Persistent NVMM data (the user's heap).
    NvmmData,
}

/// The address map: `[0, dram_bytes)` is DRAM, `[nvmm_base, nvmm_base +
/// nvmm_bytes)` is NVMM with the log region at its base.
///
/// # Example
///
/// ```
/// use morlog_nvm::layout::{MemoryMap, Region};
/// use morlog_sim_core::Addr;
/// let map = MemoryMap::table_iii(4 * 1024 * 1024);
/// assert_eq!(map.region(Addr::new(0x1000)), Region::Dram);
/// assert_eq!(map.region(map.log_base()), Region::NvmmLog);
/// assert_eq!(map.region(map.data_base()), Region::NvmmData);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    dram_bytes: u64,
    nvmm_base: u64,
    nvmm_bytes: u64,
    log_bytes: u64,
}

impl MemoryMap {
    /// The Table III machine: 8 GB of NVMM above 4 GB of DRAM, with a log
    /// region of `log_bytes` at the bottom of NVMM.
    ///
    /// # Panics
    ///
    /// Panics if `log_bytes` is zero, unaligned, or exceeds NVMM.
    pub fn table_iii(log_bytes: u64) -> Self {
        MemoryMap::new(4 << 30, 8 << 30, log_bytes)
    }

    /// Builds an arbitrary map.
    ///
    /// # Panics
    ///
    /// Panics if `log_bytes` is zero, not line-aligned, or exceeds
    /// `nvmm_bytes`, or if `dram_bytes` is not line-aligned.
    pub fn new(dram_bytes: u64, nvmm_bytes: u64, log_bytes: u64) -> Self {
        assert!(
            log_bytes > 0 && log_bytes <= nvmm_bytes,
            "log region must fit in NVMM"
        );
        assert_eq!(log_bytes % 64, 0, "log region must be line-aligned");
        assert_eq!(dram_bytes % 64, 0, "DRAM size must be line-aligned");
        MemoryMap {
            dram_bytes,
            nvmm_base: dram_bytes,
            nvmm_bytes,
            log_bytes,
        }
    }

    /// Classifies an address.
    ///
    /// # Panics
    ///
    /// Panics on addresses beyond the installed memory.
    pub fn region(&self, addr: Addr) -> Region {
        let a = addr.as_u64();
        if a < self.dram_bytes {
            Region::Dram
        } else if a < self.nvmm_base + self.log_bytes {
            Region::NvmmLog
        } else {
            assert!(
                a < self.nvmm_base + self.nvmm_bytes,
                "address {addr} beyond installed memory"
            );
            Region::NvmmData
        }
    }

    /// First byte of the log region.
    pub fn log_base(&self) -> Addr {
        Addr::new(self.nvmm_base)
    }

    /// Size of the log region in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// First byte of persistent data (the persistent heap base).
    pub fn data_base(&self) -> Addr {
        Addr::new(self.nvmm_base + self.log_bytes)
    }

    /// One past the last NVMM byte.
    pub fn nvmm_end(&self) -> Addr {
        Addr::new(self.nvmm_base + self.nvmm_bytes)
    }

    /// First DRAM byte (always zero; provided for symmetry).
    pub fn dram_base(&self) -> Addr {
        Addr::new(0)
    }

    /// DRAM size in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap::table_iii(4 * 1024 * 1024)
    }
}

/// Maps a line to its servicing channel and bank, interleaving consecutive
/// lines across channels first and banks second (the address mapping NVMain
/// calls "RK:BK:CH" with line-sized stripes).
///
/// # Example
///
/// ```
/// use morlog_nvm::layout::line_to_channel_bank;
/// use morlog_sim_core::LineAddr;
/// let (ch, bk) = line_to_channel_bank(LineAddr::from_index(5), 4, 8);
/// assert_eq!((ch, bk), (1, 1));
/// ```
pub fn line_to_channel_bank(line: LineAddr, channels: usize, banks: usize) -> (usize, usize) {
    let idx = line.index() as usize;
    (idx % channels, (idx / channels) % banks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_space() {
        let map = MemoryMap::new(1 << 20, 1 << 21, 4096);
        assert_eq!(map.region(Addr::new(0)), Region::Dram);
        assert_eq!(map.region(Addr::new((1 << 20) - 1)), Region::Dram);
        assert_eq!(map.region(Addr::new(1 << 20)), Region::NvmmLog);
        assert_eq!(map.region(Addr::new((1 << 20) + 4095)), Region::NvmmLog);
        assert_eq!(map.region(Addr::new((1 << 20) + 4096)), Region::NvmmData);
        assert_eq!(map.data_base().as_u64(), (1 << 20) + 4096);
        assert_eq!(map.nvmm_end().as_u64(), (1 << 20) + (1 << 21));
    }

    #[test]
    #[should_panic(expected = "beyond installed memory")]
    fn out_of_range_panics() {
        let map = MemoryMap::new(1 << 20, 1 << 21, 4096);
        map.region(map.nvmm_end());
    }

    #[test]
    #[should_panic(expected = "must fit in NVMM")]
    fn oversized_log_panics() {
        MemoryMap::new(1 << 20, 4096, 8192);
    }

    #[test]
    fn channel_bank_interleave() {
        // 4 channels, 8 banks: consecutive lines hit different channels.
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            let cb = line_to_channel_bank(LineAddr::from_index(i), 4, 8);
            assert!(cb.0 < 4 && cb.1 < 8);
            seen.insert(cb);
        }
        assert_eq!(
            seen.len(),
            32,
            "32 consecutive lines span all channel×bank pairs"
        );
    }

    #[test]
    fn default_matches_table_iii() {
        let map = MemoryMap::default();
        assert_eq!(map.dram_bytes(), 4 << 30);
        assert_eq!(map.log_base().as_u64(), 4 << 30);
        assert_eq!(map.log_bytes(), 4 * 1024 * 1024);
    }
}
