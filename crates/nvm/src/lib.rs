//! Non-volatile main-memory subsystem: the substrate the MorLog paper runs
//! on (Gem5 + NVMain in the original; built from scratch here).
//!
//! * [`layout`] — the physical address map: DRAM and NVMM on one bus, with
//!   the log region carved out of NVMM (§III-A failure model).
//! * [`log`] — the NVMM-resident log: record formats, the Lamport
//!   single-producer/single-consumer circular log with head/tail registers
//!   and per-pass torn bits (§III-A, §III-B).
//! * [`module`] — the NVMM module controller: hosts the SLDE/CRADE codec,
//!   tracks per-block TLC cell states, and computes DCW write costs.
//! * [`controller`] — the FRFCFS-WQF memory controller of Table III:
//!   per-channel read/write queues (64-entry write queue, 80 % drain
//!   watermark), bank timing, and the ADR persist domain boundary.
//!
//! # Persist-domain semantics (ADR)
//!
//! Following §III-A, the memory controller's write queue belongs to the
//! persistence domain: a write is durable the moment it is *accepted* into
//! the write queue, because ADR flushes the queue on power loss. The
//! controller therefore applies writes to the functional backing store at
//! acceptance time, while the queues and banks model timing and contention
//! only. Crash injection keeps exactly this boundary.

#![deny(missing_docs)]

pub mod controller;
pub mod layout;
pub mod log;
pub mod module;

pub use controller::{MemoryController, ReadTicket, WriteRequest};
pub use layout::{MemoryMap, Region};
pub use log::{LogRecord, LogRecordKind, LogRegion};
pub use module::NvmmModule;
