//! The NVMM-resident log: record formats and the circular log region.
//!
//! MorLog organises the log region as a single-consumer, single-producer
//! Lamport circular structure so it can be appended and truncated without
//! locking, with two 64-bit registers holding the head and tail pointers
//! (§III-A). Every record carries a *torn bit* whose value is constant
//! within one pass over the region and flips on the next pass, letting
//! recovery detect incompletely-written transactions (§III-B).

use std::collections::VecDeque;

use morlog_sim_core::fault::crc32_words;
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::{Addr, ThreadId, TxId};

/// The kind of a log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogRecordKind {
    /// Undo+redo entry: the first update to a word in a transaction
    /// (Fig. 7, 202 bits).
    UndoRedo,
    /// Redo-only entry: a subsequent update, coalesced through the L1 and
    /// redo buffer (Fig. 7, 138 bits).
    Redo,
    /// A transaction commit record (carries the ulog counter under the
    /// delay-persistence protocol, §III-C).
    Commit,
}

impl LogRecordKind {
    /// Bytes one record of this kind occupies in the log region (raw entry
    /// bits rounded up to a slot, leaving room for flags and tags).
    pub fn slot_bytes(self) -> u64 {
        match self {
            LogRecordKind::UndoRedo => 32,
            LogRecordKind::Redo => 24,
            LogRecordKind::Commit => 16,
        }
    }

    /// TLC cells backing one slot of this kind in the NVMM module: one
    /// 24-cell word sub-region per metadata or data word (2 metadata words
    /// plus 2, 1 or 0 data words).
    pub fn slot_cells(self) -> usize {
        match self {
            LogRecordKind::UndoRedo => 96,
            LogRecordKind::Redo => 72,
            LogRecordKind::Commit => 48,
        }
    }

    /// Data words following the slot's (atomically-programmed) metadata
    /// header: `[undo, redo]`, `[redo]` or none. Only these words can be
    /// truncated by a torn drain or hit by a crash-time bit flip; commit
    /// records are therefore never torn.
    pub fn data_words(self) -> usize {
        match self {
            LogRecordKind::UndoRedo => 2,
            LogRecordKind::Redo => 1,
            LogRecordKind::Commit => 0,
        }
    }
}

/// One log record, as persisted in the log region.
///
/// # Example
///
/// ```
/// use morlog_nvm::log::LogRecord;
/// use morlog_sim_core::ids::TxKey;
/// use morlog_sim_core::{Addr, ThreadId, TxId};
/// let key = TxKey::new(ThreadId::new(0), TxId::new(1));
/// let rec = LogRecord::undo_redo(key, Addr::new(0x40), 0xAA, 0xBB, 0xFF);
/// assert!(rec.undo.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Record kind.
    pub kind: LogRecordKind,
    /// The transaction the record belongs to.
    pub key: TxKey,
    /// Home address of the logged word (word-aligned; unused for commits).
    pub addr: Addr,
    /// Undo data (the old value), present only in undo+redo entries.
    pub undo: Option<u64>,
    /// Redo data (the new value); zero for commit records.
    pub redo: u64,
    /// Per-byte dirty flag of the logged word (§IV-A).
    pub dirty_mask: u8,
    /// The ulog counter snapshot stored in commit records when the
    /// delay-persistence protocol is enabled (§III-C).
    pub ulog_count: Option<u32>,
    /// Commit timestamp: with distributed logs, commit records carry a
    /// timestamp to define the global commit order (§III-F); with the
    /// centralized log it is still stamped but the ring order suffices.
    pub timestamp: u64,
    /// Integrity footprint: CRC-32 over the record's metadata words,
    /// timestamp, data words and torn bit, sealed by [`LogRegion::append`].
    /// Recovery recomputes it to classify records as valid or corrupt.
    pub crc: u32,
}

impl LogRecord {
    /// Builds an undo+redo entry.
    pub fn undo_redo(key: TxKey, addr: Addr, undo: u64, redo: u64, dirty_mask: u8) -> Self {
        LogRecord {
            kind: LogRecordKind::UndoRedo,
            key,
            addr: addr.word_base(),
            undo: Some(undo),
            redo,
            dirty_mask,
            ulog_count: None,
            timestamp: 0,
            crc: 0,
        }
    }

    /// Builds a redo-only entry.
    pub fn redo_only(key: TxKey, addr: Addr, redo: u64, dirty_mask: u8) -> Self {
        LogRecord {
            kind: LogRecordKind::Redo,
            key,
            addr: addr.word_base(),
            undo: None,
            redo,
            dirty_mask,
            ulog_count: None,
            timestamp: 0,
            crc: 0,
        }
    }

    /// Builds a commit record. `ulog_count` is `Some` only under the
    /// delay-persistence protocol.
    pub fn commit(key: TxKey, ulog_count: Option<u32>) -> Self {
        LogRecord {
            kind: LogRecordKind::Commit,
            key,
            addr: Addr::new(0),
            undo: None,
            redo: 0,
            dirty_mask: 0,
            ulog_count,
            timestamp: 0,
            crc: 0,
        }
    }

    /// Stamps the commit timestamp (distributed logs, §III-F).
    pub fn with_timestamp(mut self, timestamp: u64) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// Serialises the record's header into metadata words for the codec:
    /// word 0 is the 48-bit home address, word 1 packs kind, thread,
    /// transaction id, dirty flag and the optional ulog counter.
    pub fn meta_words(&self) -> [u64; 2] {
        let kind_bits: u64 = match self.kind {
            LogRecordKind::UndoRedo => 0,
            LogRecordKind::Redo => 1,
            LogRecordKind::Commit => 2,
        };
        let w0 = self.addr.truncated48();
        let w1 = kind_bits
            | (self.key.thread.as_u8() as u64) << 2
            | (self.key.txid.as_u16() as u64) << 10
            | (self.dirty_mask as u64) << 26
            | (self.ulog_count.unwrap_or(0) as u64) << 34
            | (self.ulog_count.is_some() as u64) << 62;
        [w0, w1]
    }

    /// Decodes the metadata words produced by [`meta_words`], validating
    /// the kind field.
    ///
    /// # Errors
    ///
    /// [`MetaDecodeError`] when the kind bits hold the reserved pattern —
    /// the slot's header was corrupted in the array.
    ///
    /// [`meta_words`]: LogRecord::meta_words
    pub fn decode_meta(meta: [u64; 2]) -> Result<DecodedMeta, MetaDecodeError> {
        let [w0, w1] = meta;
        let kind = match w1 & 0b11 {
            0 => LogRecordKind::UndoRedo,
            1 => LogRecordKind::Redo,
            2 => LogRecordKind::Commit,
            bits => {
                return Err(MetaDecodeError {
                    kind_bits: bits as u8,
                })
            }
        };
        let thread = ThreadId::new(((w1 >> 2) & 0xFF) as u8);
        let txid = TxId::new(((w1 >> 10) & 0xFFFF) as u16);
        Ok(DecodedMeta {
            kind,
            key: TxKey::new(thread, txid),
            addr: Addr::new(w0),
            dirty_mask: ((w1 >> 26) & 0xFF) as u8,
            ulog_count: ((w1 >> 62) & 1 == 1).then_some(((w1 >> 34) & 0x3FF_FFFF) as u32),
        })
    }

    /// The record's `i`-th data word (`[undo, redo]`, `[redo]` or none).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.kind.data_words()`.
    pub fn data_word(&self, i: usize) -> u64 {
        match (self.kind, i) {
            (LogRecordKind::UndoRedo, 0) => self.undo.unwrap_or(0),
            (LogRecordKind::UndoRedo, 1) | (LogRecordKind::Redo, 0) => self.redo,
            _ => panic!("{:?} has no data word {i}", self.kind),
        }
    }

    /// Overwrites the record's `i`-th data word (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.kind.data_words()`.
    pub fn set_data_word(&mut self, i: usize, value: u64) {
        match (self.kind, i) {
            (LogRecordKind::UndoRedo, 0) => self.undo = Some(value),
            (LogRecordKind::UndoRedo, 1) | (LogRecordKind::Redo, 0) => self.redo = value,
            _ => panic!("{:?} has no data word {i}", self.kind),
        }
    }

    /// The words covered by the integrity footprint: metadata header,
    /// timestamp and data words, in slot order.
    pub fn payload_words(&self) -> Vec<u64> {
        let [m0, m1] = self.meta_words();
        let mut words = vec![m0, m1, self.timestamp];
        for i in 0..self.kind.data_words() {
            words.push(self.data_word(i));
        }
        words
    }

    /// The CRC-32 the record should carry when stored with `torn` as its
    /// pass-parity bit. Binding the torn bit into the footprint keeps a
    /// stale slot from a previous pass from masquerading as current.
    pub fn integrity_crc(&self, torn: bool) -> u32 {
        let mut words = self.payload_words();
        words.push(torn as u64);
        crc32_words(&words)
    }

    /// Seals the integrity footprint for a slot written with `torn`.
    pub fn seal(&mut self, torn: bool) {
        self.crc = self.integrity_crc(torn);
    }

    /// Whether the stored footprint matches the record's contents.
    pub fn crc_ok(&self, torn: bool) -> bool {
        self.crc == self.integrity_crc(torn)
    }
}

/// The fields recovered from a slot's metadata header by
/// [`LogRecord::decode_meta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedMeta {
    /// Record kind.
    pub kind: LogRecordKind,
    /// Owning transaction.
    pub key: TxKey,
    /// Home address (48-bit truncated).
    pub addr: Addr,
    /// Per-byte dirty flag.
    pub dirty_mask: u8,
    /// The ulog counter, when the header carries one.
    pub ulog_count: Option<u32>,
}

/// A slot's metadata header failed to decode (reserved kind bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaDecodeError {
    /// The invalid kind field.
    pub kind_bits: u8,
}

impl std::fmt::Display for MetaDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid log-record kind bits {:#b}", self.kind_bits)
    }
}

impl std::error::Error for MetaDecodeError {}

/// A record as stored in the ring: the payload plus its location, torn bit
/// and append sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredRecord {
    /// The record payload.
    pub record: LogRecord,
    /// Monotonic byte offset of the slot (not wrapped; `offset %
    /// capacity` is the physical location).
    pub offset: u64,
    /// The pass-parity torn bit the record was written with (§III-B).
    pub torn: bool,
    /// Global append sequence number (recovery applies undos in reverse
    /// sequence order and redos forward).
    pub seq: u64,
}

/// Error returned when the log region cannot accept a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFullError {
    /// Bytes the failed append needed.
    pub needed: u64,
    /// Bytes currently free.
    pub free: u64,
}

impl std::fmt::Display for LogFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "log region full: need {} bytes, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for LogFullError {}

/// The circular log region.
///
/// Head and tail are monotonically increasing byte offsets; the physical
/// location of a slot is its offset modulo the capacity, and the torn bit of
/// a slot is the parity of `offset / capacity` (which pass wrote it).
///
/// # Example
///
/// ```
/// use morlog_nvm::log::{LogRecord, LogRegion};
/// use morlog_sim_core::ids::TxKey;
/// use morlog_sim_core::{Addr, ThreadId, TxId};
///
/// let mut ring = LogRegion::new(Addr::new(0x1000), 4096);
/// let key = TxKey::new(ThreadId::new(0), TxId::new(0));
/// let rec = LogRecord::undo_redo(key, Addr::new(0x40), 1, 2, 0xFF);
/// let stored = ring.append(rec).unwrap();
/// assert_eq!(stored.offset, 0);
/// assert_eq!(ring.records().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LogRegion {
    base: Addr,
    capacity: u64,
    head: u64,
    tail: u64,
    next_seq: u64,
    records: VecDeque<StoredRecord>,
}

impl LogRegion {
    /// Creates an empty ring of `capacity` bytes based at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity cannot hold even one undo+redo slot.
    pub fn new(base: Addr, capacity: u64) -> Self {
        assert!(
            capacity >= LogRecordKind::UndoRedo.slot_bytes(),
            "log region of {capacity} bytes cannot hold a single entry"
        );
        LogRegion {
            base,
            capacity,
            head: 0,
            tail: 0,
            next_seq: 0,
            records: VecDeque::new(),
        }
    }

    /// The region's base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The region's capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The head register (monotonic byte offset of the oldest live record).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The tail register (monotonic byte offset one past the newest record).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.tail - self.head
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used_bytes()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The torn bit the next append will carry.
    pub fn current_torn(&self) -> bool {
        (self.tail / self.capacity) % 2 == 1
    }

    /// Appends a record, returning the stored form. The record's integrity
    /// footprint is sealed here — the ring knows the slot's final torn bit
    /// (after any wrap skip), and the record's contents are final at append
    /// (the buffers coalesce *before* flushing, never in the ring).
    ///
    /// # Errors
    ///
    /// Returns [`LogFullError`] when the ring lacks space — the §III-A
    /// overflow case, which the producer handles by stalling until
    /// truncation frees space.
    pub fn append(&mut self, mut record: LogRecord) -> Result<StoredRecord, LogFullError> {
        let needed = record.kind.slot_bytes();
        if self.free_bytes() < needed {
            return Err(LogFullError {
                needed,
                free: self.free_bytes(),
            });
        }
        // A slot never straddles the wrap point: skip the tail to the next
        // pass if the remainder of this pass is too small.
        let remain_in_pass = self.capacity - (self.tail % self.capacity);
        if remain_in_pass < needed {
            if self.free_bytes() < remain_in_pass + needed {
                return Err(LogFullError {
                    needed: remain_in_pass + needed,
                    free: self.free_bytes(),
                });
            }
            self.tail += remain_in_pass;
        }
        record.seal(self.current_torn());
        let stored = StoredRecord {
            record,
            offset: self.tail,
            torn: self.current_torn(),
            seq: self.next_seq,
        };
        self.tail += needed;
        self.next_seq += 1;
        self.records.push_back(stored);
        Ok(stored)
    }

    /// Advances the head register to `offset`, deleting all records below it
    /// (log truncation after the force-write-back scan, §III-F).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside `[head, tail]`.
    pub fn truncate_to(&mut self, offset: u64) {
        assert!(
            offset >= self.head && offset <= self.tail,
            "truncate offset {offset} outside [{}, {}]",
            self.head,
            self.tail
        );
        while let Some(front) = self.records.front() {
            if front.offset < offset {
                self.records.pop_front();
            } else {
                break;
            }
        }
        self.head = offset;
    }

    /// Extends the ring with a temporary overflow region (§III-A option 2:
    /// "allocating a temporary region when the current one is filled by an
    /// in-flight transaction"). The capacity grows by `extra` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `extra` is zero or not line-aligned.
    pub fn grow(&mut self, extra: u64) {
        assert!(
            extra > 0 && extra.is_multiple_of(64),
            "overflow region must be line-aligned"
        );
        self.capacity += extra;
    }

    /// Deletes everything (recovery completion).
    pub fn clear(&mut self) {
        self.head = self.tail;
        self.records.clear();
    }

    /// Iterates live records from head to tail (the recovery scan order).
    pub fn records(&self) -> impl DoubleEndedIterator<Item = &StoredRecord> + '_ {
        self.records.iter()
    }

    /// Mutates the stored record at `offset` in place — fault injection on
    /// the array contents. The sealed footprint is *not* updated, so any
    /// change the mutator makes is visible to recovery's CRC check.
    /// Returns `false` when no live record sits at `offset`.
    pub fn corrupt_record_at(&mut self, offset: u64, f: impl FnOnce(&mut LogRecord)) -> bool {
        match self.records.iter_mut().find(|r| r.offset == offset) {
            Some(stored) => {
                f(&mut stored.record);
                true
            }
            None => false,
        }
    }

    /// The NVMM byte address of a stored record's slot.
    pub fn slot_addr(&self, stored: &StoredRecord) -> Addr {
        Addr::new(self.base.as_u64() + stored.offset % self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::{ThreadId, TxId};

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn ur(t: u8, x: u16, addr: u64) -> LogRecord {
        LogRecord::undo_redo(key(t, x), Addr::new(addr), 0xAA, 0xBB, 0x0F)
    }

    #[test]
    fn append_and_iterate_in_order() {
        let mut ring = LogRegion::new(Addr::new(0), 4096);
        for i in 0..10 {
            ring.append(ur(0, 0, i * 64)).unwrap();
        }
        let offsets: Vec<u64> = ring.records().map(|r| r.offset).collect();
        assert_eq!(offsets, (0..10).map(|i| i * 32).collect::<Vec<_>>());
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fills_and_reports_full() {
        let mut ring = LogRegion::new(Addr::new(0), 128);
        for _ in 0..4 {
            ring.append(ur(0, 0, 0)).unwrap();
        }
        let err = ring.append(ur(0, 0, 0)).unwrap_err();
        assert_eq!(err.free, 0);
        assert_eq!(ring.used_bytes(), 128);
    }

    #[test]
    fn truncation_frees_space() {
        let mut ring = LogRegion::new(Addr::new(0), 128);
        let mut stored = Vec::new();
        for _ in 0..4 {
            stored.push(ring.append(ur(0, 0, 0)).unwrap());
        }
        ring.truncate_to(stored[2].offset);
        assert_eq!(ring.records().count(), 2);
        assert_eq!(ring.free_bytes(), 64);
        ring.append(ur(0, 0, 0)).unwrap();
        ring.append(ur(0, 1, 0)).unwrap();
        assert!(ring.append(ur(0, 2, 0)).is_err());
    }

    #[test]
    fn torn_bit_flips_per_pass() {
        let mut ring = LogRegion::new(Addr::new(0), 128);
        let mut first_pass = Vec::new();
        for _ in 0..4 {
            first_pass.push(ring.append(ur(0, 0, 0)).unwrap());
        }
        assert!(first_pass.iter().all(|r| !r.torn));
        ring.truncate_to(ring.tail());
        let second = ring.append(ur(0, 1, 0)).unwrap();
        assert!(
            second.torn,
            "second pass records carry the flipped torn bit"
        );
        assert_eq!(second.offset % 128, 0, "wrapped to the physical start");
    }

    #[test]
    fn slots_never_straddle_the_wrap() {
        // Capacity 112 = 3.5 undo+redo slots: the fourth append must skip
        // the 16 dangling bytes and wait for space in the next pass.
        let mut ring = LogRegion::new(Addr::new(0), 112);
        for _ in 0..3 {
            ring.append(ur(0, 0, 0)).unwrap();
        }
        assert!(ring.append(ur(0, 0, 0)).is_err());
        ring.truncate_to(64); // free two slots
        let fourth = ring.append(ur(0, 0, 0)).unwrap();
        assert_eq!(fourth.offset, 112, "skipped the 16-byte remainder");
        assert_eq!(fourth.offset % 112, 0);
        assert!(fourth.torn);
    }

    #[test]
    fn mixed_kinds_pack_by_slot_size() {
        let mut ring = LogRegion::new(Addr::new(0), 4096);
        let a = ring
            .append(LogRecord::redo_only(key(0, 0), Addr::new(0x40), 7, 0xFF))
            .unwrap();
        let b = ring.append(LogRecord::commit(key(0, 0), Some(3))).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 24);
        assert_eq!(ring.tail(), 40);
    }

    #[test]
    fn meta_words_round_trip_key_fields() {
        let rec = LogRecord::commit(key(3, 515), Some(77));
        let [w0, w1] = rec.meta_words();
        assert_eq!(w0, 0);
        assert_eq!(w1 & 0b11, 2); // kind commit
        assert_eq!((w1 >> 2) & 0xFF, 3);
        assert_eq!((w1 >> 10) & 0xFFFF, 515);
        assert_eq!((w1 >> 34) & 0x3FF_FFFF, 77);
        assert_eq!((w1 >> 62) & 1, 1);
    }

    #[test]
    fn slot_addr_wraps_physically() {
        let mut ring = LogRegion::new(Addr::new(0x1000), 128);
        for _ in 0..4 {
            ring.append(ur(0, 0, 0)).unwrap();
        }
        ring.truncate_to(ring.tail());
        let r = ring.append(ur(0, 0, 0)).unwrap();
        assert_eq!(ring.slot_addr(&r).as_u64(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn truncate_past_tail_panics() {
        let mut ring = LogRegion::new(Addr::new(0), 4096);
        ring.truncate_to(64);
    }

    #[test]
    fn append_seals_a_verifiable_crc() {
        let mut ring = LogRegion::new(Addr::new(0), 4096);
        let stored = ring.append(ur(0, 0, 0x40)).unwrap();
        assert_ne!(stored.record.crc, 0);
        assert!(stored.record.crc_ok(stored.torn));
        assert!(
            !stored.record.crc_ok(!stored.torn),
            "torn bit is bound into the footprint"
        );
        // The commit record's meta-only payload seals too.
        let c = ring
            .append(LogRecord::commit(key(0, 0), Some(3)).with_timestamp(9))
            .unwrap();
        assert!(c.record.crc_ok(c.torn));
    }

    #[test]
    fn corruption_breaks_the_crc() {
        let mut ring = LogRegion::new(Addr::new(0), 4096);
        let stored = ring.append(ur(0, 0, 0x40)).unwrap();
        assert!(ring.corrupt_record_at(stored.offset, |r| {
            let w = r.data_word(1);
            r.set_data_word(1, w ^ 1);
        }));
        let damaged = ring.records().next().unwrap();
        assert!(!damaged.record.crc_ok(damaged.torn));
        assert!(
            !ring.corrupt_record_at(9999, |_| {}),
            "no record at a bogus offset"
        );
    }

    #[test]
    fn data_word_accessors_cover_each_kind() {
        let u = ur(0, 0, 0x40);
        assert_eq!(u.kind.data_words(), 2);
        assert_eq!(u.data_word(0), 0xAA);
        assert_eq!(u.data_word(1), 0xBB);
        let r = LogRecord::redo_only(key(0, 0), Addr::new(0x40), 7, 0xFF);
        assert_eq!(r.kind.data_words(), 1);
        assert_eq!(r.data_word(0), 7);
        assert_eq!(LogRecord::commit(key(0, 0), None).kind.data_words(), 0);
    }

    #[test]
    fn decode_meta_round_trips_and_rejects_reserved_kind() {
        for rec in [
            ur(3, 515, 0x1240),
            LogRecord::redo_only(key(1, 2), Addr::new(0x80), 5, 0x0F),
            LogRecord::commit(key(2, 9), Some(77)),
        ] {
            let d = LogRecord::decode_meta(rec.meta_words()).unwrap();
            assert_eq!(d.kind, rec.kind);
            assert_eq!(d.key, rec.key);
            assert_eq!(d.dirty_mask, rec.dirty_mask);
            assert_eq!(d.ulog_count, rec.ulog_count);
        }
        let err = LogRecord::decode_meta([0, 0b11]).unwrap_err();
        assert_eq!(err.kind_bits, 3);
        assert!(err.to_string().contains("kind bits"));
    }
}
