//! The NVMM module controller: per-block TLC cell states, the SLDE/CRADE
//! codec on the write path (Fig. 10), and DCW cost computation.
//!
//! Functional contents (raw bytes) and physical contents (cell states) are
//! tracked side by side. The codecs are verified lossless by construction
//! (round-trip unit and property tests in `morlog-encoding`), so functional
//! reads return the raw bytes while timing and energy come from the encoded
//! cell states — see `DESIGN.md` §2.

use std::collections::HashMap;

use morlog_encoding::cell::{CellModel, CellState};
use morlog_encoding::dcw::{self, WriteCost};
use morlog_encoding::secure::{transform_log_word, SecureMode};
use morlog_encoding::slde::{EncodingChoice, LogWordRequest, SldeCodec, BLOCK_CELLS};
use morlog_sim_core::{LineAddr, LineData};

use crate::log::{LogRecordKind, StoredRecord};

/// Outcome of one serviced NVMM write.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicedWrite {
    /// DCW programming cost.
    pub cost: WriteCost,
    /// Encoder choices for log-data words (empty for data writes).
    pub choices: Vec<EncodingChoice>,
}

/// The NVMM module: codec + cell arrays + functional backing store.
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// use morlog_nvm::module::NvmmModule;
/// use morlog_sim_core::{LineAddr, LineData};
///
/// let mut m = NvmmModule::new(SldeCodec::new(CellModel::table_iii()));
/// let mut d = LineData::zeroed();
/// d.set_word(0, 42);
/// let s = m.write_data_line(LineAddr::from_index(9), d);
/// assert!(s.cost.cells_programmed > 0);
/// assert_eq!(m.read_data_line(LineAddr::from_index(9)).word(0), 42);
/// ```
#[derive(Debug, Clone)]
pub struct NvmmModule {
    codec: SldeCodec,
    data_states: HashMap<LineAddr, Vec<CellState>>,
    log_states: HashMap<u64, Vec<CellState>>,
    backing: HashMap<LineAddr, LineData>,
    secure: SecureMode,
    /// Program counts per data line (wear; Table VI's endurance argument).
    data_wear: HashMap<LineAddr, u64>,
    /// Program counts per log slot.
    log_wear: HashMap<u64, u64>,
}

impl NvmmModule {
    /// Creates a module with all cells in the erased `000` state and all
    /// bytes zero.
    pub fn new(codec: SldeCodec) -> Self {
        NvmmModule {
            codec,
            data_states: HashMap::new(),
            log_states: HashMap::new(),
            backing: HashMap::new(),
            secure: SecureMode::None,
            data_wear: HashMap::new(),
            log_wear: HashMap::new(),
        }
    }

    /// Selects the secure-NVMM model (§IV-D): log data are transformed as
    /// the chosen encryption scheme would before they reach the encoder.
    pub fn set_secure_mode(&mut self, mode: SecureMode) {
        self.secure = mode;
    }

    /// The codec's cell cost model.
    pub fn model(&self) -> &CellModel {
        self.codec.model()
    }

    /// The codec in use.
    pub fn codec(&self) -> &SldeCodec {
        &self.codec
    }

    /// Functional read of a data line (zero if never written).
    pub fn read_data_line(&self, line: LineAddr) -> LineData {
        self.backing.get(&line).copied().unwrap_or_default()
    }

    /// Functional write applied at persist time; returns the DCW cost of the
    /// encoded write.
    pub fn write_data_line(&mut self, line: LineAddr, data: LineData) -> ServicedWrite {
        let region = self.codec.encode_data_block(&data);
        let states = self
            .data_states
            .entry(line)
            .or_insert_with(|| vec![CellState::default(); BLOCK_CELLS]);
        let cost = program(self.codec.model(), states, &region);
        if !cost.is_silent() {
            *self.data_wear.entry(line).or_insert(0) += 1;
        }
        self.backing.insert(line, data);
        ServicedWrite {
            cost,
            choices: region.choices,
        }
    }

    /// Writes one log record into its ring slot (`physical_offset` is the
    /// slot's offset within the log region). The undo and redo words go
    /// through the SLDE selector with a DLDC budget of one word per entry
    /// (§IV-B: never both undo and redo of one entry).
    pub fn write_log_record(
        &mut self,
        stored: &StoredRecord,
        physical_offset: u64,
    ) -> ServicedWrite {
        let rec = &stored.record;
        let meta = rec.meta_words();
        // Fold the torn bit into the metadata stream as its own word slot
        // would be overkill; it rides in the high bit of word 1.
        let meta = [meta[0], meta[1] | (stored.torn as u64) << 63];
        let key = 0x5EC0_0000 ^ physical_offset; // per-slot tweak, like CTR-mode IVs
        let mut data = Vec::with_capacity(2);
        if let Some(undo) = rec.undo {
            data.push(transform_log_word(
                &LogWordRequest::with_mask(undo, rec.dirty_mask),
                self.secure,
                key,
            ));
        }
        if rec.kind != LogRecordKind::Commit {
            data.push(transform_log_word(
                &LogWordRequest::with_mask(rec.redo, rec.dirty_mask),
                self.secure,
                key ^ 1,
            ));
        }
        let region = self
            .codec
            .encode_log_entry(&meta, &data, 1, rec.kind.slot_cells());
        let states = self
            .log_states
            .entry(physical_offset)
            .or_insert_with(|| vec![CellState::default(); rec.kind.slot_cells()]);
        let cost = program(self.codec.model(), states, &region);
        if !cost.is_silent() {
            *self.log_wear.entry(physical_offset).or_insert(0) += 1;
        }
        ServicedWrite {
            cost,
            choices: region.choices,
        }
    }

    /// Wear summary: `(max_data_line_writes, max_log_slot_writes,
    /// total_programmed_locations)`. Reducing the number of (log) writes
    /// improves lifetime — the §VI-C endurance argument; the log ring also
    /// levels wear by construction (sequential slot reuse).
    pub fn wear_summary(&self) -> (u64, u64, usize) {
        let max_data = self.data_wear.values().copied().max().unwrap_or(0);
        let max_log = self.log_wear.values().copied().max().unwrap_or(0);
        (
            max_data,
            max_log,
            self.data_wear.len() + self.log_wear.len(),
        )
    }
}

/// Programs an encoded region (one sub-region per word) into the stored
/// `states` under DCW, returning the combined cost. Segment `i` occupies
/// cells `[i·WORD_REGION_CELLS, …)`; cells beyond a segment's footprint keep
/// their previous states (DCW never touches them).
fn program(
    model: &CellModel,
    states: &mut Vec<CellState>,
    region: &morlog_encoding::slde::EncodedRegion,
) -> WriteCost {
    use morlog_encoding::slde::WORD_REGION_CELLS;
    let needed = region.segments.len() * WORD_REGION_CELLS;
    if states.len() < needed {
        states.resize(needed, CellState::default());
    }
    let mut total = WriteCost::silent();
    for (i, seg) in region.segments.iter().enumerate() {
        let base = i * WORD_REGION_CELLS;
        let old = &states[base..base + seg.states.len()];
        let cost = dcw::write_cost(model, old, &seg.states, seg.mode.bits_per_cell());
        total.combine(&cost);
        states[base..base + seg.states.len()].copy_from_slice(&seg.states);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::ids::TxKey;
    use morlog_sim_core::{Addr, ThreadId, TxId};

    use crate::log::LogRecord;

    fn module() -> NvmmModule {
        NvmmModule::new(SldeCodec::new(CellModel::table_iii()))
    }

    fn key() -> TxKey {
        TxKey::new(ThreadId::new(1), TxId::new(2))
    }

    #[test]
    fn rewriting_same_data_is_silent() {
        let mut m = module();
        let line = LineAddr::from_index(3);
        let mut d = LineData::zeroed();
        d.set_word(2, 0x1234_5678_9ABC_DEF0);
        let first = m.write_data_line(line, d);
        assert!(!first.cost.is_silent());
        let second = m.write_data_line(line, d);
        assert!(second.cost.is_silent(), "identical data programs no cells");
    }

    #[test]
    fn single_word_update_programs_few_cells() {
        let mut m = module();
        let line = LineAddr::from_index(3);
        let mut d = LineData::zeroed();
        for i in 0..8 {
            d.set_word(i, 0x1111_1111_1111_1111 * (i as u64 + 1));
        }
        m.write_data_line(line, d);
        let full_rewrite = {
            let mut other = module();
            other.write_data_line(LineAddr::from_index(3), d).cost
        };
        let mut d2 = d;
        d2.set_word(0, d.word(0) ^ 0xFF); // one byte changes
        let delta = m.write_data_line(line, d2);
        assert!(
            delta.cost.cells_programmed < full_rewrite.cells_programmed,
            "DCW programs fewer cells for a small delta ({} vs {})",
            delta.cost.cells_programmed,
            full_rewrite.cells_programmed
        );
        assert_eq!(m.read_data_line(line), d2);
    }

    #[test]
    fn log_record_write_has_cost_and_choices() {
        let mut m = module();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAAAA, 0xAAAB, 0x01);
        let stored = crate::log::StoredRecord {
            record: rec,
            offset: 0,
            torn: false,
            seq: 0,
        };
        let s = m.write_log_record(&stored, 0);
        assert!(s.cost.cells_programmed > 0);
        assert_eq!(s.choices.len(), 2); // undo + redo words
                                        // Exactly one word may use DLDC.
        let dldc = s
            .choices
            .iter()
            .filter(|&&c| c != EncodingChoice::Fpc)
            .count();
        assert!(dldc <= 1);
    }

    #[test]
    fn slot_reuse_compares_against_previous_pass() {
        let mut m = module();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0x1234, 0x5678, 0xFF);
        let stored = crate::log::StoredRecord {
            record: rec,
            offset: 0,
            torn: false,
            seq: 0,
        };
        let first = m.write_log_record(&stored, 0);
        // Same record re-written into the same physical slot: almost
        // everything matches the stored states except the torn bit.
        let stored2 = crate::log::StoredRecord {
            record: rec,
            offset: 4096,
            torn: true,
            seq: 1,
        };
        let second = m.write_log_record(&stored2, 0);
        assert!(second.cost.cells_programmed < first.cost.cells_programmed);
    }

    #[test]
    fn commit_record_encodes_without_data_words() {
        let mut m = module();
        let rec = LogRecord::commit(key(), Some(5));
        let stored = crate::log::StoredRecord {
            record: rec,
            offset: 64,
            torn: false,
            seq: 3,
        };
        let s = m.write_log_record(&stored, 64);
        assert!(s.choices.is_empty());
        assert!(s.cost.cells_programmed > 0);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let m = module();
        assert_eq!(
            m.read_data_line(LineAddr::from_index(77)),
            LineData::zeroed()
        );
    }
}

#[cfg(test)]
mod wear_tests {
    use super::*;
    use morlog_sim_core::ids::TxKey;
    use morlog_sim_core::{Addr, ThreadId, TxId};

    use crate::log::LogRecord;

    #[test]
    fn wear_counts_programs_not_silent_writes() {
        let mut m = NvmmModule::new(SldeCodec::new(CellModel::table_iii()));
        let line = LineAddr::from_index(5);
        let mut d = LineData::zeroed();
        d.set_word(0, 1);
        m.write_data_line(line, d);
        m.write_data_line(line, d); // silent: no wear
        d.set_word(0, 2);
        m.write_data_line(line, d);
        let (max_data, _, _) = m.wear_summary();
        assert_eq!(max_data, 2);
    }

    #[test]
    fn log_slot_reuse_accumulates_wear() {
        let mut m = NvmmModule::new(SldeCodec::new(CellModel::table_iii()));
        let key = TxKey::new(ThreadId::new(0), TxId::new(0));
        for pass in 0..3u64 {
            let rec = LogRecord::undo_redo(key, Addr::new(0x40), pass, pass + 1, 0xFF);
            let stored = crate::log::StoredRecord {
                record: rec,
                offset: pass * 4096,
                torn: pass % 2 == 1,
                seq: pass,
            };
            m.write_log_record(&stored, 0); // same physical slot each pass
        }
        let (_, max_log, _) = m.wear_summary();
        assert_eq!(max_log, 3, "the reused slot accumulates wear");
    }
}
