//! The FRFCFS-WQF memory controller of Table III.
//!
//! Four channels, eight banks each, a 64-entry write queue per channel with
//! an 80 % drain watermark: reads have priority until the write queue
//! crosses the watermark, then the channel drains writes (blocking reads)
//! until occupancy falls to the low mark. Bank service times come from the
//! NVMM module's DCW cost for writes and the flat Table III array latency
//! for reads; there is no row-buffer model because the paper's device table
//! specifies flat latencies.
//!
//! The write queue is the ADR persist-domain boundary (§III-A): writes are
//! applied to the functional store at *acceptance*, and queue/bank state
//! models timing only.

use std::collections::{HashMap, VecDeque};

use morlog_encoding::slde::{EncodingChoice, SldeCodec};
use morlog_sim_core::stats::MemStats;
use morlog_sim_core::{Addr, Cycle, Frequency, LineAddr, LineData, MemConfig};

use crate::layout::{line_to_channel_bank, MemoryMap, Region};
use crate::log::{LogFullError, LogRecord, LogRegion, StoredRecord};
use crate::module::NvmmModule;

/// Identifies an outstanding read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadTicket(u64);

/// A write presented to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteRequest {
    /// An in-place 64-byte data write (cache writeback or non-temporal
    /// store drain).
    Data {
        /// Target line.
        line: LineAddr,
        /// New contents.
        data: LineData,
    },
}

/// Why a log append could not be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogAppendError {
    /// The target channel's write queue is full; retry next cycle.
    WqFull,
    /// The log ring is out of space; truncation must run first (§III-A
    /// overflow handling).
    RingFull(LogFullError),
}

#[derive(Debug, Clone)]
struct PendingWrite {
    bank: usize,
    service_cycles: Cycle,
}

#[derive(Debug, Clone)]
struct PendingRead {
    ticket: ReadTicket,
    bank: usize,
    enqueued: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    read_q: VecDeque<PendingRead>,
    write_q: VecDeque<PendingWrite>,
    /// When each bank finishes its current *read* occupancy.
    read_busy_until: Vec<Cycle>,
    /// When each bank finishes its current write (extends when paused).
    write_busy_until: Vec<Cycle>,
    draining: bool,
}

impl Channel {
    fn new(banks: usize) -> Self {
        Channel {
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            read_busy_until: vec![0; banks],
            write_busy_until: vec![0; banks],
            draining: false,
        }
    }
}

/// Service time charged to a bank for a write DCW found fully silent
/// (command/bus occupancy only), in nanoseconds.
const SILENT_WRITE_NS: f64 = 4.0;

/// Ring headroom kept free for commit records: data entries stop being
/// accepted below this margin so that commit records — which truncation
/// progress depends on — can always append (prevents the §III-A overflow
/// case from livelocking commit↔truncation).
const COMMIT_RESERVE_BYTES: u64 = 2048;

/// Overhead of pausing an in-progress iterative write to service a read
/// (write pausing, Qureshi et al. HPCA'10; modelled by NVMain), in
/// nanoseconds.
const WRITE_PAUSE_NS: f64 = 4.0;

/// The memory controller plus the devices behind it.
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// use morlog_nvm::controller::MemoryController;
/// use morlog_nvm::layout::MemoryMap;
/// use morlog_sim_core::{Frequency, LineData, MemConfig};
///
/// let cfg = MemConfig::default();
/// let map = MemoryMap::table_iii(cfg.log_region_bytes as u64);
/// let codec = SldeCodec::new(CellModel::table_iii());
/// let mut mc = MemoryController::new(cfg, Frequency::ghz(3.0), map, codec);
/// let line = map.data_base().line();
/// assert!(mc.try_write_data(line, LineData::zeroed(), 0));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemConfig,
    freq: Frequency,
    map: MemoryMap,
    module: NvmmModule,
    dram: HashMap<LineAddr, LineData>,
    /// Log slices: one for the paper's centralized log, several for the
    /// §III-F distributed (per-thread) variant.
    logs: Vec<LogRegion>,
    channels: Vec<Channel>,
    next_ticket: u64,
    done_reads: HashMap<ReadTicket, Cycle>,
    stats: MemStats,
    high_mark: usize,
    low_mark: usize,
}

impl MemoryController {
    /// Builds the controller, devices and log ring for the given map.
    pub fn new(cfg: MemConfig, freq: Frequency, map: MemoryMap, codec: SldeCodec) -> Self {
        let banks = cfg.banks * cfg.ranks;
        let high_mark =
            ((cfg.write_queue_entries as f64) * cfg.drain_watermark).ceil() as usize;
        let low_mark = ((cfg.write_queue_entries as f64) * cfg.drain_low_mark).floor() as usize;
        let slices = cfg.log_slices.max(1) as u64;
        let slice_bytes = (map.log_bytes() / slices).next_multiple_of(64).max(64);
        let logs = (0..slices)
            .map(|i| {
                LogRegion::new(
                    morlog_sim_core::Addr::new(map.log_base().as_u64() + i * slice_bytes),
                    slice_bytes.min(map.log_bytes() - i * slice_bytes),
                )
            })
            .collect();
        MemoryController {
            channels: (0..cfg.channels).map(|_| Channel::new(banks)).collect(),
            module: NvmmModule::new(codec),
            dram: HashMap::new(),
            logs,
            next_ticket: 0,
            done_reads: HashMap::new(),
            stats: MemStats::default(),
            high_mark,
            low_mark,
            cfg,
            freq,
            map,
        }
    }

    /// The address map in effect.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Selects the secure-NVMM model (§IV-D) for log-data encoding.
    pub fn set_secure_mode(&mut self, mode: morlog_encoding::secure::SecureMode) {
        self.module.set_secure_mode(mode);
    }

    /// Device wear summary (see [`NvmmModule::wear_summary`]).
    pub fn wear_summary(&self) -> (u64, u64, usize) {
        self.module.wear_summary()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The log ring (for the recovery scan and truncation decisions).
    /// With distributed logs this is slice 0; use [`log_regions`] to see
    /// all slices.
    ///
    /// [`log_regions`]: MemoryController::log_regions
    pub fn log_region(&self) -> &LogRegion {
        &self.logs[0]
    }

    /// All log slices (1 for the centralized log).
    pub fn log_regions(&self) -> &[LogRegion] {
        &self.logs
    }

    /// The slice a thread's records go to.
    pub fn log_slice_of(&self, thread: morlog_sim_core::ThreadId) -> usize {
        thread.index() % self.logs.len()
    }

    /// Functional read of any line (DRAM or NVMM). Recovery and the caches
    /// use this; timing is modelled separately by [`enqueue_read`].
    ///
    /// [`enqueue_read`]: MemoryController::enqueue_read
    pub fn read_line(&self, line: LineAddr) -> LineData {
        match self.map.region(line.base()) {
            Region::Dram => self.dram.get(&line).copied().unwrap_or_default(),
            Region::NvmmLog | Region::NvmmData => self.module.read_data_line(line),
        }
    }

    /// Functional write used by recovery (bypasses queues and timing).
    pub fn write_line_functional(&mut self, line: LineAddr, data: LineData) {
        match self.map.region(line.base()) {
            Region::Dram => {
                self.dram.insert(line, data);
            }
            Region::NvmmLog | Region::NvmmData => {
                self.module.write_data_line(line, data);
            }
        }
    }

    /// Starts a timed read of `line`; poll with [`take_if_done`].
    ///
    /// [`take_if_done`]: MemoryController::take_if_done
    pub fn enqueue_read(&mut self, line: LineAddr, now: Cycle) -> ReadTicket {
        let ticket = ReadTicket(self.next_ticket);
        self.next_ticket += 1;
        match self.map.region(line.base()) {
            Region::Dram => {
                let done = now + self.freq.ns_to_cycles(
                    morlog_sim_core::NanoSeconds::new(self.cfg.dram_latency_ns),
                );
                self.done_reads.insert(ticket, done);
            }
            Region::NvmmLog | Region::NvmmData => {
                self.stats.nvmm_reads += 1;
                let (ch, bank) = self.place(line);
                if self.channels[ch].draining {
                    self.stats.reads_blocked_by_drain += 1;
                }
                self.channels[ch].read_q.push_back(PendingRead { ticket, bank, enqueued: now });
            }
        }
        ticket
    }

    /// Returns `true` (consuming the ticket) once the read has completed.
    pub fn take_if_done(&mut self, ticket: ReadTicket, now: Cycle) -> bool {
        match self.done_reads.get(&ticket) {
            Some(&cycle) if cycle <= now => {
                self.done_reads.remove(&ticket);
                true
            }
            _ => false,
        }
    }

    /// Attempts to accept a 64-byte data write. DRAM writes always succeed;
    /// NVMM writes fail (`false`) when the channel's write queue is full.
    pub fn try_write_data(&mut self, line: LineAddr, data: LineData, _now: Cycle) -> bool {
        match self.map.region(line.base()) {
            Region::Dram => {
                self.dram.insert(line, data);
                true
            }
            Region::NvmmLog | Region::NvmmData => {
                let (ch, bank) = self.place(line);
                if self.channels[ch].write_q.len() >= self.cfg.write_queue_entries {
                    return false;
                }
                let serviced = self.module.write_data_line(line, data);
                self.account_write(&serviced.cost, false, &serviced.choices);
                let service_cycles = self.write_service_cycles(&serviced.cost);
                self.channels[ch].write_q.push_back(PendingWrite { bank, service_cycles });
                true
            }
        }
    }

    /// Attempts to append and persist a log record. On success the record is
    /// durable (it entered the ADR domain) and its NVMM write is queued.
    ///
    /// # Errors
    ///
    /// [`LogAppendError::WqFull`] when the slot's channel has no queue space;
    /// [`LogAppendError::RingFull`] when the ring needs truncation first.
    pub fn try_append_log(
        &mut self,
        record: LogRecord,
        _now: Cycle,
    ) -> Result<StoredRecord, LogAppendError> {
        let slice = self.log_slice_of(record.key.thread);
        let log = &self.logs[slice];
        if record.kind != crate::log::LogRecordKind::Commit
            && log.free_bytes() < COMMIT_RESERVE_BYTES + record.kind.slot_bytes()
        {
            // §III-A overflow prevention, option 2: extend the slice with a
            // temporary region instead of wedging the commit/truncation
            // pipeline behind a full ring.
            let extra = self.logs[slice].capacity().max(4096);
            self.logs[slice].grow(extra);
            self.stats.log_overflow_growths += 1;
        }
        let log = &self.logs[slice];
        let offset = log.tail(); // close enough for placement (wrap skip shifts by <1 slot)
        let slot_addr = Addr::new(log.base().as_u64() + offset % log.capacity());
        let (ch, bank) = self.place(slot_addr.line());
        if self.channels[ch].write_q.len() >= self.cfg.write_queue_entries {
            return Err(LogAppendError::WqFull);
        }
        let stored = match self.logs[slice].append(record) {
            Ok(stored) => stored,
            Err(_) => {
                // §III-A overflow prevention, option 2: extend the slice
                // with a temporary region rather than wedging the
                // commit/truncation pipeline.
                let extra = self.logs[slice].capacity().max(4096);
                self.logs[slice].grow(extra);
                self.stats.log_overflow_growths += 1;
                self.logs[slice].append(record).map_err(LogAppendError::RingFull)?
            }
        };
        let physical = stored.offset % self.logs[slice].capacity();
        // Slot-state keys are unique across slices.
        let slot_key = ((slice as u64) << 40) | physical;
        let serviced = self.module.write_log_record(&stored, slot_key);
        self.account_write(&serviced.cost, true, &serviced.choices);
        let service_cycles = self.write_service_cycles(&serviced.cost);
        self.channels[ch].write_q.push_back(PendingWrite { bank, service_cycles });
        Ok(stored)
    }

    /// Truncates log slice 0 up to `offset` (exclusive); see
    /// [`truncate_log_slice`] for distributed logs.
    ///
    /// [`truncate_log_slice`]: MemoryController::truncate_log_slice
    pub fn truncate_log(&mut self, offset: u64) {
        self.logs[0].truncate_to(offset);
    }

    /// Truncates one log slice up to `offset` (exclusive).
    pub fn truncate_log_slice(&mut self, slice: usize, offset: u64) {
        self.logs[slice].truncate_to(offset);
    }

    /// Empties every log slice (end of recovery: all entries deleted by
    /// advancing the head pointers to the tails).
    pub fn clear_log(&mut self) {
        for log in &mut self.logs {
            log.clear();
        }
    }

    /// Whether any channel's write queue is at or above the drain watermark.
    pub fn any_channel_draining(&self) -> bool {
        self.channels.iter().any(|c| c.draining)
    }

    /// Total outstanding write-queue occupancy across channels.
    pub fn write_queue_occupancy(&self) -> usize {
        self.channels.iter().map(|c| c.write_q.len()).sum()
    }

    /// Records one cycle of a core stalled on a full write queue.
    pub fn note_wq_stall(&mut self) {
        self.stats.wq_full_stall_cycles += 1;
    }

    /// Advances the controller by one cycle: updates drain state and issues
    /// ready requests to free banks.
    ///
    /// Reads may *pause* an in-progress write on their bank (write pausing:
    /// the iterative program-and-verify loop of PCM/RRAM can be suspended
    /// between iterations); the paused write's completion slips by the read
    /// duration plus a small resume overhead.
    pub fn tick(&mut self, now: Cycle) {
        let read_cycles = self
            .freq
            .ns_to_cycles(morlog_sim_core::NanoSeconds::new(self.cfg.read_latency_ns));
        let pause_cycles =
            self.freq.ns_to_cycles(morlog_sim_core::NanoSeconds::new(WRITE_PAUSE_NS));
        for ch in &mut self.channels {
            // WQF drain hysteresis.
            if !ch.draining && ch.write_q.len() >= self.high_mark {
                ch.draining = true;
                self.stats.drains += 1;
            } else if ch.draining && ch.write_q.len() <= self.low_mark {
                ch.draining = false;
            }
            // Issue loop: reads always have priority — write pausing lets
            // them preempt in-progress writes even mid-drain; writes go out
            // during drains or when the channel has no waiting reads.
            loop {
                let mut issued = false;
                {
                    if let Some(pos) =
                        ch.read_q.iter().position(|r| ch.read_busy_until[r.bank] <= now)
                    {
                        let r = ch.read_q.remove(pos).expect("position valid");
                        let done = now + read_cycles;
                        ch.read_busy_until[r.bank] = done;
                        if ch.write_busy_until[r.bank] > now {
                            // Pause the write: it resumes after the read.
                            ch.write_busy_until[r.bank] += read_cycles + pause_cycles;
                        }
                        self.done_reads.insert(r.ticket, done);
                        self.stats.read_wait_cycles += done - r.enqueued;
                        issued = true;
                    }
                }
                if ch.draining || ch.read_q.is_empty() {
                    if let Some(pos) = ch.write_q.iter().position(|w| {
                        ch.write_busy_until[w.bank] <= now && ch.read_busy_until[w.bank] <= now
                    }) {
                        let w = ch.write_q.remove(pos).expect("position valid");
                        ch.write_busy_until[w.bank] = now + w.service_cycles;
                        issued = true;
                    }
                }
                if !issued {
                    break;
                }
            }
        }
    }

    fn place(&self, line: LineAddr) -> (usize, usize) {
        line_to_channel_bank(line, self.cfg.channels, self.cfg.banks * self.cfg.ranks)
    }

    fn write_service_cycles(&self, cost: &morlog_encoding::dcw::WriteCost) -> Cycle {
        let ns = if cost.is_silent() {
            morlog_sim_core::NanoSeconds::new(SILENT_WRITE_NS)
        } else {
            cost.latency
        };
        self.freq.ns_to_cycles(ns).max(1)
    }

    fn account_write(
        &mut self,
        cost: &morlog_encoding::dcw::WriteCost,
        is_log: bool,
        _choices: &[EncodingChoice],
    ) {
        self.stats.nvmm_writes += 1;
        if is_log {
            self.stats.log_writes += 1;
            self.stats.log_bits_programmed += cost.bits_programmed;
            self.stats.log_write_energy_pj += cost.energy.as_f64();
        } else {
            self.stats.data_writes += 1;
        }
        self.stats.cells_programmed += cost.cells_programmed;
        self.stats.bits_programmed += cost.bits_programmed;
        self.stats.write_energy_pj += cost.energy.as_f64();
        if cost.is_silent() {
            self.stats.silent_block_writes += 1;
        }
    }

    /// Builds a controller with the default map for `cfg` and the given
    /// codec (convenience for tests and the simulator).
    pub fn with_default_map(cfg: MemConfig, freq: Frequency, codec: SldeCodec) -> Self {
        let map = MemoryMap::table_iii(cfg.log_region_bytes as u64);
        MemoryController::new(cfg, freq, map, codec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_sim_core::ids::TxKey;
    use morlog_sim_core::{ThreadId, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key() -> TxKey {
        TxKey::new(ThreadId::new(0), TxId::new(0))
    }

    #[test]
    fn dram_reads_complete_quickly() {
        let mut m = mc();
        let t = m.enqueue_read(LineAddr::from_index(1), 0);
        assert!(!m.take_if_done(t, 10));
        assert!(m.take_if_done(t, 45)); // 15 ns at 3 GHz
        assert!(!m.take_if_done(t, 100), "ticket consumed");
    }

    #[test]
    fn nvmm_reads_need_a_tick() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let t = m.enqueue_read(line, 0);
        m.tick(0);
        assert!(!m.take_if_done(t, 74));
        assert!(m.take_if_done(t, 75)); // 25 ns at 3 GHz
        assert_eq!(m.stats().nvmm_reads, 1);
    }

    #[test]
    fn writes_apply_functionally_at_acceptance() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let mut d = LineData::zeroed();
        d.set_word(0, 99);
        assert!(m.try_write_data(line, d, 0));
        assert_eq!(m.read_line(line).word(0), 99, "ADR: durable at WQ accept");
        assert_eq!(m.stats().data_writes, 1);
    }

    #[test]
    fn write_queue_backpressure() {
        let mut m = mc();
        // Fill one channel's write queue without ticking.
        let base = m.map().data_base().line().index();
        let mut accepted = 0;
        let mut d = LineData::zeroed();
        for i in 0.. {
            d.set_word(0, i);
            // Same channel: stride by the channel count.
            let line = LineAddr::from_index(base + i * 4);
            if !m.try_write_data(line, d, 0) {
                break;
            }
            accepted += 1;
            assert!(accepted <= 64, "queue must cap at 64");
        }
        assert_eq!(accepted, 64);
        // Draining for a while frees space.
        for now in 0..100_000 {
            m.tick(now);
        }
        assert!(m.try_write_data(LineAddr::from_index(base), d, 100_000));
        assert!(m.stats().drains >= 1);
    }

    #[test]
    fn log_append_persists_and_costs() {
        let mut m = mc();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        let stored = m.try_append_log(rec, 0).unwrap();
        assert_eq!(stored.offset, 0);
        assert_eq!(m.stats().log_writes, 1);
        assert!(m.stats().log_bits_programmed > 0);
        assert_eq!(m.log_region().records().count(), 1);
    }

    #[test]
    fn log_ring_full_surfaces_error() {
        // A filled slice grows a temporary overflow region (§III-A option 2)
        // instead of erroring; the growth is counted.
        let mut cfg = MemConfig::default();
        cfg.log_region_bytes = 64; // two undo+redo slots
        let map = MemoryMap::new(1 << 20, 1 << 21, 64);
        let mut m = MemoryController::new(
            cfg,
            Frequency::ghz(3.0),
            map,
            SldeCodec::new(CellModel::table_iii()),
        );
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        for _ in 0..8 {
            m.try_append_log(rec, 0).unwrap();
        }
        assert!(m.stats().log_overflow_growths >= 1, "slice grew under pressure");
        assert_eq!(m.log_region().records().count(), 8);
        // Truncation still works over the grown region.
        let head_target = m.log_region().records().nth(2).unwrap().offset;
        m.truncate_log(head_target);
        assert_eq!(m.log_region().records().count(), 6);
    }


    #[test]
    fn drain_blocks_reads_until_low_mark() {
        let mut m = mc();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        // Push the queue over the watermark (52 of 64).
        for i in 0..55 {
            d.set_word(0, i);
            assert!(m.try_write_data(LineAddr::from_index(base + i * 4), d, 0));
        }
        m.tick(0);
        assert!(m.any_channel_draining());
        let t = m.enqueue_read(LineAddr::from_index(base), 1);
        assert_eq!(m.stats().reads_blocked_by_drain, 1);
        // The read eventually completes once the drain ends.
        let mut done_at = None;
        for now in 1..2_000_000 {
            m.tick(now);
            if m.take_if_done(t, now) {
                done_at = Some(now);
                break;
            }
        }
        let done_at = done_at.expect("read must complete");
        assert!(done_at > 75, "read was delayed behind the drain, done at {done_at}");
    }

    #[test]
    fn silent_data_write_counts_and_costs_little() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let mut d = LineData::zeroed();
        d.set_word(3, 0xABCD);
        assert!(m.try_write_data(line, d, 0));
        assert!(m.try_write_data(line, d, 0)); // identical: silent
        assert_eq!(m.stats().silent_block_writes, 1);
        assert_eq!(m.stats().nvmm_writes, 2);
    }
}
