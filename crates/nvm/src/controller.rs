//! The FRFCFS-WQF memory controller of Table III.
//!
//! Four channels, eight banks each, a 64-entry write queue per channel with
//! an 80 % drain watermark: reads have priority until the write queue
//! crosses the watermark, then the channel drains writes (blocking reads)
//! until occupancy falls to the low mark. Bank service times come from the
//! NVMM module's DCW cost for writes and the flat Table III array latency
//! for reads; there is no row-buffer model because the paper's device table
//! specifies flat latencies.
//!
//! The write queue is the ADR persist-domain boundary (§III-A): writes are
//! applied to the functional store at *acceptance*, and queue/bank state
//! models timing only.

use std::collections::{HashMap, VecDeque};

use morlog_encoding::slde::{EncodingChoice, SldeCodec};
use morlog_sim_core::fault::FaultPlan;
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::metrics::LogWriteMetrics;
use morlog_sim_core::persist::{PersistEventKind, PersistEventMeta};
use morlog_sim_core::stats::MemStats;
use morlog_sim_core::trace::{LogKindTag, TraceEvent, Tracer};
use morlog_sim_core::{Addr, Cycle, Frequency, LineAddr, LineData, MemConfig};

use crate::layout::{line_to_channel_bank, MemoryMap, Region};
use crate::log::{LogFullError, LogRecord, LogRecordKind, LogRegion, StoredRecord};
use crate::module::NvmmModule;

/// Identifies an outstanding read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadTicket(u64);

/// A write presented to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteRequest {
    /// An in-place 64-byte data write (cache writeback or non-temporal
    /// store drain).
    Data {
        /// Target line.
        line: LineAddr,
        /// New contents.
        data: LineData,
    },
}

/// Why a log append could not be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogAppendError {
    /// The target channel's write queue is full; retry next cycle.
    WqFull,
    /// The log ring is out of space; truncation must run first (§III-A
    /// overflow handling).
    RingFull(LogFullError),
}

#[derive(Debug, Clone)]
struct PendingWrite {
    bank: usize,
    service_cycles: Cycle,
    /// Global acceptance order — the deterministic fault-injection site.
    accept_seq: u64,
    payload: WritePayload,
}

/// What an in-flight write carries, for the fault model. Tracked only while
/// a fault plan is active; plain timing runs queue [`WritePayload::Untracked`]
/// entries and behave exactly as before.
#[derive(Debug, Clone)]
enum WritePayload {
    /// No fault plan: the queue entry models timing only.
    Untracked,
    /// An in-place data-line write (drain-verified, never torn: a data line
    /// is one atomic row program under the ADR flush circuitry).
    Data { data: LineData },
    /// A log-slot write: the slot's words, for drain-verify read-back and
    /// crash-time damage rolls.
    Log {
        slice: usize,
        offset: u64,
        key: TxKey,
        /// Home line of the logged word (write-ahead gating).
        data_line: LineAddr,
        /// Whether the slot carries undo data the home line depends on.
        is_undo: bool,
        data_words: usize,
        slot_key: u64,
        /// Slot words in program order: `[meta0, meta1, timestamp, data...]`.
        words: [u64; 5],
        nwords: u8,
    },
}

/// Incremental persist-domain state hash, maintained only while the
/// crash-point model checker's reference run records its schedule.
///
/// `state` is an XOR-fold over persist-domain locations (data lines and
/// live log slots): a functional mutation updates it in O(1) by XORing
/// out the location's old hash and XORing in the new one. Because XOR
/// deltas commute, the fold is exact relative to its enable-time baseline
/// — two samples are equal iff nothing in the persist domain changed
/// between them (modulo 64-bit collisions). Log truncation between
/// persist events XORs the deleted slots out, so a crash point after a
/// truncation is never pruned as equivalent to one before it.
#[derive(Debug, Clone, Default)]
struct HashTrace {
    /// Current XOR-fold of the persist domain.
    state: u64,
    /// `samples[i]` = `state` immediately after persist event `i + 1`.
    samples: Vec<u64>,
}

/// SplitMix64 finalizer: the bijective mixer used to hash persist-domain
/// locations (independent of the fault plan's site rolls).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Location hash of one data line's contents.
fn hash_line(line: LineAddr, data: &LineData) -> u64 {
    let mut h = mix64(line.index() ^ 0xD1B5_4A32_D192_ED03);
    for i in 0..morlog_sim_core::WORDS_PER_LINE {
        h = mix64(h ^ data.word(i).wrapping_add(i as u64));
    }
    h
}

/// Location hash of one live log slot.
fn hash_record(slice: usize, stored: &StoredRecord) -> u64 {
    let mut h = mix64((slice as u64) << 48 ^ stored.offset ^ 0x2545_F491_4F6C_DD1D);
    for w in stored.record.payload_words() {
        h = mix64(h ^ w);
    }
    h
}

/// One live log slot as seen by the recovery scan: its stored form plus how
/// many of its data words actually persisted (fewer than
/// `record.kind.data_words()` when a crash tore the slot's drain).
#[derive(Debug, Clone, Copy)]
pub struct ScannedRecord {
    /// Which log slice holds the slot.
    pub slice: usize,
    /// The stored record (contents as the array now holds them — possibly
    /// bit-flipped or prefix-truncated by an injected fault).
    pub stored: StoredRecord,
    /// Data words that persisted before the crash cut the drain short.
    pub words_persisted: usize,
}

#[derive(Debug, Clone)]
struct PendingRead {
    ticket: ReadTicket,
    bank: usize,
    enqueued: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    read_q: VecDeque<PendingRead>,
    write_q: VecDeque<PendingWrite>,
    /// When each bank finishes its current *read* occupancy.
    read_busy_until: Vec<Cycle>,
    /// When each bank finishes its current write (extends when paused).
    write_busy_until: Vec<Cycle>,
    draining: bool,
}

impl Channel {
    fn new(banks: usize) -> Self {
        Channel {
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            read_busy_until: vec![0; banks],
            write_busy_until: vec![0; banks],
            draining: false,
        }
    }
}

/// Service time charged to a bank for a write DCW found fully silent
/// (command/bus occupancy only), in nanoseconds.
const SILENT_WRITE_NS: f64 = 4.0;

/// Ring headroom kept free for commit records: data entries stop being
/// accepted below this margin so that commit records — which truncation
/// progress depends on — can always append (prevents the §III-A overflow
/// case from livelocking commit↔truncation).
const COMMIT_RESERVE_BYTES: u64 = 2048;

/// Overhead of pausing an in-progress iterative write to service a read
/// (write pausing, Qureshi et al. HPCA'10; modelled by NVMain), in
/// nanoseconds.
const WRITE_PAUSE_NS: f64 = 4.0;

/// The memory controller plus the devices behind it.
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// use morlog_nvm::controller::MemoryController;
/// use morlog_nvm::layout::MemoryMap;
/// use morlog_sim_core::{Frequency, LineData, MemConfig};
///
/// let cfg = MemConfig::default();
/// let map = MemoryMap::table_iii(cfg.log_region_bytes as u64);
/// let codec = SldeCodec::new(CellModel::table_iii());
/// let mut mc = MemoryController::new(cfg, Frequency::ghz(3.0), map, codec);
/// let line = map.data_base().line();
/// assert!(mc.try_write_data(line, LineData::zeroed(), 0));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemConfig,
    freq: Frequency,
    map: MemoryMap,
    module: NvmmModule,
    dram: HashMap<LineAddr, LineData>,
    /// Log slices: one for the paper's centralized log, several for the
    /// §III-F distributed (per-thread) variant.
    logs: Vec<LogRegion>,
    channels: Vec<Channel>,
    next_ticket: u64,
    done_reads: HashMap<ReadTicket, Cycle>,
    stats: MemStats,
    high_mark: usize,
    low_mark: usize,
    /// Fault-injection plan (inactive by default).
    fault_plan: FaultPlan,
    /// Monotonic write-acceptance counter: the fault site of each write.
    accept_seq: u64,
    /// Lifetime program count per log slot (keyed by slot_key), for the
    /// stuck-at wear-out model. Reset when a slot is remapped to a spare.
    wear: HashMap<u64, u32>,
    /// Slots a crash-time tear truncated: `(slice, offset) -> data words
    /// persisted`. The recovery scan reads this through [`scan_log`].
    ///
    /// [`scan_log`]: MemoryController::scan_log
    torn_words: HashMap<(usize, u64), usize>,
    /// Observability sink (disabled by default; see [`set_tracer`]).
    ///
    /// [`set_tracer`]: MemoryController::set_tracer
    tracer: Tracer,
    /// Cycle of the most recent [`tick`], used to stamp trace events from
    /// un-timed entry points (truncation, crash).
    ///
    /// [`tick`]: MemoryController::tick
    last_tick: Cycle,
    /// Per-kind log-entry size histograms and SLDE encoder-choice counts
    /// (always collected; see [`morlog_sim_core::metrics`]).
    log_metrics: LogWriteMetrics,
    /// Armed crash point: once `accept_seq` reaches this persist-event
    /// count the controller freezes — further accepts are refused through
    /// the ordinary backpressure paths (`false` / `WqFull`), pinning the
    /// persist domain to exactly the first `n` events. See
    /// [`arm_crash_at`](MemoryController::arm_crash_at).
    crash_at: Option<u64>,
    /// Persist-domain hash sampling (checker reference runs only).
    hash_trace: Option<HashTrace>,
    /// Persist-event metadata stream (checker reference runs only): one
    /// entry per acceptance, with truncation markers interleaved. Feeds
    /// the fuzz campaign's coverage buckets and the exhaustive mode's
    /// partial-order reduction.
    meta_trace: Option<Vec<PersistEventMeta>>,
}

impl MemoryController {
    /// Builds the controller, devices and log ring for the given map.
    pub fn new(cfg: MemConfig, freq: Frequency, map: MemoryMap, codec: SldeCodec) -> Self {
        let banks = cfg.banks * cfg.ranks;
        let high_mark = ((cfg.write_queue_entries as f64) * cfg.drain_watermark).ceil() as usize;
        let low_mark = ((cfg.write_queue_entries as f64) * cfg.drain_low_mark).floor() as usize;
        let slices = cfg.log_slices.max(1) as u64;
        let slice_bytes = (map.log_bytes() / slices).next_multiple_of(64).max(64);
        let logs = (0..slices)
            .map(|i| {
                LogRegion::new(
                    morlog_sim_core::Addr::new(map.log_base().as_u64() + i * slice_bytes),
                    slice_bytes.min(map.log_bytes() - i * slice_bytes),
                )
            })
            .collect();
        MemoryController {
            channels: (0..cfg.channels).map(|_| Channel::new(banks)).collect(),
            module: NvmmModule::new(codec),
            dram: HashMap::new(),
            logs,
            next_ticket: 0,
            done_reads: HashMap::new(),
            stats: MemStats::default(),
            high_mark,
            low_mark,
            fault_plan: FaultPlan::none(),
            accept_seq: 0,
            wear: HashMap::new(),
            torn_words: HashMap::new(),
            tracer: Tracer::disabled(),
            last_tick: 0,
            log_metrics: LogWriteMetrics::default(),
            crash_at: None,
            hash_trace: None,
            meta_trace: None,
            cfg,
            freq,
            map,
        }
    }

    /// Installs the shared trace handle (see [`morlog_sim_core::trace`]).
    /// Emits write-queue accept/drain events, log appends and truncations.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The trace handle in effect (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The cycle stamp of the most recent [`tick`](MemoryController::tick).
    /// Untimed entry points (truncation, crash, recovery) use it to stamp
    /// their trace events with the last simulated instant.
    pub fn last_tick(&self) -> Cycle {
        self.last_tick
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]). With the default
    /// [`FaultPlan::none`] the controller's behavior is bit-identical to the
    /// fault-free model.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The fault plan in effect.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Whether an active fault plan is installed.
    pub fn fault_active(&self) -> bool {
        self.fault_plan.is_active()
    }

    /// The address map in effect.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Selects the secure-NVMM model (§IV-D) for log-data encoding.
    pub fn set_secure_mode(&mut self, mode: morlog_encoding::secure::SecureMode) {
        self.module.set_secure_mode(mode);
    }

    /// Device wear summary (see [`NvmmModule::wear_summary`]).
    pub fn wear_summary(&self) -> (u64, u64, usize) {
        self.module.wear_summary()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The log ring (for the recovery scan and truncation decisions).
    /// With distributed logs this is slice 0; use [`log_regions`] to see
    /// all slices.
    ///
    /// [`log_regions`]: MemoryController::log_regions
    pub fn log_region(&self) -> &LogRegion {
        &self.logs[0]
    }

    /// All log slices (1 for the centralized log).
    pub fn log_regions(&self) -> &[LogRegion] {
        &self.logs
    }

    /// The slice a thread's records go to.
    ///
    /// With `threads > log_slices` (the fig. 16 regime), several threads
    /// **share** one slice. This is safe despite the ring's
    /// single-producer design because the cycle engine serializes all
    /// appends through this controller — a slice sees one append at a
    /// time, in a deterministic global order, and recovery orders commits
    /// across slices by the commit-record timestamp rather than by ring
    /// position (§III-F). The 16-threads × 4-slices regression test in
    /// `morlog-sim` pins this down.
    pub fn log_slice_of(&self, thread: morlog_sim_core::ThreadId) -> usize {
        thread.index() % self.logs.len()
    }

    /// Functional read of any line (DRAM or NVMM). Recovery and the caches
    /// use this; timing is modelled separately by [`enqueue_read`].
    ///
    /// [`enqueue_read`]: MemoryController::enqueue_read
    pub fn read_line(&self, line: LineAddr) -> LineData {
        match self.map.region(line.base()) {
            Region::Dram => self.dram.get(&line).copied().unwrap_or_default(),
            Region::NvmmLog | Region::NvmmData => self.module.read_data_line(line),
        }
    }

    /// Functional write used by recovery (bypasses queues and timing).
    pub fn write_line_functional(&mut self, line: LineAddr, data: LineData) {
        match self.map.region(line.base()) {
            Region::Dram => {
                self.dram.insert(line, data);
            }
            Region::NvmmLog | Region::NvmmData => {
                self.module.write_data_line(line, data);
            }
        }
    }

    /// Starts a timed read of `line`; poll with [`take_if_done`].
    ///
    /// [`take_if_done`]: MemoryController::take_if_done
    pub fn enqueue_read(&mut self, line: LineAddr, now: Cycle) -> ReadTicket {
        let ticket = ReadTicket(self.next_ticket);
        self.next_ticket += 1;
        match self.map.region(line.base()) {
            Region::Dram => {
                let done = now
                    + self
                        .freq
                        .ns_to_cycles(morlog_sim_core::NanoSeconds::new(self.cfg.dram_latency_ns));
                self.done_reads.insert(ticket, done);
            }
            Region::NvmmLog | Region::NvmmData => {
                self.stats.nvmm_reads += 1;
                let (ch, bank) = self.place(line);
                if self.channels[ch].draining {
                    self.stats.reads_blocked_by_drain += 1;
                }
                self.channels[ch].read_q.push_back(PendingRead {
                    ticket,
                    bank,
                    enqueued: now,
                });
            }
        }
        ticket
    }

    /// Returns `true` (consuming the ticket) once the read has completed.
    pub fn take_if_done(&mut self, ticket: ReadTicket, now: Cycle) -> bool {
        match self.done_reads.get(&ticket) {
            Some(&cycle) if cycle <= now => {
                self.done_reads.remove(&ticket);
                true
            }
            _ => false,
        }
    }

    /// Attempts to accept a 64-byte data write. DRAM writes always succeed;
    /// NVMM writes fail (`false`) when the channel's write queue is full.
    pub fn try_write_data(&mut self, line: LineAddr, data: LineData, now: Cycle) -> bool {
        match self.map.region(line.base()) {
            Region::Dram => {
                self.dram.insert(line, data);
                true
            }
            Region::NvmmLog | Region::NvmmData => {
                if self.crash_point_reached() {
                    // Armed crash point hit: the persist domain is frozen.
                    // Refuse through the ordinary backpressure path so the
                    // caller stalls exactly as on a full queue.
                    return false;
                }
                let (ch, bank) = self.place(line);
                if self.channels[ch].write_q.len() >= self.cfg.write_queue_entries {
                    return false;
                }
                // Write-ahead enforcement under fault injection: while an
                // undo-carrying slot for this line is still in some write
                // queue, a crash could tear it — so the in-place write the
                // undo protects must not become durable first. The caller
                // retries, exactly as for a full queue.
                if self.fault_plan.is_active() && self.line_has_undrained_undo(line) {
                    return false;
                }
                if let Some(ht) = &mut self.hash_trace {
                    let old = self.module.read_data_line(line);
                    ht.state ^= hash_line(line, &old) ^ hash_line(line, &data);
                }
                if self.meta_trace.is_some() {
                    let old = self.module.read_data_line(line);
                    let mut changed = 0u8;
                    for i in 0..morlog_sim_core::WORDS_PER_LINE {
                        if old.word(i) != data.word(i) {
                            changed |= 1 << i;
                        }
                    }
                    if let Some(mt) = &mut self.meta_trace {
                        mt.push(PersistEventMeta::Data {
                            line: line.index(),
                            changed,
                        });
                    }
                }
                let serviced = self.module.write_data_line(line, data);
                self.account_write(&serviced.cost, false, &serviced.choices);
                let service_cycles = self.write_service_cycles(&serviced.cost);
                let payload = if self.fault_plan.is_active() {
                    WritePayload::Data { data }
                } else {
                    WritePayload::Untracked
                };
                let accept_seq = self.bump_accept_seq();
                self.channels[ch].write_q.push_back(PendingWrite {
                    bank,
                    service_cycles,
                    accept_seq,
                    payload,
                });
                let occ = self.channels[ch].write_q.len() as u32;
                self.tracer.emit(now, || TraceEvent::WqAccept {
                    channel: ch as u32,
                    occupancy: occ,
                    is_log: false,
                });
                true
            }
        }
    }

    /// Attempts to append and persist a log record. On success the record is
    /// durable (it entered the ADR domain) and its NVMM write is queued.
    ///
    /// # Errors
    ///
    /// [`LogAppendError::WqFull`] when the slot's channel has no queue space;
    /// [`LogAppendError::RingFull`] when the ring needs truncation first.
    pub fn try_append_log(
        &mut self,
        record: LogRecord,
        now: Cycle,
    ) -> Result<StoredRecord, LogAppendError> {
        if self.crash_point_reached() {
            // Armed crash point hit: freeze before any side effect (even
            // the overflow pre-grow), surfacing ordinary backpressure.
            return Err(LogAppendError::WqFull);
        }
        let slice = self.log_slice_of(record.key.thread);
        let log = &self.logs[slice];
        if record.kind != crate::log::LogRecordKind::Commit
            && log.free_bytes() < COMMIT_RESERVE_BYTES + record.kind.slot_bytes()
        {
            // §III-A overflow prevention, option 2: extend the slice with a
            // temporary region instead of wedging the commit/truncation
            // pipeline behind a full ring.
            let extra = self.logs[slice].capacity().max(4096);
            self.logs[slice].grow(extra);
            self.stats.log_overflow_growths += 1;
        }
        let log = &self.logs[slice];
        let offset = log.tail(); // close enough for placement (wrap skip shifts by <1 slot)
        let slot_addr = Addr::new(log.base().as_u64() + offset % log.capacity());
        let (ch, bank) = self.place(slot_addr.line());
        if self.channels[ch].write_q.len() >= self.cfg.write_queue_entries {
            return Err(LogAppendError::WqFull);
        }
        let stored = match self.logs[slice].append(record) {
            Ok(stored) => stored,
            Err(_) => {
                // §III-A overflow prevention, option 2: extend the slice
                // with a temporary region rather than wedging the
                // commit/truncation pipeline.
                let extra = self.logs[slice].capacity().max(4096);
                self.logs[slice].grow(extra);
                self.stats.log_overflow_growths += 1;
                self.logs[slice]
                    .append(record)
                    .map_err(LogAppendError::RingFull)?
            }
        };
        if let Some(ht) = &mut self.hash_trace {
            ht.state ^= hash_record(slice, &stored);
        }
        if let Some(mt) = &mut self.meta_trace {
            mt.push(PersistEventMeta::Log {
                kind: match stored.record.kind {
                    LogRecordKind::UndoRedo => PersistEventKind::UndoRedo,
                    LogRecordKind::Redo => PersistEventKind::Redo,
                    LogRecordKind::Commit => PersistEventKind::Commit,
                },
                key: stored.record.key,
                addr: stored.record.addr,
                slice,
                offset: stored.offset,
            });
        }
        let physical = stored.offset % self.logs[slice].capacity();
        // Slot-state keys are unique across slices.
        let slot_key = ((slice as u64) << 40) | physical;
        let serviced = self.module.write_log_record(&stored, slot_key);
        self.account_write(&serviced.cost, true, &serviced.choices);
        let kind_idx = match stored.record.kind {
            LogRecordKind::UndoRedo => 0,
            LogRecordKind::Redo => 1,
            LogRecordKind::Commit => 2,
        };
        self.log_metrics.entry_bits[kind_idx].record(serviced.cost.bits_programmed);
        let service_cycles = self.write_service_cycles(&serviced.cost);
        let payload = if self.fault_plan.is_active() {
            let pw = stored.record.payload_words();
            let mut words = [0u64; 5];
            words[..pw.len()].copy_from_slice(&pw);
            WritePayload::Log {
                slice,
                offset: stored.offset,
                key: stored.record.key,
                data_line: stored.record.addr.line(),
                is_undo: stored.record.kind == LogRecordKind::UndoRedo,
                data_words: stored.record.kind.data_words(),
                slot_key,
                words,
                nwords: pw.len() as u8,
            }
        } else {
            WritePayload::Untracked
        };
        let accept_seq = self.bump_accept_seq();
        self.channels[ch].write_q.push_back(PendingWrite {
            bank,
            service_cycles,
            accept_seq,
            payload,
        });
        let occ = self.channels[ch].write_q.len() as u32;
        self.tracer.emit(now, || TraceEvent::WqAccept {
            channel: ch as u32,
            occupancy: occ,
            is_log: true,
        });
        self.tracer.emit(now, || TraceEvent::LogAppend {
            slice: slice as u32,
            offset: stored.offset,
            kind: match stored.record.kind {
                LogRecordKind::UndoRedo => LogKindTag::UndoRedo,
                LogRecordKind::Redo => LogKindTag::Redo,
                LogRecordKind::Commit => LogKindTag::Commit,
            },
            key: stored.record.key,
        });
        Ok(stored)
    }

    fn bump_accept_seq(&mut self) -> u64 {
        let seq = self.accept_seq;
        self.accept_seq += 1;
        if let Some(ht) = &mut self.hash_trace {
            ht.samples.push(ht.state);
        }
        seq
    }

    /// Monotone count of persist events: NVMM program acceptances (data
    /// lines and log slots; DRAM writes are volatile and excluded). This
    /// is the event axis of the crash-point model checker.
    pub fn persist_events(&self) -> u64 {
        self.accept_seq
    }

    /// Arms a crash point: once [`persist_events`] reaches `n` the
    /// controller freezes — [`try_write_data`] returns `false` and
    /// [`try_append_log`] returns [`LogAppendError::WqFull`] *before* any
    /// functional apply, so the persist domain holds exactly the first
    /// `n` events. Poll [`crash_point_reached`], then call
    /// [`crash_persist`] to take the crash.
    ///
    /// [`persist_events`]: MemoryController::persist_events
    /// [`try_write_data`]: MemoryController::try_write_data
    /// [`try_append_log`]: MemoryController::try_append_log
    /// [`crash_point_reached`]: MemoryController::crash_point_reached
    /// [`crash_persist`]: MemoryController::crash_persist
    pub fn arm_crash_at(&mut self, n: u64) {
        self.crash_at = Some(n);
    }

    /// Whether an armed crash point has been reached (the controller is
    /// frozen; see [`arm_crash_at`](MemoryController::arm_crash_at)).
    pub fn crash_point_reached(&self) -> bool {
        self.crash_at.is_some_and(|n| self.accept_seq >= n)
    }

    /// Starts persist-domain hash sampling (checker reference runs). The
    /// fold baseline is the enable-time state; deltas keep sample
    /// *equality* exact regardless of the baseline, which is all the
    /// equivalence pruning compares.
    pub fn enable_persist_hash(&mut self) {
        self.hash_trace = Some(HashTrace::default());
    }

    /// Persist-domain hash samples: entry `i` is the state hash right
    /// after persist event `i + 1`. Empty unless
    /// [`enable_persist_hash`](MemoryController::enable_persist_hash)
    /// was called.
    pub fn persist_hash_samples(&self) -> &[u64] {
        self.hash_trace.as_ref().map_or(&[], |ht| &ht.samples)
    }

    /// Starts persist-event metadata recording (checker reference runs):
    /// one [`PersistEventMeta`] entry per acceptance, with truncation
    /// markers interleaved where log records left the persist domain.
    pub fn enable_persist_meta(&mut self) {
        self.meta_trace = Some(Vec::new());
    }

    /// The recorded persist-event metadata stream. Empty unless
    /// [`enable_persist_meta`](MemoryController::enable_persist_meta) was
    /// called.
    pub fn persist_event_meta(&self) -> &[PersistEventMeta] {
        self.meta_trace.as_deref().unwrap_or(&[])
    }

    /// Whether any accepted-but-undrained undo-carrying log write covers
    /// `line` (see the gate in [`try_write_data`]).
    ///
    /// [`try_write_data`]: MemoryController::try_write_data
    fn line_has_undrained_undo(&self, line: LineAddr) -> bool {
        self.channels
            .iter()
            .flat_map(|c| c.write_q.iter())
            .any(|w| {
                matches!(
                    &w.payload,
                    WritePayload::Log { is_undo: true, data_line, .. } if *data_line == line
                )
            })
    }

    /// Whether any of `key`'s log records sit accepted-but-undrained in a
    /// write queue. Under an active fault plan the logging controller holds
    /// a synchronous commit's completion on this — otherwise a crash could
    /// tear a record of a transaction the program already saw commit.
    pub fn tx_has_undrained_records(&self, key: TxKey) -> bool {
        self.channels
            .iter()
            .flat_map(|c| c.write_q.iter())
            .any(|w| matches!(&w.payload, WritePayload::Log { key: k, .. } if *k == key))
    }

    /// Simulates the ADR flush at power loss. Every accepted write reaches
    /// the array, but an active fault plan may damage in-flight *log*
    /// slots: a torn drain persists only a prefix of a slot's data words
    /// (the truncated words read back erased), and escaped resistance
    /// drift flips a bit in a data word. Slot metadata headers and data
    /// lines are single atomic row programs and always land whole. With an
    /// inactive plan this only empties the queues — writes were applied
    /// functionally at acceptance.
    pub fn crash_persist(&mut self) {
        self.tracer.emit(self.last_tick, || TraceEvent::Crash);
        let mut inflight = Vec::new();
        for ch in &mut self.channels {
            inflight.extend(ch.write_q.drain(..));
            ch.draining = false;
        }
        if !self.fault_plan.is_active() {
            return;
        }
        for w in inflight {
            let WritePayload::Log {
                slice,
                offset,
                data_words,
                words,
                ..
            } = w.payload
            else {
                continue;
            };
            if data_words == 0 {
                continue;
            }
            if let Some(k) = self.fault_plan.torn_prefix(w.accept_seq, data_words) {
                self.torn_words.insert((slice, offset), k);
                self.logs[slice].corrupt_record_at(offset, |r| {
                    for i in k..data_words {
                        r.set_data_word(i, 0);
                    }
                });
                self.stats.faults_torn_drains += 1;
                continue;
            }
            for i in 0..data_words {
                let j = 3 + i; // data words follow [meta0, meta1, timestamp]
                let site = w.accept_seq * 16 + j as u64;
                if let Some(flipped) = self.fault_plan.crash_flip_word(site, words[j]) {
                    self.logs[slice].corrupt_record_at(offset, |r| r.set_data_word(i, flipped));
                    self.stats.faults_bit_flips += 1;
                }
            }
        }
    }

    /// Mutates a stored log record in place — array-level fault injection
    /// for tests and tooling. The sealed CRC is left stale, so recovery's
    /// integrity check sees whatever the mutator changed. Returns `false`
    /// when no live record sits at `offset` in `slice`.
    pub fn corrupt_log_record(
        &mut self,
        slice: usize,
        offset: u64,
        f: impl FnOnce(&mut LogRecord),
    ) -> bool {
        self.logs[slice].corrupt_record_at(offset, f)
    }

    /// The recovery scan: every live record of every slice, oldest first
    /// within a slice, annotated with how many data words survived the
    /// crash (see [`ScannedRecord`]).
    pub fn scan_log(&self) -> Vec<ScannedRecord> {
        let mut out = Vec::new();
        for (slice, log) in self.logs.iter().enumerate() {
            for stored in log.records() {
                let words_persisted = self
                    .torn_words
                    .get(&(slice, stored.offset))
                    .copied()
                    .unwrap_or_else(|| stored.record.kind.data_words());
                out.push(ScannedRecord {
                    slice,
                    stored: *stored,
                    words_persisted,
                });
            }
        }
        out
    }

    /// Truncates log slice 0 up to `offset` (exclusive); see
    /// [`truncate_log_slice`] for distributed logs.
    ///
    /// [`truncate_log_slice`]: MemoryController::truncate_log_slice
    pub fn truncate_log(&mut self, offset: u64) {
        self.truncate_log_slice(0, offset);
    }

    /// Truncates one log slice up to `offset` (exclusive).
    pub fn truncate_log_slice(&mut self, slice: usize, offset: u64) {
        if let Some(ht) = &mut self.hash_trace {
            // XOR the deleted slots out of the fold so a crash point after
            // the truncation is not pruned as equivalent to one before it.
            for stored in self.logs[slice].records() {
                if stored.offset >= offset {
                    break;
                }
                ht.state ^= hash_record(slice, stored);
            }
        }
        if self.meta_trace.is_some() {
            let offsets: Vec<u64> = self.logs[slice]
                .records()
                .take_while(|s| s.offset < offset)
                .map(|s| s.offset)
                .collect();
            if !offsets.is_empty() {
                if let Some(mt) = &mut self.meta_trace {
                    mt.push(PersistEventMeta::Truncate { slice, offsets });
                }
            }
        }
        let old_head = self.logs[slice].head();
        self.logs[slice].truncate_to(offset);
        let new_head = self.logs[slice].head();
        if new_head != old_head {
            self.tracer
                .emit(self.last_tick, || TraceEvent::LogTruncate {
                    slice: slice as u32,
                    old_head,
                    new_head,
                });
        }
    }

    /// Empties every log slice (end of recovery: all entries deleted by
    /// advancing the head pointers to the tails).
    pub fn clear_log(&mut self) {
        if let Some(ht) = &mut self.hash_trace {
            for (slice, log) in self.logs.iter().enumerate() {
                for stored in log.records() {
                    ht.state ^= hash_record(slice, stored);
                }
            }
        }
        if self.meta_trace.is_some() {
            for slice in 0..self.logs.len() {
                let offsets: Vec<u64> = self.logs[slice].records().map(|s| s.offset).collect();
                if !offsets.is_empty() {
                    if let Some(mt) = &mut self.meta_trace {
                        mt.push(PersistEventMeta::Truncate { slice, offsets });
                    }
                }
            }
        }
        for log in &mut self.logs {
            log.clear();
        }
        self.torn_words.clear();
    }

    /// Whether any channel's write queue is at or above the drain watermark.
    pub fn any_channel_draining(&self) -> bool {
        self.channels.iter().any(|c| c.draining)
    }

    /// Total outstanding write-queue occupancy across channels.
    pub fn write_queue_occupancy(&self) -> usize {
        self.channels.iter().map(|c| c.write_q.len()).sum()
    }

    /// Per-kind log-entry size histograms and encoder-choice counts.
    pub fn log_metrics(&self) -> &LogWriteMetrics {
        &self.log_metrics
    }

    /// Bytes of live (un-truncated) log summed across all slices.
    pub fn log_used_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.tail() - l.head()).sum()
    }

    /// Records one cycle of a core stalled on a full write queue.
    pub fn note_wq_stall(&mut self) {
        self.stats.wq_full_stall_cycles += 1;
    }

    /// Advances the controller by one cycle: updates drain state and issues
    /// ready requests to free banks.
    ///
    /// Reads may *pause* an in-progress write on their bank (write pausing:
    /// the iterative program-and-verify loop of PCM/RRAM can be suspended
    /// between iterations); the paused write's completion slips by the read
    /// duration plus a small resume overhead.
    pub fn tick(&mut self, now: Cycle) {
        self.last_tick = now;
        let read_cycles = self
            .freq
            .ns_to_cycles(morlog_sim_core::NanoSeconds::new(self.cfg.read_latency_ns));
        let pause_cycles = self
            .freq
            .ns_to_cycles(morlog_sim_core::NanoSeconds::new(WRITE_PAUSE_NS));
        let fault_active = self.fault_plan.is_active();
        let mut issued_writes: Vec<PendingWrite> = Vec::new();
        for (ci, ch) in self.channels.iter_mut().enumerate() {
            // WQF drain hysteresis.
            if !ch.draining && ch.write_q.len() >= self.high_mark {
                ch.draining = true;
                self.stats.drains += 1;
                let occ = ch.write_q.len() as u32;
                self.tracer.emit(now, || TraceEvent::WqDrainStart {
                    channel: ci as u32,
                    occupancy: occ,
                });
            } else if ch.draining && ch.write_q.len() <= self.low_mark {
                ch.draining = false;
                let occ = ch.write_q.len() as u32;
                self.tracer.emit(now, || TraceEvent::WqDrainEnd {
                    channel: ci as u32,
                    occupancy: occ,
                });
            }
            // Issue loop: reads always have priority — write pausing lets
            // them preempt in-progress writes even mid-drain; writes go out
            // during drains or when the channel has no waiting reads.
            loop {
                let mut issued = false;
                {
                    let ready = ch
                        .read_q
                        .iter()
                        .position(|r| ch.read_busy_until[r.bank] <= now)
                        .and_then(|pos| ch.read_q.remove(pos));
                    if let Some(r) = ready {
                        let done = now + read_cycles;
                        ch.read_busy_until[r.bank] = done;
                        if ch.write_busy_until[r.bank] > now {
                            // Pause the write: it resumes after the read.
                            ch.write_busy_until[r.bank] += read_cycles + pause_cycles;
                        }
                        self.done_reads.insert(r.ticket, done);
                        self.stats.read_wait_cycles += done - r.enqueued;
                        issued = true;
                    }
                }
                if ch.draining || ch.read_q.is_empty() {
                    let ready = ch
                        .write_q
                        .iter()
                        .position(|w| {
                            ch.write_busy_until[w.bank] <= now && ch.read_busy_until[w.bank] <= now
                        })
                        .and_then(|pos| ch.write_q.remove(pos));
                    if let Some(w) = ready {
                        ch.write_busy_until[w.bank] = now + w.service_cycles;
                        if fault_active {
                            issued_writes.push(w);
                        }
                        issued = true;
                    }
                }
                if !issued {
                    break;
                }
            }
        }
        for w in issued_writes {
            self.verify_issued_write(&w);
        }
    }

    /// The write-verify pass run as each write drains to its bank: read the
    /// words back, compare, and re-program on mismatch. Transient program
    /// disturb (a drain-time drift flip) is repaired by one retry; a worn
    /// slot whose cells stick fails every retry and is remapped to a spare,
    /// resetting its endurance counter. Verified writes therefore never
    /// leave damage behind — only *crash-time* faults on in-flight writes
    /// escape to recovery.
    fn verify_issued_write(&mut self, w: &PendingWrite) {
        match &w.payload {
            WritePayload::Untracked => {}
            WritePayload::Data { data } => {
                for i in 0..morlog_sim_core::WORDS_PER_LINE {
                    let site = w.accept_seq * 16 + i as u64;
                    if self
                        .fault_plan
                        .drain_flip_word(site, data.word(i))
                        .is_some()
                    {
                        self.stats.write_verify_failures += 1;
                        self.stats.write_verify_retries += 1;
                    }
                }
            }
            WritePayload::Log {
                slot_key,
                words,
                nwords,
                ..
            } => {
                let wear = {
                    let w = self.wear.entry(*slot_key).or_insert(0);
                    *w += 1;
                    *w
                };
                let stuck = self.fault_plan.slot_is_stuck(wear);
                let mut flipped = false;
                if !stuck {
                    for (i, &word) in words.iter().take(*nwords as usize).enumerate() {
                        let site = w.accept_seq * 16 + i as u64;
                        if self.fault_plan.drain_flip_word(site, word).is_some() {
                            flipped = true;
                            break;
                        }
                    }
                }
                if stuck {
                    self.stats.write_verify_failures += 1;
                    self.stats.write_verify_retries += self.cfg.write_retry_budget as u64;
                    self.stats.stuck_slots_remapped += 1;
                    self.wear.insert(*slot_key, 0);
                } else if flipped {
                    self.stats.write_verify_failures += 1;
                    self.stats.write_verify_retries += 1;
                }
            }
        }
    }

    fn place(&self, line: LineAddr) -> (usize, usize) {
        line_to_channel_bank(line, self.cfg.channels, self.cfg.banks * self.cfg.ranks)
    }

    fn write_service_cycles(&self, cost: &morlog_encoding::dcw::WriteCost) -> Cycle {
        let ns = if cost.is_silent() {
            morlog_sim_core::NanoSeconds::new(SILENT_WRITE_NS)
        } else {
            cost.latency
        };
        self.freq.ns_to_cycles(ns).max(1)
    }

    fn account_write(
        &mut self,
        cost: &morlog_encoding::dcw::WriteCost,
        is_log: bool,
        choices: &[EncodingChoice],
    ) {
        for choice in choices {
            let idx = match choice {
                EncodingChoice::Fpc => 0,
                EncodingChoice::Dldc => 1,
                EncodingChoice::DldcRaw => 2,
            };
            self.log_metrics.encoder_choices[idx] += 1;
        }
        self.stats.nvmm_writes += 1;
        if is_log {
            self.stats.log_writes += 1;
            self.stats.log_bits_programmed += cost.bits_programmed;
            self.stats.log_write_energy_pj += cost.energy.as_f64();
        } else {
            self.stats.data_writes += 1;
        }
        self.stats.cells_programmed += cost.cells_programmed;
        self.stats.bits_programmed += cost.bits_programmed;
        self.stats.write_energy_pj += cost.energy.as_f64();
        if cost.is_silent() {
            self.stats.silent_block_writes += 1;
        }
    }

    /// Builds a controller with the default map for `cfg` and the given
    /// codec (convenience for tests and the simulator).
    pub fn with_default_map(cfg: MemConfig, freq: Frequency, codec: SldeCodec) -> Self {
        let map = MemoryMap::table_iii(cfg.log_region_bytes as u64);
        MemoryController::new(cfg, freq, map, codec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_sim_core::ids::TxKey;
    use morlog_sim_core::{ThreadId, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key() -> TxKey {
        TxKey::new(ThreadId::new(0), TxId::new(0))
    }

    #[test]
    fn dram_reads_complete_quickly() {
        let mut m = mc();
        let t = m.enqueue_read(LineAddr::from_index(1), 0);
        assert!(!m.take_if_done(t, 10));
        assert!(m.take_if_done(t, 45)); // 15 ns at 3 GHz
        assert!(!m.take_if_done(t, 100), "ticket consumed");
    }

    #[test]
    fn nvmm_reads_need_a_tick() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let t = m.enqueue_read(line, 0);
        m.tick(0);
        assert!(!m.take_if_done(t, 74));
        assert!(m.take_if_done(t, 75)); // 25 ns at 3 GHz
        assert_eq!(m.stats().nvmm_reads, 1);
    }

    #[test]
    fn writes_apply_functionally_at_acceptance() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let mut d = LineData::zeroed();
        d.set_word(0, 99);
        assert!(m.try_write_data(line, d, 0));
        assert_eq!(m.read_line(line).word(0), 99, "ADR: durable at WQ accept");
        assert_eq!(m.stats().data_writes, 1);
    }

    #[test]
    fn write_queue_backpressure() {
        let mut m = mc();
        // Fill one channel's write queue without ticking.
        let base = m.map().data_base().line().index();
        let mut accepted = 0;
        let mut d = LineData::zeroed();
        for i in 0.. {
            d.set_word(0, i);
            // Same channel: stride by the channel count.
            let line = LineAddr::from_index(base + i * 4);
            if !m.try_write_data(line, d, 0) {
                break;
            }
            accepted += 1;
            assert!(accepted <= 64, "queue must cap at 64");
        }
        assert_eq!(accepted, 64);
        // Draining for a while frees space.
        for now in 0..100_000 {
            m.tick(now);
        }
        assert!(m.try_write_data(LineAddr::from_index(base), d, 100_000));
        assert!(m.stats().drains >= 1);
    }

    #[test]
    fn log_append_persists_and_costs() {
        let mut m = mc();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        let stored = m.try_append_log(rec, 0).unwrap();
        assert_eq!(stored.offset, 0);
        assert_eq!(m.stats().log_writes, 1);
        assert!(m.stats().log_bits_programmed > 0);
        assert_eq!(m.log_region().records().count(), 1);
    }

    #[test]
    fn log_ring_full_surfaces_error() {
        // A filled slice grows a temporary overflow region (§III-A option 2)
        // instead of erroring; the growth is counted.
        // 64 log-region bytes = two undo+redo slots.
        let cfg = MemConfig {
            log_region_bytes: 64,
            ..Default::default()
        };
        let map = MemoryMap::new(1 << 20, 1 << 21, 64);
        let mut m = MemoryController::new(
            cfg,
            Frequency::ghz(3.0),
            map,
            SldeCodec::new(CellModel::table_iii()),
        );
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        for _ in 0..8 {
            m.try_append_log(rec, 0).unwrap();
        }
        assert!(
            m.stats().log_overflow_growths >= 1,
            "slice grew under pressure"
        );
        assert_eq!(m.log_region().records().count(), 8);
        // Truncation still works over the grown region.
        let head_target = m.log_region().records().nth(2).unwrap().offset;
        m.truncate_log(head_target);
        assert_eq!(m.log_region().records().count(), 6);
    }

    #[test]
    fn drain_blocks_reads_until_low_mark() {
        let mut m = mc();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        // Push the queue over the watermark (52 of 64).
        for i in 0..55 {
            d.set_word(0, i);
            assert!(m.try_write_data(LineAddr::from_index(base + i * 4), d, 0));
        }
        m.tick(0);
        assert!(m.any_channel_draining());
        let t = m.enqueue_read(LineAddr::from_index(base), 1);
        assert_eq!(m.stats().reads_blocked_by_drain, 1);
        // The read eventually completes once the drain ends.
        let mut done_at = None;
        for now in 1..2_000_000 {
            m.tick(now);
            if m.take_if_done(t, now) {
                done_at = Some(now);
                break;
            }
        }
        let done_at = done_at.expect("read must complete");
        assert!(
            done_at > 75,
            "read was delayed behind the drain, done at {done_at}"
        );
    }

    #[test]
    fn silent_data_write_counts_and_costs_little() {
        let mut m = mc();
        let line = m.map().data_base().line();
        let mut d = LineData::zeroed();
        d.set_word(3, 0xABCD);
        assert!(m.try_write_data(line, d, 0));
        assert!(m.try_write_data(line, d, 0)); // identical: silent
        assert_eq!(m.stats().silent_block_writes, 1);
        assert_eq!(m.stats().nvmm_writes, 2);
    }

    /// An always-active plan that injects nothing (huge endurance limit):
    /// turns the fault-mode bookkeeping on without damaging anything.
    fn inert_active_plan() -> FaultPlan {
        FaultPlan::worn_slots(0, u32::MAX)
    }

    #[test]
    fn fault_mode_gates_data_writes_behind_inflight_undo() {
        let mut m = mc();
        m.set_fault_plan(inert_active_plan());
        let line = LineAddr::from_index(m.map().data_base().line().index() + 8);
        let rec = LogRecord::undo_redo(key(), line.base(), 1, 2, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        let mut d = LineData::zeroed();
        d.set_word(0, 2);
        assert!(
            !m.try_write_data(line, d, 0),
            "home-line write must wait for the in-flight undo slot"
        );
        // Another line is unaffected.
        assert!(m.try_write_data(LineAddr::from_index(line.index() + 16), d, 0));
        // Once the undo slot drains, the write goes through.
        for now in 0..200_000 {
            m.tick(now);
        }
        assert!(!m.tx_has_undrained_records(key()));
        assert!(m.try_write_data(line, d, 200_000));
    }

    #[test]
    fn crash_persist_tears_only_data_words_of_inflight_slots() {
        let mut m = mc();
        let mut plan = FaultPlan::none();
        plan.torn_drain_per_mille = 1000; // every in-flight slot tears
        plan.fault_budget = Some(1);
        m.set_fault_plan(plan);
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAA, 0xBB, 0xFF);
        let stored = m.try_append_log(rec, 0).unwrap();
        let commit = m.try_append_log(LogRecord::commit(key(), None), 0).unwrap();
        m.crash_persist();
        assert_eq!(m.stats().faults_torn_drains, 1);
        let scan = m.scan_log();
        let torn = scan
            .iter()
            .find(|s| s.stored.offset == stored.offset)
            .unwrap();
        assert!(torn.words_persisted < 2, "a tear keeps a strict prefix");
        assert!(
            !torn.stored.record.crc_ok(torn.stored.torn),
            "truncated words break the CRC"
        );
        let c = scan
            .iter()
            .find(|s| s.stored.offset == commit.offset)
            .unwrap();
        assert_eq!(
            c.words_persisted, 0,
            "commit slots have no data words to tear"
        );
        assert!(
            c.stored.record.crc_ok(c.stored.torn),
            "meta-only slots land atomically"
        );
    }

    #[test]
    fn crash_persist_flips_break_the_crc() {
        let mut m = mc();
        let mut plan = FaultPlan::none();
        plan.crash_flip_per_mille = 1000;
        plan.fault_budget = Some(1);
        m.set_fault_plan(plan);
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAA, 0xBB, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        m.crash_persist();
        assert_eq!(m.stats().faults_bit_flips, 1);
        let scan = m.scan_log();
        assert_eq!(scan[0].words_persisted, 2, "a flip is not a tear");
        assert!(!scan[0].stored.record.crc_ok(scan[0].stored.torn));
    }

    #[test]
    fn crash_persist_without_plan_changes_nothing() {
        let mut m = mc();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAA, 0xBB, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        m.crash_persist();
        assert_eq!(m.stats().faults_torn_drains, 0);
        let scan = m.scan_log();
        assert_eq!(scan[0].words_persisted, 2);
        assert!(scan[0].stored.record.crc_ok(scan[0].stored.torn));
        assert_eq!(
            m.write_queue_occupancy(),
            0,
            "queues are emptied by the ADR flush"
        );
    }

    #[test]
    fn drain_flip_is_caught_and_repaired_by_write_verify() {
        let mut m = mc();
        let mut plan = FaultPlan::none();
        plan.drain_flip_per_mille = 1000;
        plan.fault_budget = Some(1);
        m.set_fault_plan(plan);
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAA, 0xBB, 0xFF);
        let stored = m.try_append_log(rec, 0).unwrap();
        for now in 0..200_000 {
            m.tick(now);
        }
        assert_eq!(m.stats().write_verify_failures, 1);
        assert_eq!(m.stats().write_verify_retries, 1);
        assert_eq!(m.stats().stuck_slots_remapped, 0);
        // The repaired slot is undamaged.
        assert!(stored.record.crc_ok(stored.torn));
        assert_eq!(m.scan_log()[0].words_persisted, 2);
    }

    #[test]
    fn worn_slot_burns_the_retry_budget_and_remaps() {
        let mut m = mc();
        m.set_fault_plan(FaultPlan::worn_slots(0, 1)); // every program sticks
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 0xAA, 0xBB, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        for now in 0..200_000 {
            m.tick(now);
        }
        assert_eq!(m.stats().write_verify_failures, 1);
        assert_eq!(
            m.stats().write_verify_retries,
            MemConfig::default().write_retry_budget as u64
        );
        assert_eq!(m.stats().stuck_slots_remapped, 1);
    }

    #[test]
    fn crash_point_freezes_persist_domain() {
        let mut m = mc();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        d.set_word(0, 7);
        m.arm_crash_at(2);
        assert!(!m.crash_point_reached());
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        assert_eq!(m.persist_events(), 2);
        assert!(m.crash_point_reached());
        // Frozen: both accept paths refuse via ordinary backpressure, and
        // neither the array nor the log changes functionally.
        d.set_word(0, 99);
        assert!(!m.try_write_data(LineAddr::from_index(base), d, 1));
        assert!(matches!(
            m.try_append_log(rec, 1),
            Err(LogAppendError::WqFull)
        ));
        assert_eq!(m.persist_events(), 2);
        assert_eq!(m.read_line(LineAddr::from_index(base)).word(0), 7);
        assert_eq!(m.log_region().records().count(), 1);
        // DRAM (volatile) writes stay unaffected and count no events.
        assert!(m.try_write_data(LineAddr::from_index(1), d, 1));
        assert_eq!(m.persist_events(), 2);
    }

    #[test]
    fn persist_hash_detects_real_changes_only() {
        let mut m = mc();
        m.enable_persist_hash();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        d.set_word(0, 7);
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        // Rewriting identical data is a persist event with no state change:
        // the fold must repeat, flagging the point as prunable.
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        d.set_word(1, 8);
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        let s = m.persist_hash_samples().to_vec();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], s[1], "identical rewrite leaves hash unchanged");
        assert_ne!(s[1], s[2], "real change moves the hash");
    }

    #[test]
    fn persist_hash_sees_log_truncation() {
        let mut m = mc();
        m.enable_persist_hash();
        let rec = LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF);
        m.try_append_log(rec, 0).unwrap();
        let after_append = *m.persist_hash_samples().last().unwrap();
        let cut = m.log_region().tail();
        m.truncate_log(cut);
        // Append an identical-content record at a new offset: distinct slot,
        // so the fold must differ from the pre-truncation state even though
        // the record payload repeats.
        m.try_append_log(rec, 0).unwrap();
        let after_requeue = *m.persist_hash_samples().last().unwrap();
        assert_ne!(after_append, after_requeue);
        // Clearing the log after the crash XORs everything back out.
        m.clear_log();
        assert_eq!(m.log_region().records().count(), 0);
    }

    /// Regression guard for the checker's equivalence pruning: two
    /// consecutive persist events that would sample identically (a silent
    /// data rewrite) must NOT sample identically when a log truncation ran
    /// between them — the crash states straddle a head-pointer move, so
    /// pruning the later point would skip a genuinely new recovery input.
    #[test]
    fn truncation_between_identical_samples_blocks_pruning() {
        let mut m = mc();
        m.enable_persist_hash();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        d.set_word(0, 7);
        m.try_append_log(LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF), 0)
            .unwrap();
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        // Control: a silent rewrite with no intervening truncation repeats
        // the sample (this is the pair pruning exists for).
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        let s = m.persist_hash_samples().to_vec();
        assert_eq!(s[1], s[2], "silent rewrite repeats the sample");
        // Now truncate the log, then rewrite silently again: the samples
        // bracketing the truncation must differ even though the data-line
        // event itself changed nothing.
        m.truncate_log(m.log_region().tail());
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        let s = m.persist_hash_samples().to_vec();
        assert_ne!(
            s[2], s[3],
            "a truncation between identical samples must block pruning"
        );
    }

    #[test]
    fn persist_meta_records_kinds_changes_and_truncations() {
        let mut m = mc();
        m.enable_persist_meta();
        let base = m.map().data_base().line().index();
        let mut d = LineData::zeroed();
        d.set_word(0, 7);
        d.set_word(3, 9);
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        assert!(m.try_write_data(LineAddr::from_index(base), d, 0));
        let ur = m
            .try_append_log(LogRecord::undo_redo(key(), Addr::new(0x40), 1, 2, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(key(), Some(1)), 0)
            .unwrap();
        m.truncate_log(m.log_region().tail());
        let meta = m.persist_event_meta().to_vec();
        assert_eq!(meta.len(), 5);
        assert!(
            matches!(meta[0], PersistEventMeta::Data { changed, .. } if changed == 0b0000_1001),
            "changed-word mask tracks the diff: {:?}",
            meta[0]
        );
        assert!(
            matches!(meta[1], PersistEventMeta::Data { changed: 0, .. }),
            "silent rewrite records an empty mask: {:?}",
            meta[1]
        );
        assert_eq!(meta[2].kind(), Some(PersistEventKind::UndoRedo));
        assert_eq!(meta[3].kind(), Some(PersistEventKind::Commit));
        match &meta[4] {
            PersistEventMeta::Truncate { slice: 0, offsets } => {
                assert!(offsets.contains(&ur.offset));
                assert_eq!(offsets.len(), 2);
            }
            other => panic!("expected truncation marker, got {other:?}"),
        }
        // DRAM writes are volatile: no meta entry.
        assert!(m.try_write_data(LineAddr::from_index(1), d, 1));
        assert_eq!(m.persist_event_meta().len(), 5);
    }
}
