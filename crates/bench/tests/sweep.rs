//! Sweep-engine gates: parallel/serial determinism, trace-cache reuse,
//! strict env parsing, clamp labelling, and the results JSON schema.

use morlog_bench::results::{validate_document, ResultSink, SCHEMA_VERSION};
use morlog_bench::{json, parse_jobs, parse_txs, print_normalized_rows, RunSpec, SweepRunner};
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{WorkloadConfig, WorkloadKind};

/// Seeds are unique per test so the process-global trace cache (shared by
/// concurrently running tests) keys every assertion to its own entries.
fn quick_spec(design: DesignKind, kind: WorkloadKind, seed: u64) -> RunSpec {
    RunSpec::new(design, kind, 120).seed(seed)
}

#[test]
fn parallel_sweep_matches_serial() {
    let specs: Vec<RunSpec> = DesignKind::ALL
        .iter()
        .flat_map(|&design| {
            [WorkloadKind::Hash, WorkloadKind::Sps]
                .into_iter()
                .map(move |kind| quick_spec(design, kind, 90_001))
        })
        .collect();
    let serial = SweepRunner::with_jobs(1).run_specs(&specs);
    let parallel = SweepRunner::with_jobs(4).run_specs(&specs);
    assert_eq!(serial.len(), specs.len());
    assert_eq!(parallel.len(), specs.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report.design, p.report.design);
        assert_eq!(s.report.workload, p.report.workload);
        assert_eq!(s.report.threads, p.report.threads);
        assert_eq!(
            s.report.stats, p.report.stats,
            "parallel run of {} diverged from serial",
            s.report.workload
        );
    }
}

#[test]
fn parallel_sweep_matches_serial_with_tracing_on() {
    // The observability layer must not perturb simulation or sweep
    // determinism: with the trace sink enabled per-config, a parallel
    // traced sweep is identical to a serial traced sweep, and both carry
    // the same stats as the untraced reference.
    let traced_specs: Vec<RunSpec> = DesignKind::ALL
        .iter()
        .map(|&design| {
            quick_spec(design, WorkloadKind::Hash, 90_005).tweak(|cfg| cfg.trace.enabled = true)
        })
        .collect();
    let plain_specs: Vec<RunSpec> = DesignKind::ALL
        .iter()
        .map(|&design| quick_spec(design, WorkloadKind::Hash, 90_005))
        .collect();
    let serial = SweepRunner::with_jobs(1).run_specs(&traced_specs);
    let parallel = SweepRunner::with_jobs(4).run_specs(&traced_specs);
    let plain = SweepRunner::with_jobs(1).run_specs(&plain_specs);
    for ((s, p), u) in serial.iter().zip(&parallel).zip(&plain) {
        assert_eq!(
            s.report.stats,
            p.report.stats,
            "traced parallel run of {} diverged from traced serial",
            s.report.design.label()
        );
        assert_eq!(
            s.report.stats,
            u.report.stats,
            "tracing perturbed the simulation of {}",
            s.report.design.label()
        );
    }
}

#[test]
fn map_preserves_input_order() {
    let items: Vec<u64> = (0..97).collect();
    let doubled = SweepRunner::with_jobs(8).map(&items, |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
}

#[test]
fn run_designs_returns_paper_order() {
    let runs = SweepRunner::with_jobs(3).run_designs(&quick_spec(
        DesignKind::FwbCrade,
        WorkloadKind::Queue,
        90_002,
    ));
    let designs: Vec<DesignKind> = runs.iter().map(|t| t.report.design).collect();
    assert_eq!(designs, DesignKind::ALL.to_vec());
}

#[test]
fn all_designs_share_one_generated_trace() {
    // Regression for the run_all_designs bug that regenerated the identical
    // trace once per design: across all six designs the cache must report
    // exactly one generation for the shared key.
    let seed = 90_003;
    let spec = quick_spec(DesignKind::FwbCrade, WorkloadKind::Hash, seed);
    let runs = SweepRunner::with_jobs(2).run_designs(&spec);
    assert_eq!(runs.len(), DesignKind::ALL.len());
    let cfg = SystemConfig::for_design(DesignKind::FwbCrade);
    let wl = WorkloadConfig {
        threads: spec.effective_threads(),
        total_transactions: spec.transactions,
        dataset: spec.dataset,
        seed,
        data_base: System::data_base(&cfg),
    };
    let cache = morlog_workloads::cache::global();
    assert_eq!(
        cache.generations_for(WorkloadKind::Hash, &wl),
        1,
        "six designs must share one generated trace"
    );
}

#[test]
fn malformed_env_overrides_are_rejected() {
    assert!(parse_txs("100k").is_err());
    assert!(parse_txs("1e5").is_err());
    assert!(parse_txs("").is_err());
    assert!(parse_txs("0").is_err());
    assert!(parse_txs("-5").is_err());
    assert_eq!(parse_txs(" 500 "), Ok(500));
    assert!(parse_jobs("many").is_err());
    assert!(parse_jobs("0").is_err());
    assert_eq!(parse_jobs("4"), Ok(4));

    use morlog_sim_core::metrics::parse_sample_cycles;
    assert_eq!(parse_sample_cycles("0"), Ok(0), "0 disables the sampler");
    assert_eq!(parse_sample_cycles(" 4096 "), Ok(4096));
    assert!(parse_sample_cycles("").is_err());
    assert!(parse_sample_cycles("8k").is_err());
    assert!(parse_sample_cycles("-1").is_err());

    use morlog_sim_core::trace::parse_trace_env;
    assert_eq!(parse_trace_env(""), Ok(None));
    assert_eq!(parse_trace_env("0"), Ok(None));
    assert_eq!(parse_trace_env("false"), Ok(None));
    assert!(matches!(parse_trace_env("1"), Ok(Some(_))));
    assert!(matches!(parse_trace_env("true"), Ok(Some(_))));
    assert_eq!(parse_trace_env("4096"), Ok(Some(4096)));
    assert!(parse_trace_env("yes").is_err());
    assert!(parse_trace_env("64k").is_err());
    assert!(parse_trace_env("-3").is_err());
}

/// Satellite gate for the telemetry layer: the merged (fold-reduced)
/// histograms and series of a jobs=1 sweep are identical to a jobs=4
/// sweep of the same specs — not just value-equal, but byte-identical
/// once serialized through the schema-v3 `stats_json` encoder. This is
/// the property that makes per-run histograms safe to aggregate across
/// a parallel sweep.
#[test]
fn merged_metrics_identical_across_jobs() {
    use morlog_bench::results::stats_json;
    use morlog_sim_core::SimStats;

    let specs: Vec<RunSpec> = DesignKind::ALL
        .iter()
        .flat_map(|&design| {
            [WorkloadKind::Hash, WorkloadKind::Queue]
                .into_iter()
                .map(move |kind| quick_spec(design, kind, 90_009))
        })
        .collect();
    let serial = SweepRunner::with_jobs(1).run_specs(&specs);
    let parallel = SweepRunner::with_jobs(4).run_specs(&specs);

    let fold = |runs: &[morlog_bench::TimedRun]| {
        let mut merged = SimStats::default();
        for r in runs {
            merged.merge(&r.report.stats);
        }
        merged
    };
    let merged_serial = fold(&serial);
    let merged_parallel = fold(&parallel);
    assert_eq!(
        merged_serial.metrics, merged_parallel.metrics,
        "merged histograms/series must not depend on sweep parallelism"
    );
    assert_eq!(
        stats_json(&merged_serial).to_json(),
        stats_json(&merged_parallel).to_json(),
        "serialized merged stats must be byte-identical across jobs"
    );
    // The merge actually carried latency data, not two empty sets.
    assert!(merged_serial.metrics.commit.begin_to_complete.count() > 0);
}

#[test]
fn empty_report_slice_prints_diagnostic_instead_of_panicking() {
    print_normalized_rows("empty", &[]);
}

#[test]
fn thread_requests_beyond_cores_are_clamped_and_labelled() {
    let spec = quick_spec(DesignKind::FwbCrade, WorkloadKind::Sps, 90_004).threads(32);
    assert_eq!(spec.requested_threads(), 32);
    assert_eq!(spec.effective_threads(), 8, "default config has 8 cores");
    let report = morlog_bench::run(&spec);
    assert_eq!(report.threads, 8, "report must carry the effective count");

    let widened = quick_spec(DesignKind::FwbCrade, WorkloadKind::Sps, 90_005)
        .threads(16)
        .tweak(|cfg| cfg.cores.cores = 16);
    assert_eq!(widened.effective_threads(), 16);
}

#[test]
fn results_document_round_trips_and_validates() {
    let runs = SweepRunner::with_jobs(2).run_specs(&[
        quick_spec(DesignKind::FwbCrade, WorkloadKind::Queue, 90_006),
        quick_spec(DesignKind::MorLogSlde, WorkloadKind::Queue, 90_006),
    ]);
    let mut sink = ResultSink::new("schema_round_trip", 2);
    sink.push_runs(&runs);
    let doc = sink.document();
    validate_document(&doc).expect("document must satisfy the schema");

    for pretty in [false, true] {
        let text = if pretty {
            doc.to_json_pretty()
        } else {
            doc.to_json()
        };
        let parsed = json::parse(&text).expect("serialized document must parse");
        assert_eq!(parsed, doc, "round trip must be lossless (pretty={pretty})");
        validate_document(&parsed).expect("parsed document must satisfy the schema");
    }

    assert_eq!(
        doc.get("schema_version").and_then(json::Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    let records = doc.get("records").and_then(json::Json::as_arr).unwrap();
    assert_eq!(records.len(), 2);
    let rec = &records[0];
    assert_eq!(
        rec.get("design").and_then(json::Json::as_str),
        Some("FWB-CRADE")
    );
    assert_eq!(
        rec.get("stats")
            .and_then(|s| s.get("transactions_committed"))
            .and_then(json::Json::as_u64),
        Some(runs[0].report.stats.transactions_committed)
    );
}

#[test]
fn validation_rejects_broken_documents() {
    let runs = SweepRunner::with_jobs(1).run_specs(&[quick_spec(
        DesignKind::FwbCrade,
        WorkloadKind::Sps,
        90_007,
    )]);
    let mut sink = ResultSink::new("broken", 1);
    sink.push_runs(&runs);
    let doc = sink.document();

    let strip = |doc: &json::Json, field: &str| match doc {
        json::Json::Obj(pairs) => {
            json::Json::Obj(pairs.iter().filter(|(k, _)| k != field).cloned().collect())
        }
        _ => unreachable!(),
    };
    assert!(validate_document(&strip(&doc, "records")).is_err());
    assert!(validate_document(&strip(&doc, "schema_version")).is_err());

    // A run record missing its stats must be named in the error.
    if let json::Json::Obj(mut pairs) = doc.clone() {
        if let Some((_, json::Json::Arr(records))) = pairs.iter_mut().find(|(k, _)| k == "records")
        {
            records[0] = strip(&records[0], "stats");
        }
        let err = validate_document(&json::Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("stats"), "error {err:?} should name stats");
    }
}

#[test]
fn sink_finish_writes_validated_file() {
    let dir = std::env::temp_dir().join(format!("morlog-results-{}", std::process::id()));
    // The env override is read once inside finish(); no other test in this
    // binary touches MORLOG_RESULTS_DIR.
    std::env::set_var("MORLOG_RESULTS_DIR", &dir);
    let runs = SweepRunner::with_jobs(1).run_specs(&[quick_spec(
        DesignKind::MorLogDp,
        WorkloadKind::Hash,
        90_008,
    )]);
    let mut sink = ResultSink::new("sink_smoke", 1);
    sink.push_runs(&runs);
    sink.finish();
    std::env::remove_var("MORLOG_RESULTS_DIR");
    let text = std::fs::read_to_string(dir.join("sink_smoke.json")).expect("file written");
    let doc = json::parse(&text).expect("written file must parse");
    validate_document(&doc).expect("written file must satisfy the schema");
    assert_eq!(
        doc.get("bench").and_then(json::Json::as_str),
        Some("sink_smoke")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
