//! Counterexample sink shared by the crash-checking gates.
//!
//! `crash_explore` and `crash_fuzz` both produce minimized failing
//! replays as JSONL traces. This sink centralizes how they land on disk:
//!
//! - **Directory**: `MORLOG_CX_DIR` (default `counterexamples/`), one
//!   `<name>.jsonl` file per counterexample, consumable by `trace_lint`
//!   and `trace2perfetto`.
//! - **Deduplication**: a counterexample is identified by the
//!   persist-domain hash of its crash state (the reference run's fold
//!   sample at the crash point). Campaigns frequently rediscover the same
//!   crash state through different fault variants or sampling paths;
//!   only the first representative of each persist-domain signature is
//!   written.
//! - **Cap**: `MORLOG_CX_MAX` bounds the files written per process (a
//!   runaway mutant on a big campaign would otherwise flood the artifact
//!   store). A malformed value aborts with exit code 2, matching the
//!   `MORLOG_CHECK_SHARDS` convention; unset means unbounded.

use std::collections::HashSet;

/// The persist-domain signature of a crash point: the reference run's
/// hash sample right after the point's last event (`0` for point 0 — the
/// empty persist domain).
pub fn persist_signature(samples: &[u64], point: u64) -> u64 {
    if point == 0 {
        0
    } else {
        samples.get(point as usize - 1).copied().unwrap_or(0)
    }
}

/// Parses a `MORLOG_CX_MAX` value: a cap on counterexample files written
/// per process.
///
/// # Errors
///
/// Returns a message when the value is not a plain positive integer.
pub fn parse_cx_max(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("MORLOG_CX_MAX={raw:?} must be at least 1")),
        Err(_) => Err(format!(
            "MORLOG_CX_MAX={raw:?} is not a plain positive integer \
             (suffixes like \"10k\" are not supported)"
        )),
    }
}

/// The counterexample cap from `MORLOG_CX_MAX`. An unset variable means
/// unbounded; a malformed one aborts with exit code 2, matching the
/// `MORLOG_CHECK_SHARDS` convention.
pub fn cx_max_from_env() -> Option<u64> {
    match std::env::var("MORLOG_CX_MAX") {
        Err(_) => None,
        Ok(raw) => Some(parse_cx_max(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
    }
}

/// Deduplicating, capped writer for counterexample JSONL traces.
pub struct CxSink {
    dir: String,
    cap: Option<u64>,
    written: u64,
    duplicates: u64,
    capped: u64,
    seen: HashSet<u64>,
}

impl CxSink {
    /// A sink on an explicit directory and cap (the unit-testable core).
    pub fn new(dir: &str, cap: Option<u64>) -> CxSink {
        CxSink {
            dir: dir.to_string(),
            cap,
            written: 0,
            duplicates: 0,
            capped: 0,
            seen: HashSet::new(),
        }
    }

    /// A sink configured from `MORLOG_CX_DIR` / `MORLOG_CX_MAX`.
    pub fn from_env() -> CxSink {
        let dir = std::env::var("MORLOG_CX_DIR").unwrap_or_else(|_| "counterexamples".to_string());
        CxSink::new(&dir, cx_max_from_env())
    }

    /// Whether `signature` would be admitted (new and under the cap),
    /// without recording anything.
    pub fn admits(&self, signature: u64) -> bool {
        !self.seen.contains(&signature) && self.cap.is_none_or(|c| self.written < c)
    }

    /// Writes `<name>.jsonl` unless the signature is a duplicate or the
    /// cap is exhausted; returns whether the file was written. Filesystem
    /// errors are reported as warnings (the gate's verdict must not
    /// depend on artifact storage).
    pub fn write(&mut self, name: &str, signature: u64, detail: &str, trace_jsonl: &str) -> bool {
        if !self.seen.insert(signature) {
            self.duplicates += 1;
            eprintln!("counterexample: {name} duplicates signature {signature:#018x}, skipped");
            return false;
        }
        if let Some(cap) = self.cap {
            if self.written >= cap {
                self.capped += 1;
                eprintln!("counterexample: {name} dropped (MORLOG_CX_MAX={cap} reached)");
                return false;
            }
        }
        let path = std::path::Path::new(&self.dir).join(format!("{name}.jsonl"));
        if let Err(e) =
            std::fs::create_dir_all(&self.dir).and_then(|()| std::fs::write(&path, trace_jsonl))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("counterexample: {} ({detail})", path.display());
        }
        self.written += 1;
        true
    }

    /// Files written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Writes skipped as persist-domain duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Writes dropped by the `MORLOG_CX_MAX` cap.
    pub fn capped(&self) -> u64 {
        self.capped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cx_max_parsing_is_strict() {
        assert_eq!(parse_cx_max("16"), Ok(16));
        assert_eq!(parse_cx_max(" 1 "), Ok(1));
        assert!(parse_cx_max("0").is_err());
        assert!(parse_cx_max("10k").is_err());
        assert!(parse_cx_max("-2").is_err());
        assert!(parse_cx_max("").is_err());
    }

    #[test]
    fn signature_indexes_hash_samples() {
        let samples = [11, 22, 33];
        assert_eq!(persist_signature(&samples, 0), 0);
        assert_eq!(persist_signature(&samples, 1), 11);
        assert_eq!(persist_signature(&samples, 3), 33);
        assert_eq!(persist_signature(&samples, 9), 0, "out of range is benign");
    }

    #[test]
    fn sink_dedupes_and_caps() {
        let dir = std::env::temp_dir().join(format!("morlog-cx-test-{}", std::process::id()));
        let dir_s = dir.to_string_lossy().to_string();
        let mut sink = CxSink::new(&dir_s, Some(2));
        assert!(sink.write("a", 1, "p1", "{}\n"));
        assert!(!sink.write("a-dup", 1, "p1", "{}\n"), "same signature");
        assert!(sink.write("b", 2, "p2", "{}\n"));
        assert!(!sink.write("c", 3, "p3", "{}\n"), "cap reached");
        assert_eq!(
            (sink.written(), sink.duplicates(), sink.capped()),
            (2, 1, 1)
        );
        assert!(dir.join("a.jsonl").exists());
        assert!(dir.join("b.jsonl").exists());
        assert!(!dir.join("c.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
