//! Machine-readable result records.
//!
//! Every bench binary, alongside its printed table, writes a JSON document
//! under `results/` (override the directory with `MORLOG_RESULTS_DIR`):
//!
//! ```json
//! {
//!   "bench": "fig14_macro_throughput",
//!   "schema_version": 3,
//!   "git": "65c28e8",
//!   "jobs": 8,
//!   "wall_ms": 1234.5,
//!   "records": [ { "kind": "run", ... }, ... ]
//! }
//! ```
//!
//! Simulation runs use the `"run"` record kind (spec + full `SimStats`
//! counters + wall-clock); binaries that only profile traces or compute
//! overhead arithmetic emit their own record kinds through
//! [`ResultSink::push`]. The envelope and every `"run"` record are
//! validated by [`validate_document`], which the schema round-trip test
//! and CI exercise.
//!
//! Schema history: version 2 added the `stats.attr` cycle-attribution
//! object (one integer account per [`StallKind`] bucket; the accounts sum
//! to `cycles * threads`). Version 3 added `trace_dropped` on `"run"`
//! records plus the telemetry layer under `stats.hist.*` (commit-latency
//! and log-entry-size histograms as `{count, sum, min, max, p50, p90,
//! p99, buckets}` with sparse `[bucket, count]` pairs, and SLDE
//! encoder-choice counts) and `stats.series.*` (cycle-sampled occupancy
//! series as parallel `cycles`/`values` arrays plus the sample
//! `period`). The validator checks that every histogram's bucket counts
//! sum to its `count`, that quantiles are ordered `p50 <= p90 <= p99 <=
//! max`, and that every per-run series is cycle-monotone with equal
//! array lengths. Version 4 added the `"crash_check"` record kind
//! emitted by `crash_explore`: one record per checked design/mutation
//! pair carrying the crash-point model checker's counters (`events`,
//! `points_total`, `pruned`, `capped`, `explored`, `verified`,
//! `failures`) and the gate verdict (`passed`). The validator checks
//! the counter arithmetic: `points_total = events + 1`,
//! `explored + pruned + capped >= points_total` (the torn-drain variant
//! can explore each point twice), and `verified + failures = explored`.
//! Version 5 added the two record kinds emitted by `crash_fuzz`:
//! `"crash_fuzz"` carries one coverage-guided random campaign's counters
//! (`events`, `sampled`, `novel`, `pruned`, `executed`, `verified`,
//! `failures`, `coverage`) and the gate verdict (`passed`); the
//! validator checks `executed + pruned = sampled` and
//! `verified + failures = executed`. `"crash_diff"` carries one
//! differential cross-design run (`design_a`, `design_b`, `checked`,
//! `divergences`, `passed`, and the culprit label when diverging); the
//! validator checks `divergences <= checked`.
//!
//! [`StallKind`]: morlog_sim_core::stats::StallKind

use std::sync::OnceLock;
use std::time::Instant;

use morlog_sim_core::metrics::{
    Histogram, MetricsSet, SeriesSet, COMMIT_LATENCY_LABELS, ENCODER_CHOICE_LABELS, LOG_KIND_LABELS,
};
use morlog_sim_core::SimStats;

use crate::json::Json;
use crate::TimedRun;

/// Version stamp of the `results/*.json` envelope and record layout.
pub const SCHEMA_VERSION: u64 = 5;

/// Collects result records for one bench binary and writes
/// `results/<bench>.json` on [`ResultSink::finish`].
pub struct ResultSink {
    bench: String,
    jobs: usize,
    records: Vec<Json>,
    started: Instant,
}

impl ResultSink {
    /// A sink for the named bench binary; `jobs` is the sweep parallelism
    /// recorded in the envelope.
    pub fn new(bench: &str, jobs: usize) -> Self {
        ResultSink {
            bench: bench.to_string(),
            jobs,
            records: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Appends an arbitrary record. It must be an object with a `"kind"`
    /// string field (enforced by [`validate_document`]).
    pub fn push(&mut self, record: Json) {
        self.records.push(record);
    }

    /// Appends one `"run"` record for a timed simulation run.
    pub fn push_run(&mut self, run: &TimedRun) {
        self.records.push(run_record(run));
    }

    /// Appends `"run"` records for a whole sweep.
    pub fn push_runs<'a>(&mut self, runs: impl IntoIterator<Item = &'a TimedRun>) {
        for run in runs {
            self.push_run(run);
        }
    }

    /// Assembles the envelope document (also used by the schema tests).
    pub fn document(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::Str(self.bench.clone())),
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("git", Json::Str(git_describe())),
            ("jobs", Json::UInt(self.jobs as u64)),
            (
                "wall_ms",
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("records", Json::Arr(self.records.clone())),
        ])
    }

    /// Writes `results/<bench>.json` (directory from `MORLOG_RESULTS_DIR`,
    /// default `results/`, created if missing). Reports the path on stderr
    /// so table output on stdout stays byte-identical across runs.
    pub fn finish(self) {
        let dir = std::env::var("MORLOG_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
        let path = std::path::Path::new(&dir).join(format!("{}.json", self.bench));
        let doc = self.document();
        debug_assert_eq!(validate_document(&doc), Ok(()));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, doc.to_json_pretty() + "\n"))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("results: wrote {}", path.display());
        }
    }
}

/// Builds the `"run"` record for one timed simulation run.
pub fn run_record(run: &TimedRun) -> Json {
    let spec = &run.spec;
    Json::obj(vec![
        ("kind", Json::Str("run".into())),
        ("design", Json::Str(spec.design.label().into())),
        ("workload", Json::Str(run.report.workload.clone())),
        ("workload_kind", Json::Str(spec.kind.label().into())),
        ("dataset", Json::Str(spec.dataset.label().into())),
        (
            "threads_requested",
            Json::UInt(spec.requested_threads() as u64),
        ),
        ("threads", Json::UInt(run.report.threads as u64)),
        ("transactions", Json::UInt(spec.transactions as u64)),
        ("expansion", Json::Bool(spec.expansion)),
        ("secure", Json::Str(spec.secure.label().into())),
        ("seed", Json::UInt(spec.seed)),
        ("tweaked", Json::Bool(spec.tweak.is_some())),
        ("throughput_tps", Json::Num(run.report.throughput())),
        ("wall_ms", Json::Num(run.wall.as_secs_f64() * 1e3)),
        ("trace_dropped", Json::UInt(run.report.trace_dropped)),
        ("stats", stats_json(&run.report.stats)),
    ])
}

/// Serializes one histogram: summary fields plus the sparse non-empty
/// buckets as `[bucket_index, count]` pairs. The exact 128-bit sum is
/// clamped to `u64::MAX` on overflow (unreachable for cycle counts).
pub fn hist_json(h: &Histogram) -> Json {
    let buckets = h
        .nonzero_buckets()
        .map(|(i, c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
        .collect();
    Json::obj(vec![
        ("count", Json::UInt(h.count())),
        (
            "sum",
            Json::UInt(u64::try_from(h.sum()).unwrap_or(u64::MAX)),
        ),
        ("min", Json::UInt(h.min())),
        ("max", Json::UInt(h.max())),
        ("p50", Json::UInt(h.p50())),
        ("p90", Json::UInt(h.p90())),
        ("p99", Json::UInt(h.p99())),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// Serializes the `stats.hist` object: commit-latency histograms, per
/// log-record-kind entry-size histograms, and encoder-choice counts.
pub fn metrics_hist_json(m: &MetricsSet) -> Json {
    let commit = m
        .commit
        .named()
        .into_iter()
        .map(|(name, h)| (name, hist_json(h)))
        .collect();
    let entry_bits = LOG_KIND_LABELS
        .iter()
        .zip(m.log_writes.entry_bits.iter())
        .map(|(&name, h)| (name, hist_json(h)))
        .collect();
    let choices = ENCODER_CHOICE_LABELS
        .iter()
        .zip(m.log_writes.encoder_choices.iter())
        .map(|(&name, &n)| (name, Json::UInt(n)))
        .collect();
    Json::obj(vec![
        ("commit", Json::obj(commit)),
        ("log_entry_bits", Json::obj(entry_bits)),
        ("encoder_choices", Json::obj(choices)),
    ])
}

/// Serializes the `stats.series` object: the sample period plus one
/// `{cycles, values}` pair of parallel arrays per sampled series.
pub fn series_json(s: &SeriesSet) -> Json {
    let mut fields = vec![("period", Json::UInt(s.period))];
    for (name, series) in s.named() {
        fields.push((
            name,
            Json::obj(vec![
                (
                    "cycles",
                    Json::Arr(series.cycles.iter().map(|&c| Json::UInt(c)).collect()),
                ),
                (
                    "values",
                    Json::Arr(series.values.iter().map(|&v| Json::UInt(v)).collect()),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Flattens every [`SimStats`] counter into a JSON object.
pub fn stats_json(s: &SimStats) -> Json {
    let cache = s
        .cache
        .iter()
        .map(|l| {
            Json::obj(vec![
                ("hits", Json::UInt(l.hits)),
                ("misses", Json::UInt(l.misses)),
                ("writebacks", Json::UInt(l.writebacks)),
                ("evictions", Json::UInt(l.evictions)),
            ])
        })
        .collect();
    let m = &s.mem;
    let mem = Json::obj(vec![
        ("nvmm_reads", Json::UInt(m.nvmm_reads)),
        ("nvmm_writes", Json::UInt(m.nvmm_writes)),
        ("data_writes", Json::UInt(m.data_writes)),
        ("log_writes", Json::UInt(m.log_writes)),
        ("cells_programmed", Json::UInt(m.cells_programmed)),
        ("bits_programmed", Json::UInt(m.bits_programmed)),
        ("log_bits_programmed", Json::UInt(m.log_bits_programmed)),
        ("write_energy_pj", Json::Num(m.write_energy_pj)),
        ("log_write_energy_pj", Json::Num(m.log_write_energy_pj)),
        ("wq_full_stall_cycles", Json::UInt(m.wq_full_stall_cycles)),
        ("drains", Json::UInt(m.drains)),
        (
            "reads_blocked_by_drain",
            Json::UInt(m.reads_blocked_by_drain),
        ),
        ("silent_block_writes", Json::UInt(m.silent_block_writes)),
        ("read_wait_cycles", Json::UInt(m.read_wait_cycles)),
        ("log_overflow_growths", Json::UInt(m.log_overflow_growths)),
        ("faults_torn_drains", Json::UInt(m.faults_torn_drains)),
        ("faults_bit_flips", Json::UInt(m.faults_bit_flips)),
        ("write_verify_failures", Json::UInt(m.write_verify_failures)),
        ("write_verify_retries", Json::UInt(m.write_verify_retries)),
        ("stuck_slots_remapped", Json::UInt(m.stuck_slots_remapped)),
    ]);
    let l = &s.log;
    let log = Json::obj(vec![
        ("undo_redo_created", Json::UInt(l.undo_redo_created)),
        ("redo_created", Json::UInt(l.redo_created)),
        ("coalesced", Json::UInt(l.coalesced)),
        ("silent_discarded", Json::UInt(l.silent_discarded)),
        ("redo_discarded", Json::UInt(l.redo_discarded)),
        ("entries_written", Json::UInt(l.entries_written)),
        ("commit_records", Json::UInt(l.commit_records)),
        ("commit_stall_cycles", Json::UInt(l.commit_stall_cycles)),
        (
            "buffer_full_stall_cycles",
            Json::UInt(l.buffer_full_stall_cycles),
        ),
        ("post_commit_redo", Json::UInt(l.post_commit_redo)),
        (
            "log_region_full_stalls",
            Json::UInt(l.log_region_full_stalls),
        ),
    ]);
    let a = &s.attr;
    let attr = Json::obj(vec![
        ("busy", Json::UInt(a.busy)),
        ("read_wait", Json::UInt(a.read_wait)),
        ("drain_wait", Json::UInt(a.drain_wait)),
        ("log_buffer_stall", Json::UInt(a.log_buffer_stall)),
        ("wq_stall", Json::UInt(a.wq_stall)),
        ("commit_wait", Json::UInt(a.commit_wait)),
        ("idle", Json::UInt(a.idle)),
        ("total", Json::UInt(a.total())),
    ]);
    Json::obj(vec![
        ("cycles", Json::UInt(s.cycles)),
        (
            "transactions_committed",
            Json::UInt(s.transactions_committed),
        ),
        ("tx_stores", Json::UInt(s.tx_stores)),
        ("tx_loads", Json::UInt(s.tx_loads)),
        ("cache", Json::Arr(cache)),
        ("mem", mem),
        ("log", log),
        ("attr", attr),
        ("hist", metrics_hist_json(&s.metrics)),
        ("series", series_json(&s.metrics.series)),
    ])
}

/// `git describe --always --dirty` of this crate's source tree, or
/// `"unknown"` when git is unavailable.
///
/// The subprocess is pinned to `CARGO_MANIFEST_DIR` rather than the
/// process working directory, so a bench binary launched from an
/// unrelated repository (or from no repository at all) still stamps the
/// tree the code was built from. The answer cannot change within one
/// process, so it is computed once and memoized — sweeps that stamp
/// hundreds of records no longer fork git per record.
pub fn git_describe() -> String {
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        })
        .clone()
}

fn require<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing field {key:?}"))
}

fn require_kind(
    obj: &Json,
    key: &str,
    what: &str,
    check: impl Fn(&Json) -> bool,
    ty: &str,
) -> Result<(), String> {
    let v = require(obj, key, what)?;
    if check(v) {
        Ok(())
    } else {
        Err(format!("{what}: field {key:?} is not {ty}"))
    }
}

/// Validates a whole `results/*.json` document against the envelope and
/// record schemas.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_document(doc: &Json) -> Result<(), String> {
    require_kind(
        doc,
        "bench",
        "envelope",
        |v| v.as_str().is_some(),
        "a string",
    )?;
    let version = require(doc, "schema_version", "envelope")?
        .as_u64()
        .ok_or("envelope: schema_version is not an integer")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "envelope: schema_version {version} != {SCHEMA_VERSION}"
        ));
    }
    require_kind(doc, "git", "envelope", |v| v.as_str().is_some(), "a string")?;
    let jobs = require(doc, "jobs", "envelope")?
        .as_u64()
        .ok_or("envelope: jobs is not an integer")?;
    if jobs == 0 {
        return Err("envelope: jobs must be >= 1".to_string());
    }
    require_kind(
        doc,
        "wall_ms",
        "envelope",
        |v| v.as_f64().is_some(),
        "a number",
    )?;
    let records = require(doc, "records", "envelope")?
        .as_arr()
        .ok_or("envelope: records is not an array")?;
    for (i, record) in records.iter().enumerate() {
        let kind = record
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing string field \"kind\""))?;
        if kind == "run" {
            validate_run_record(record).map_err(|e| format!("record {i}: {e}"))?;
        }
        if kind == "crash_check" {
            validate_crash_check_record(record).map_err(|e| format!("record {i}: {e}"))?;
        }
        if kind == "crash_fuzz" {
            validate_crash_fuzz_record(record).map_err(|e| format!("record {i}: {e}"))?;
        }
        if kind == "crash_diff" {
            validate_crash_diff_record(record).map_err(|e| format!("record {i}: {e}"))?;
        }
    }
    Ok(())
}

/// Validates one `"crash_fuzz"` record (schema v5): a coverage-guided
/// random campaign's counters must be present and arithmetically
/// consistent.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_crash_fuzz_record(record: &Json) -> Result<(), String> {
    for key in ["design", "workload", "mutation"] {
        require_kind(
            record,
            key,
            "crash_fuzz",
            |v| v.as_str().is_some(),
            "a string",
        )?;
    }
    require_kind(
        record,
        "passed",
        "crash_fuzz",
        |v| matches!(v, Json::Bool(_)),
        "a bool",
    )?;
    let counter = |key: &str| -> Result<u64, String> {
        require(record, key, "crash_fuzz")?
            .as_u64()
            .ok_or_else(|| format!("crash_fuzz: field {key:?} is not an integer"))
    };
    counter("events")?;
    counter("novel")?;
    counter("coverage")?;
    let sampled = counter("sampled")?;
    let pruned = counter("pruned")?;
    let executed = counter("executed")?;
    let verified = counter("verified")?;
    let failures = counter("failures")?;
    if executed + pruned != sampled {
        return Err(format!(
            "crash_fuzz: executed {executed} + pruned {pruned} != sampled {sampled}"
        ));
    }
    if verified + failures != executed {
        return Err(format!(
            "crash_fuzz: verified {verified} + failures {failures} != executed {executed}"
        ));
    }
    Ok(())
}

/// Validates one `"crash_diff"` record (schema v5): a differential
/// cross-design run.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_crash_diff_record(record: &Json) -> Result<(), String> {
    for key in ["design_a", "design_b", "workload", "culprit"] {
        require_kind(
            record,
            key,
            "crash_diff",
            |v| v.as_str().is_some(),
            "a string",
        )?;
    }
    require_kind(
        record,
        "passed",
        "crash_diff",
        |v| matches!(v, Json::Bool(_)),
        "a bool",
    )?;
    let counter = |key: &str| -> Result<u64, String> {
        require(record, key, "crash_diff")?
            .as_u64()
            .ok_or_else(|| format!("crash_diff: field {key:?} is not an integer"))
    };
    let checked = counter("checked")?;
    let divergences = counter("divergences")?;
    if divergences > checked {
        return Err(format!(
            "crash_diff: divergences {divergences} > checked {checked}"
        ));
    }
    Ok(())
}

/// Validates one `"crash_check"` record (schema v4): the crash-point
/// model checker's per-design counters must be present and arithmetically
/// consistent.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_crash_check_record(record: &Json) -> Result<(), String> {
    for key in ["design", "workload", "mutation"] {
        require_kind(
            record,
            key,
            "crash_check",
            |v| v.as_str().is_some(),
            "a string",
        )?;
    }
    require_kind(
        record,
        "passed",
        "crash_check",
        |v| matches!(v, Json::Bool(_)),
        "a bool",
    )?;
    let counter = |key: &str| -> Result<u64, String> {
        require(record, key, "crash_check")?
            .as_u64()
            .ok_or_else(|| format!("crash_check: field {key:?} is not an integer"))
    };
    let events = counter("events")?;
    let points_total = counter("points_total")?;
    let pruned = counter("pruned")?;
    let capped = counter("capped")?;
    let explored = counter("explored")?;
    let verified = counter("verified")?;
    let failures = counter("failures")?;
    if points_total != events + 1 {
        return Err(format!(
            "crash_check: points_total {points_total} != events {events} + 1"
        ));
    }
    if explored + pruned + capped < points_total {
        return Err(format!(
            "crash_check: explored {explored} + pruned {pruned} + capped {capped} \
             does not cover points_total {points_total}"
        ));
    }
    if verified + failures != explored {
        return Err(format!(
            "crash_check: verified {verified} + failures {failures} != explored {explored}"
        ));
    }
    Ok(())
}

/// Validates one `"run"` record.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_run_record(record: &Json) -> Result<(), String> {
    for key in ["design", "workload", "workload_kind", "dataset", "secure"] {
        require_kind(record, key, "run", |v| v.as_str().is_some(), "a string")?;
    }
    for key in ["threads_requested", "threads", "transactions", "seed"] {
        require_kind(record, key, "run", |v| v.as_u64().is_some(), "an integer")?;
    }
    for key in ["expansion", "tweaked"] {
        require_kind(record, key, "run", |v| matches!(v, Json::Bool(_)), "a bool")?;
    }
    for key in ["throughput_tps", "wall_ms"] {
        require_kind(record, key, "run", |v| v.as_f64().is_some(), "a number")?;
    }
    require_kind(
        record,
        "trace_dropped",
        "run",
        |v| v.as_u64().is_some(),
        "an integer",
    )?;
    let stats = require(record, "stats", "run")?;
    for key in ["cycles", "transactions_committed", "tx_stores", "tx_loads"] {
        require_kind(
            stats,
            key,
            "run.stats",
            |v| v.as_u64().is_some(),
            "an integer",
        )?;
    }
    let cache = require(stats, "cache", "run.stats")?
        .as_arr()
        .ok_or("run.stats: cache is not an array")?;
    if cache.len() != 3 {
        return Err("run.stats: cache must have 3 levels".to_string());
    }
    for key in ["nvmm_writes", "log_writes", "bits_programmed"] {
        require_kind(
            require(stats, "mem", "run.stats")?,
            key,
            "run.stats.mem",
            |v| v.as_u64().is_some(),
            "an integer",
        )?;
    }
    require_kind(
        require(stats, "log", "run.stats")?,
        "entries_written",
        "run.stats.log",
        |v| v.as_u64().is_some(),
        "an integer",
    )?;
    let attr = require(stats, "attr", "run.stats")?;
    let mut sum = 0u64;
    for key in [
        "busy",
        "read_wait",
        "drain_wait",
        "log_buffer_stall",
        "wq_stall",
        "commit_wait",
        "idle",
    ] {
        sum += require(attr, key, "run.stats.attr")?
            .as_u64()
            .ok_or_else(|| format!("run.stats.attr: field {key:?} is not an integer"))?;
    }
    let total = require(attr, "total", "run.stats.attr")?
        .as_u64()
        .ok_or("run.stats.attr: total is not an integer")?;
    if sum != total {
        return Err(format!(
            "run.stats.attr: accounts sum to {sum} but total says {total}"
        ));
    }
    let hist = require(stats, "hist", "run.stats")?;
    let commit = require(hist, "commit", "run.stats.hist")?;
    for name in COMMIT_LATENCY_LABELS {
        let h = require(commit, name, "run.stats.hist.commit")?;
        validate_hist(h, &format!("run.stats.hist.commit.{name}"))?;
    }
    let entry_bits = require(hist, "log_entry_bits", "run.stats.hist")?;
    for name in LOG_KIND_LABELS {
        let h = require(entry_bits, name, "run.stats.hist.log_entry_bits")?;
        validate_hist(h, &format!("run.stats.hist.log_entry_bits.{name}"))?;
    }
    let choices = require(hist, "encoder_choices", "run.stats.hist")?;
    for name in ENCODER_CHOICE_LABELS {
        require_kind(
            choices,
            name,
            "run.stats.hist.encoder_choices",
            |v| v.as_u64().is_some(),
            "an integer",
        )?;
    }
    let series = require(stats, "series", "run.stats")?;
    require_kind(
        series,
        "period",
        "run.stats.series",
        |v| v.as_u64().is_some(),
        "an integer",
    )?;
    for name in morlog_sim_core::metrics::SERIES_LABELS {
        let s = require(series, name, "run.stats.series")?;
        let what = format!("run.stats.series.{name}");
        let cycles = require(s, "cycles", &what)?
            .as_arr()
            .ok_or_else(|| format!("{what}: cycles is not an array"))?;
        let values = require(s, "values", &what)?
            .as_arr()
            .ok_or_else(|| format!("{what}: values is not an array"))?;
        if cycles.len() != values.len() {
            return Err(format!(
                "{what}: cycles has {} entries but values has {}",
                cycles.len(),
                values.len()
            ));
        }
        let mut last: Option<u64> = None;
        for (i, c) in cycles.iter().enumerate() {
            let c = c
                .as_u64()
                .ok_or_else(|| format!("{what}: cycles[{i}] is not an integer"))?;
            if let Some(prev) = last {
                if c < prev {
                    return Err(format!(
                        "{what}: cycles[{i}] = {c} goes backwards from {prev}"
                    ));
                }
            }
            last = Some(c);
        }
    }
    Ok(())
}

/// Validates one serialized histogram: required summary fields, bucket
/// counts that sum to `count`, and quantile ordering
/// `p50 <= p90 <= p99 <= max`.
fn validate_hist(h: &Json, what: &str) -> Result<(), String> {
    for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
        require_kind(h, key, what, |v| v.as_u64().is_some(), "an integer")?;
    }
    let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
    let buckets = require(h, "buckets", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: buckets is not an array"))?;
    let mut bucket_sum = 0u64;
    for (i, pair) in buckets.iter().enumerate() {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}: buckets[{i}] is not a [bucket, count] pair"))?;
        let idx = pair[0]
            .as_u64()
            .ok_or_else(|| format!("{what}: buckets[{i}][0] is not an integer"))?;
        if idx as usize >= morlog_sim_core::metrics::HIST_BUCKETS {
            return Err(format!("{what}: buckets[{i}] index {idx} out of range"));
        }
        bucket_sum += pair[1]
            .as_u64()
            .ok_or_else(|| format!("{what}: buckets[{i}][1] is not an integer"))?;
    }
    if bucket_sum != count {
        return Err(format!(
            "{what}: bucket counts sum to {bucket_sum} but count says {count}"
        ));
    }
    let q = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
    if count > 0 && !(q("p50") <= q("p90") && q("p90") <= q("p99") && q("p99") <= q("max")) {
        return Err(format!(
            "{what}: quantiles must be ordered p50 <= p90 <= p99 <= max"
        ));
    }
    Ok(())
}
