//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§VI). Each `src/bin/*` binary prints one table/figure; this
//! library holds the common runner.
//!
//! Run sizes default to values that complete in minutes on a laptop and can
//! be scaled with the `MORLOG_TXS` environment variable (the paper runs
//! 100 K transactions per workload; the shapes are stable well below that).
//!
//! The design space is embarrassingly parallel across
//! (design × workload × seed) points, so sweeps fan out across a
//! [`SweepRunner`] thread pool sized by `MORLOG_JOBS` (default: available
//! parallelism). Each per-run simulation stays single-threaded and
//! deterministic; results are returned **in spec order**, independent of
//! completion order, so parallel sweeps print byte-identical tables to
//! serial ones. Workload traces are generated once per distinct
//! `(kind, dataset, threads, transactions, seed)` key through the
//! [`morlog_workloads::cache`] trace cache and shared immutably across
//! designs and worker threads. Alongside the printed tables, every binary
//! records machine-readable JSON results under `results/` (see
//! [`results`]).

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use morlog_encoding::secure::SecureMode;
use morlog_sim::{RunReport, System};
use morlog_sim_core::stats::CycleAttribution;
use morlog_sim_core::trace::Tracer;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{cached_generate, DatasetSize, WorkloadConfig, WorkloadKind};

pub mod cx;
pub mod diff;
pub mod json;
pub mod perfetto;
pub mod results;

/// Parses a `MORLOG_TXS`-style transaction-count override.
///
/// # Errors
///
/// Returns a message when the value is not a positive integer (`100k`,
/// `1e5` and friends are rejected rather than silently ignored).
pub fn parse_txs(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("MORLOG_TXS={raw:?} must be at least 1")),
        Err(_) => Err(format!(
            "MORLOG_TXS={raw:?} is not a plain positive integer (suffixes like \"100k\" are not supported)"
        )),
    }
}

/// Scales a default transaction count by the `MORLOG_TXS` override.
///
/// An unset variable keeps the default; a *malformed* one aborts the
/// binary with a loud stderr message instead of quietly running the wrong
/// experiment.
pub fn scaled_txs(default: usize) -> usize {
    match std::env::var("MORLOG_TXS") {
        Err(_) => default,
        Ok(raw) => parse_txs(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    }
}

/// Parses a `MORLOG_JOBS`-style worker-count override.
///
/// # Errors
///
/// Returns a message when the value is not a positive integer.
pub fn parse_jobs(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "MORLOG_JOBS={raw:?} is not a positive integer worker count"
        )),
    }
}

/// Sweep parallelism from `MORLOG_JOBS`, defaulting to the machine's
/// available parallelism. A malformed value aborts loudly, like
/// [`scaled_txs`].
pub fn jobs_from_env() -> usize {
    match std::env::var("MORLOG_JOBS") {
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Ok(raw) => parse_jobs(&raw).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    }
}

/// A configuration tweak applied after design defaults. `Arc<dyn Fn>`
/// (rather than a bare `fn` pointer) so sweep points can capture their
/// parameters instead of smuggling them through environment variables,
/// which would race under a parallel sweep.
pub type Tweak = Arc<dyn Fn(&mut SystemConfig) + Send + Sync>;

/// Parameters of one simulated run.
#[derive(Clone)]
pub struct RunSpec {
    /// Logging design.
    pub design: DesignKind,
    /// Benchmark.
    pub kind: WorkloadKind,
    /// Dataset size.
    pub dataset: DatasetSize,
    /// Worker threads (0 = the paper's default for the benchmark).
    pub threads: usize,
    /// Total transactions.
    pub transactions: usize,
    /// Expansion coding enabled (Table VI turns it off).
    pub expansion: bool,
    /// Secure-NVMM mode (§IV-D ablations; plaintext by default).
    pub secure: SecureMode,
    /// Workload RNG seed (42 everywhere in the paper's evaluation).
    pub seed: u64,
    /// System-configuration tweak applied after defaults.
    pub tweak: Option<Tweak>,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("design", &self.design)
            .field("kind", &self.kind)
            .field("dataset", &self.dataset)
            .field("threads", &self.threads)
            .field("transactions", &self.transactions)
            .field("expansion", &self.expansion)
            .field("secure", &self.secure)
            .field("seed", &self.seed)
            .field("tweak", &self.tweak.as_ref().map(|_| "..."))
            .finish()
    }
}

impl RunSpec {
    /// A paper-default run of `kind` under `design`.
    pub fn new(design: DesignKind, kind: WorkloadKind, transactions: usize) -> Self {
        RunSpec {
            design,
            kind,
            dataset: DatasetSize::Small,
            threads: 0,
            transactions,
            expansion: true,
            secure: SecureMode::None,
            seed: 42,
            tweak: None,
        }
    }

    /// Selects the large (4 KB) dataset.
    pub fn large(mut self) -> Self {
        self.dataset = DatasetSize::Large;
        self
    }

    /// Overrides the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disables expansion coding.
    pub fn no_expansion(mut self) -> Self {
        self.expansion = false;
        self
    }

    /// Selects a secure-NVMM mode.
    pub fn secure(mut self, mode: SecureMode) -> Self {
        self.secure = mode;
        self
    }

    /// Overrides the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies a configuration tweak (buffer sizes, latency scale, ...).
    /// Closures may capture their sweep parameters.
    pub fn tweak(mut self, f: impl Fn(&mut SystemConfig) + Send + Sync + 'static) -> Self {
        self.tweak = Some(Arc::new(f));
        self
    }

    /// Workload label with the dataset suffix (Fig. 14 style).
    pub fn label(&self) -> String {
        if self.kind == WorkloadKind::Tpcc {
            self.kind.label().to_string()
        } else {
            format!("{}-{}", self.kind.label(), self.dataset.label())
        }
    }

    /// The design-default configuration with this spec's tweak applied.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::for_design(self.design);
        if let Some(tweak) = &self.tweak {
            tweak(&mut cfg);
        }
        cfg
    }

    /// The thread count this spec asks for (0 resolves to the paper's
    /// default for the benchmark).
    pub fn requested_threads(&self) -> usize {
        if self.threads == 0 {
            self.kind.default_threads()
        } else {
            self.threads
        }
    }

    /// The thread count that actually runs: the request clamped to the
    /// configuration's core count. Rows must be labelled with this.
    pub fn effective_threads(&self) -> usize {
        self.requested_threads().min(self.config().cores.cores)
    }
}

/// Executes one run and returns its report.
pub fn run(spec: &RunSpec) -> RunReport {
    let cfg = spec.config();
    let requested = spec.requested_threads();
    let threads = requested.min(cfg.cores.cores);
    if threads < requested {
        eprintln!(
            "warning: {} requests {requested} threads but the configuration has only {} \
             cores; simulating {threads} threads (rows are labelled with the effective count)",
            spec.label(),
            cfg.cores.cores
        );
    }
    let wl = WorkloadConfig {
        threads,
        total_transactions: spec.transactions,
        dataset: spec.dataset,
        seed: spec.seed,
        data_base: System::data_base(&cfg),
    };
    let trace = cached_generate(spec.kind, &wl);
    let mut sys = System::with_options(cfg.clone(), &trace, spec.expansion, spec.secure);
    let stats = sys.run();
    let trace_dropped = sys.tracer().dropped();
    if trace_dropped > 0 {
        eprintln!(
            "warning: {}: trace ring evicted {trace_dropped} events — the trace is \
             truncated at the front; raise the MORLOG_TRACE capacity to keep it whole",
            spec.label()
        );
    }
    maybe_dump_trace(spec, sys.tracer());
    RunReport {
        design: spec.design,
        workload: spec.label(),
        threads,
        stats,
        frequency: cfg.cores.frequency,
        trace_dropped,
    }
}

/// Runs all six designs on one spec, returning reports in
/// [`DesignKind::ALL`] order (index 0 is the FWB-CRADE baseline).
///
/// The workload trace is generated **once** and shared across the designs
/// through the trace cache: the memory map (and therefore `data_base`) is
/// identical for every design, so all six runs replay the same trace.
pub fn run_all_designs(base: &RunSpec) -> Vec<RunReport> {
    DesignKind::ALL
        .iter()
        .map(|&design| {
            let mut spec = base.clone();
            spec.design = design;
            run(&spec)
        })
        .collect()
}

/// One sweep result: the spec, its report and the host wall-clock the run
/// took (simulated time lives in `report.stats.cycles`).
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// The spec that ran.
    pub spec: RunSpec,
    /// Its report.
    pub report: RunReport,
    /// Host wall-clock spent simulating (excludes queueing).
    pub wall: Duration,
}

/// A bounded worker pool that fans independent sweep points out across
/// threads and returns results **in input order**, so a parallel sweep is
/// byte-identical to a serial one.
///
/// Each worker claims the next unclaimed index from a shared counter
/// (dynamic scheduling: long runs don't convoy short ones behind a static
/// partition). With `jobs == 1` everything executes on the calling thread
/// — that is the reference serial path the determinism test compares
/// against.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner sized by `MORLOG_JOBS` (default: available parallelism).
    pub fn from_env() -> Self {
        Self::with_jobs(jobs_from_env())
    }

    /// A runner with an explicit worker count (>= 1 enforced).
    pub fn with_jobs(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel across the pool, returning
    /// results in item order regardless of completion order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (the sweep aborts; no partial table is
    /// printed with holes in it).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Send + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(items.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(item);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every slot filled once the scope joins")
            })
            .collect()
    }

    /// Runs a list of specs through the pool, timing each, with results in
    /// spec order.
    pub fn run_specs(&self, specs: &[RunSpec]) -> Vec<TimedRun> {
        self.map(specs, |spec| {
            let t0 = std::time::Instant::now();
            let report = run(spec);
            TimedRun {
                spec: spec.clone(),
                report,
                wall: t0.elapsed(),
            }
        })
    }

    /// [`run_all_designs`] through the pool: all six designs on one base
    /// spec, in [`DesignKind::ALL`] order.
    pub fn run_designs(&self, base: &RunSpec) -> Vec<TimedRun> {
        let specs: Vec<RunSpec> = DesignKind::ALL
            .iter()
            .map(|&design| {
                let mut spec = base.clone();
                spec.design = design;
                spec
            })
            .collect();
        self.run_specs(&specs)
    }
}

/// Prints a normalized-metric table row per design (Fig. 12/13/14 bars).
/// An empty report slice (every run filtered or skipped) prints a
/// diagnostic instead of panicking on the missing baseline.
pub fn print_normalized_rows(workload: &str, reports: &[RunReport]) {
    let Some(baseline) = reports.first() else {
        println!("{workload:<14} (no runs — nothing to normalize)");
        return;
    };
    print!("{workload:<14}");
    for r in reports {
        print!(" {:>12.3}", r.normalized_throughput(baseline));
    }
    println!();
}

/// Prints the header line for design columns.
pub fn print_design_header(first_col: &str) {
    print!("{first_col:<14}");
    for d in DesignKind::ALL {
        print!(" {:>12}", d.label());
    }
    println!();
}

/// Prints the per-design cycle-attribution breakdown: what fraction of the
/// run's core-cycles each stall account consumed. The accounts come from
/// the simulator's profiler and sum exactly to the run's execution cycles
/// times its cores, so the percentages of a row always total 100.
pub fn print_stall_breakdown(reports: &[RunReport]) {
    if reports.is_empty() {
        return;
    }
    print!("{:<14}", "cycle %");
    for label in CycleAttribution::LABELS {
        print!(" {label:>16}");
    }
    println!();
    for r in reports {
        print!("{:<14}", r.design.label());
        let total = r.stats.attr.total();
        for v in r.stats.attr.values() {
            if total == 0 {
                print!(" {:>16}", "-");
            } else {
                print!(" {:>15.1}%", 100.0 * v as f64 / total as f64);
            }
        }
        println!();
    }
}

/// Prints the per-design commit-latency table: p50/p99 of
/// Begin→RecordPersisted (when the commit is durable in NVM) and of
/// Begin→Complete (when the program observes the commit). For the sync
/// protocols the two track each other; under delay-persistence the
/// Complete column collapses to the commit request itself while the
/// persist column keeps the drain time — that gap is the §III-C
/// persistence lag, whose p99 is printed in the last column for DP
/// designs (`-` elsewhere). Quantiles come from the deterministic
/// log2-bucketed histograms, so the table is byte-identical across
/// serial/parallel sweeps and with tracing on or off.
pub fn print_commit_latency_table(reports: &[RunReport]) {
    if reports.is_empty() {
        return;
    }
    println!(
        "{:<14} {:>14} {:>10} {:>14} {:>10} {:>12}",
        "commit cycles", "persist p50", "p99", "complete p50", "p99", "dp lag p99"
    );
    for r in reports {
        let c = &r.stats.metrics.commit;
        let lag = if c.dp_persist_lag.is_empty() {
            "-".to_string()
        } else {
            c.dp_persist_lag.p99().to_string()
        };
        println!(
            "{:<14} {:>14} {:>10} {:>14} {:>10} {:>12}",
            r.design.label(),
            c.begin_to_persist.p50(),
            c.begin_to_persist.p99(),
            c.begin_to_complete.p50(),
            c.begin_to_complete.p99(),
            lag
        );
    }
}

/// Writes a finished run's event trace as JSONL when tracing is enabled
/// **and** `MORLOG_TRACE_DIR` names a dump directory. The file is
/// `<design>_<workload>_t<threads>_s<seed>.jsonl`, one event object per
/// line, so parallel sweep points land in distinct files. Diagnostics go
/// to stderr; stdout tables stay byte-identical with tracing on or off.
fn maybe_dump_trace(spec: &RunSpec, tracer: &Tracer) {
    if !tracer.is_enabled() {
        return;
    }
    let Ok(dir) = std::env::var("MORLOG_TRACE_DIR") else {
        return;
    };
    let name = format!(
        "{}_{}_t{}_s{}.jsonl",
        spec.design.label(),
        spec.label(),
        spec.effective_threads(),
        spec.seed
    );
    let path = std::path::Path::new(&dir).join(name);
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, tracer.to_jsonl()))
    {
        eprintln!("warning: could not write trace {}: {e}", path.display());
    } else {
        eprintln!(
            "trace: wrote {} ({} events, {} dropped)",
            path.display(),
            tracer.len(),
            tracer.dropped()
        );
    }
}
