//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§VI). Each `src/bin/*` binary prints one table/figure; this
//! library holds the common runner.
//!
//! Run sizes default to values that complete in minutes on a laptop and can
//! be scaled with the `MORLOG_TXS` environment variable (the paper runs
//! 100 K transactions per workload; the shapes are stable well below that).

#![deny(missing_docs)]

use morlog_sim::{RunReport, System};
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, DatasetSize, WorkloadConfig, WorkloadKind};

/// Scales a default transaction count by the `MORLOG_TXS` override.
pub fn scaled_txs(default: usize) -> usize {
    match std::env::var("MORLOG_TXS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => n,
        None => default,
    }
}

/// Parameters of one simulated run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Logging design.
    pub design: DesignKind,
    /// Benchmark.
    pub kind: WorkloadKind,
    /// Dataset size.
    pub dataset: DatasetSize,
    /// Worker threads (0 = the paper's default for the benchmark).
    pub threads: usize,
    /// Total transactions.
    pub transactions: usize,
    /// Expansion coding enabled (Table VI turns it off).
    pub expansion: bool,
    /// System-configuration tweak applied after defaults.
    pub tweak: Option<fn(&mut SystemConfig)>,
}

impl RunSpec {
    /// A paper-default run of `kind` under `design`.
    pub fn new(design: DesignKind, kind: WorkloadKind, transactions: usize) -> Self {
        RunSpec {
            design,
            kind,
            dataset: DatasetSize::Small,
            threads: 0,
            transactions,
            expansion: true,
            tweak: None,
        }
    }

    /// Selects the large (4 KB) dataset.
    pub fn large(mut self) -> Self {
        self.dataset = DatasetSize::Large;
        self
    }

    /// Overrides the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disables expansion coding.
    pub fn no_expansion(mut self) -> Self {
        self.expansion = false;
        self
    }

    /// Applies a configuration tweak (buffer sizes, latency scale, ...).
    pub fn tweak(mut self, f: fn(&mut SystemConfig)) -> Self {
        self.tweak = Some(f);
        self
    }

    /// Workload label with the dataset suffix (Fig. 14 style).
    pub fn label(&self) -> String {
        if self.kind == WorkloadKind::Tpcc {
            self.kind.label().to_string()
        } else {
            format!("{}-{}", self.kind.label(), self.dataset.label())
        }
    }
}

/// Executes one run and returns its report.
pub fn run(spec: &RunSpec) -> RunReport {
    let mut cfg = SystemConfig::for_design(spec.design);
    if let Some(tweak) = spec.tweak {
        tweak(&mut cfg);
    }
    let threads = if spec.threads == 0 {
        spec.kind.default_threads()
    } else {
        spec.threads
    };
    let wl = WorkloadConfig {
        threads: threads.min(cfg.cores.cores),
        total_transactions: spec.transactions,
        dataset: spec.dataset,
        seed: 42,
        data_base: System::data_base(&cfg),
    };
    let trace = generate(spec.kind, &wl);
    let mut sys = System::with_expansion(cfg.clone(), &trace, spec.expansion);
    let stats = sys.run();
    RunReport {
        design: spec.design,
        workload: spec.label(),
        stats,
        frequency: cfg.cores.frequency,
    }
}

/// Runs all six designs on one spec, returning reports in
/// [`DesignKind::ALL`] order (index 0 is the FWB-CRADE baseline).
pub fn run_all_designs(base: &RunSpec) -> Vec<RunReport> {
    DesignKind::ALL
        .iter()
        .map(|&design| {
            let mut spec = base.clone();
            spec.design = design;
            run(&spec)
        })
        .collect()
}

/// Prints a normalized-metric table row per design (Fig. 12/13/14 bars).
pub fn print_normalized_rows(workload: &str, reports: &[RunReport]) {
    let baseline = &reports[0];
    print!("{workload:<14}");
    for r in reports {
        print!(" {:>12.3}", r.normalized_throughput(baseline));
    }
    println!();
}

/// Prints the header line for design columns.
pub fn print_design_header(first_col: &str) {
    print!("{first_col:<14}");
    for d in DesignKind::ALL {
        print!(" {:>12}", d.label());
    }
    println!();
}
