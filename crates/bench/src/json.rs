//! A minimal JSON value type with serializer and parser.
//!
//! The workspace is deliberately dependency-free, so the machine-readable
//! result records under `results/` are produced (and round-trip-tested)
//! with this hand-rolled implementation instead of serde. Objects keep
//! insertion order so serialized records are byte-deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (serialized without a decimal point).
    UInt(u64),
    /// Any other number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on serialization.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with 2-space indentation (the `results/` file format).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float format.
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, inner| {
                items[i].write(out, inner);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, inner| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if inner.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, inner);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig14 \"macro\"\n".into())),
            ("count", Json::UInt(u64::MAX)),
            ("ratio", Json::Num(0.1)),
            ("neg", Json::Num(-2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "arr",
                Json::Arr(vec![Json::UInt(1), Json::Str("x".into()), Json::Num(1.5)]),
            ),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "aA\n\t\"\\ éé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n\t\"\\ éé");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn big_counters_stay_exact() {
        // u64::MAX and neighbours are not representable in f64 (2^53 cap);
        // they must round-trip through Json::UInt without drift.
        for n in [u64::MAX, u64::MAX - 7, (1 << 53) + 1] {
            let v = parse(&Json::UInt(n).to_json()).unwrap();
            assert_eq!(v.as_u64(), Some(n), "n = {n}");
            assert_eq!(v, Json::UInt(n), "literal must parse as UInt, not Num");
        }
        // Dotted / exponent forms still land in Num.
        assert!(matches!(parse("1.5").unwrap(), Json::Num(_)));
        assert!(matches!(parse("1e3").unwrap(), Json::Num(_)));
    }

    #[test]
    fn getters() {
        let v = Json::obj(vec![("a", Json::UInt(3))]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(3.0));
        assert!(v.get("b").is_none());
        assert!(Json::Null.get("a").is_none());
    }
}
