//! Schema-aware comparison of two `results/*.json` documents — the
//! engine behind the `bench_diff` binary and the CI perf-regression
//! gate.
//!
//! Both documents are validated against the current schema, then every
//! leaf value is flattened to a `path → value` map (e.g.
//! `records[3].stats.mem.nvmm_writes`) and the maps are compared.
//! Records are matched by position: the simulation is deterministic and
//! every bench binary emits records in a fixed order, so index identity
//! is exact — a record-count mismatch is reported as a structural
//! difference rather than fuzzily matched.
//!
//! Volatile envelope fields that legitimately differ between two runs
//! of the same code (`wall_ms`, `git`, `jobs`) are excluded from the
//! comparison; everything else, including every histogram bucket and
//! series sample, participates. Two identical runs therefore diff to
//! zero, and any simulated-behaviour change shows up as a per-metric
//! percentage delta.

use crate::json::Json;

/// Environment variable overriding the regression threshold (percent).
pub const DIFF_THRESHOLD_ENV: &str = "MORLOG_DIFF_THRESHOLD";

/// Default regression threshold: any metric moving more than this many
/// percent (in either direction) trips the gate.
pub const DEFAULT_THRESHOLD_PCT: f64 = 2.0;

/// Fields excluded from comparison wherever they appear: host
/// wall-clock (envelope and per-record), the git stamp, and sweep
/// parallelism are properties of the *run*, not of the simulated
/// behaviour the gate protects.
const SKIP_FIELDS: [&str; 3] = ["wall_ms", "git", "jobs"];

/// Parses a regression threshold in percent: a finite, non-negative
/// number.
pub fn parse_threshold(raw: &str) -> Result<f64, String> {
    let trimmed = raw.trim();
    let parsed: f64 = trimmed
        .parse()
        .map_err(|_| format!("regression threshold must be a percentage, got {raw:?}"))?;
    if !parsed.is_finite() || parsed < 0.0 {
        return Err(format!(
            "regression threshold must be finite and >= 0, got {raw:?}"
        ));
    }
    Ok(parsed)
}

/// Reads the threshold from `MORLOG_DIFF_THRESHOLD`, falling back to
/// [`DEFAULT_THRESHOLD_PCT`] when unset. Exits with code 2 on a
/// malformed value, matching the `MORLOG_TXS` / `MORLOG_JOBS`
/// convention.
pub fn threshold_from_env() -> f64 {
    match std::env::var(DIFF_THRESHOLD_ENV) {
        Err(_) => DEFAULT_THRESHOLD_PCT,
        Ok(raw) => match parse_threshold(&raw) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {DIFF_THRESHOLD_ENV}: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// One differing metric between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened path of the metric, e.g. `records[0].stats.cycles`.
    pub path: String,
    /// Baseline value (`None` when the path only exists in the
    /// candidate).
    pub base: Option<f64>,
    /// Candidate value (`None` when the path only exists in the
    /// baseline).
    pub cand: Option<f64>,
}

impl MetricDelta {
    /// Percentage change from baseline to candidate. Structural
    /// differences (a path present on only one side, or a non-numeric
    /// mismatch) and changes away from a zero baseline report
    /// `f64::INFINITY`, so they always exceed any threshold.
    pub fn delta_pct(&self) -> f64 {
        match (self.base, self.cand) {
            (Some(b), Some(c)) => {
                if b == c {
                    0.0
                } else if b == 0.0 {
                    f64::INFINITY
                } else {
                    (c - b) / b * 100.0
                }
            }
            _ => f64::INFINITY,
        }
    }

    /// Whether this delta exceeds a threshold in either direction.
    pub fn exceeds(&self, threshold_pct: f64) -> bool {
        self.delta_pct().abs() > threshold_pct
    }
}

/// The outcome of diffing two documents.
#[derive(Debug, Clone, Default)]
pub struct DocumentDiff {
    /// Total number of leaf metrics compared.
    pub compared: usize,
    /// Metrics whose values differ (empty for identical runs).
    pub deltas: Vec<MetricDelta>,
}

impl DocumentDiff {
    /// The deltas that exceed `threshold_pct`.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.exceeds(threshold_pct))
            .collect()
    }
}

/// A flattened leaf value. Strings and bools are hashed into the
/// comparison as exact-match values: a mismatch is structural (reported
/// as infinite delta), never a percentage.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Text(String),
}

fn flatten(value: &Json, path: &str, out: &mut Vec<(String, Leaf)>) {
    match value {
        Json::Null => out.push((path.to_string(), Leaf::Text("null".into()))),
        Json::Bool(b) => out.push((path.to_string(), Leaf::Text(b.to_string()))),
        Json::UInt(n) => out.push((path.to_string(), Leaf::Num(*n as f64))),
        Json::Num(n) => out.push((path.to_string(), Leaf::Num(*n))),
        Json::Str(s) => out.push((path.to_string(), Leaf::Text(s.clone()))),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{path}[{i}]"), out);
            }
            // Lengths participate so a shorter array is a difference
            // even when every shared index matches.
            out.push((format!("{path}.len"), Leaf::Num(items.len() as f64)));
        }
        Json::Obj(pairs) => {
            for (key, v) in pairs {
                if SKIP_FIELDS.contains(&key.as_str()) {
                    continue;
                }
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(v, &sub, out);
            }
        }
    }
}

/// Diffs two validated result documents.
///
/// # Errors
///
/// Returns a message when either document fails schema validation or
/// the two documents are for different bench binaries.
pub fn diff_documents(base: &Json, cand: &Json) -> Result<DocumentDiff, String> {
    crate::results::validate_document(base).map_err(|e| format!("baseline: {e}"))?;
    crate::results::validate_document(cand).map_err(|e| format!("candidate: {e}"))?;
    let base_bench = base.get("bench").and_then(Json::as_str).unwrap_or("");
    let cand_bench = cand.get("bench").and_then(Json::as_str).unwrap_or("");
    if base_bench != cand_bench {
        return Err(format!(
            "bench mismatch: baseline is {base_bench:?} but candidate is {cand_bench:?}"
        ));
    }
    let mut base_flat = Vec::new();
    let mut cand_flat = Vec::new();
    flatten(base, "", &mut base_flat);
    flatten(cand, "", &mut cand_flat);
    let base_map: std::collections::BTreeMap<String, Leaf> = base_flat.into_iter().collect();
    let cand_map: std::collections::BTreeMap<String, Leaf> = cand_flat.into_iter().collect();

    let mut diff = DocumentDiff::default();
    for (path, b) in &base_map {
        match cand_map.get(path) {
            None => diff.deltas.push(MetricDelta {
                path: path.clone(),
                base: leaf_num(b),
                cand: None,
            }),
            Some(c) => {
                diff.compared += 1;
                match (b, c) {
                    (Leaf::Num(bn), Leaf::Num(cn)) => {
                        if bn != cn {
                            diff.deltas.push(MetricDelta {
                                path: path.clone(),
                                base: Some(*bn),
                                cand: Some(*cn),
                            });
                        }
                    }
                    (Leaf::Text(bt), Leaf::Text(ct)) => {
                        if bt != ct {
                            diff.deltas.push(MetricDelta {
                                path: path.clone(),
                                base: None,
                                cand: None,
                            });
                        }
                    }
                    _ => diff.deltas.push(MetricDelta {
                        path: path.clone(),
                        base: leaf_num(b),
                        cand: leaf_num(c),
                    }),
                }
            }
        }
    }
    for (path, c) in &cand_map {
        if !base_map.contains_key(path) {
            diff.deltas.push(MetricDelta {
                path: path.clone(),
                base: None,
                cand: leaf_num(c),
            });
        }
    }
    Ok(diff)
}

fn leaf_num(leaf: &Leaf) -> Option<f64> {
    match leaf {
        Leaf::Num(n) => Some(*n),
        Leaf::Text(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn doc(cycles: u64, wall: f64) -> Json {
        // A minimal valid envelope with one non-"run" record (only
        // "run" records have the full stats schema enforced).
        Json::obj(vec![
            ("bench", Json::Str("unit".into())),
            ("schema_version", Json::UInt(crate::results::SCHEMA_VERSION)),
            ("git", Json::Str("deadbeef".into())),
            ("jobs", Json::UInt(1)),
            ("wall_ms", Json::Num(wall)),
            (
                "records",
                Json::Arr(vec![Json::obj(vec![
                    ("kind", Json::Str("unit_metric".into())),
                    ("cycles", Json::UInt(cycles)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_documents_have_zero_deltas() {
        let a = doc(100, 5.0);
        let b = doc(100, 99.0); // wall_ms differs but is excluded
        let d = diff_documents(&a, &b).unwrap();
        assert!(d.deltas.is_empty(), "{:?}", d.deltas);
        assert!(d.compared > 0);
    }

    #[test]
    fn perturbed_document_trips_threshold() {
        let a = doc(100, 5.0);
        let b = doc(110, 5.0);
        let d = diff_documents(&a, &b).unwrap();
        assert_eq!(d.deltas.len(), 1);
        assert!((d.deltas[0].delta_pct() - 10.0).abs() < 1e-9);
        assert!(d.deltas[0].exceeds(2.0));
        assert!(!d.deltas[0].exceeds(15.0));
    }

    #[test]
    fn zero_baseline_is_infinite_delta() {
        let a = doc(0, 5.0);
        let b = doc(1, 5.0);
        let d = diff_documents(&a, &b).unwrap();
        assert_eq!(d.deltas.len(), 1);
        assert!(d.deltas[0].delta_pct().is_infinite());
        assert!(d.deltas[0].exceeds(1e12));
    }

    #[test]
    fn bench_mismatch_is_an_error() {
        let a = doc(1, 5.0);
        let mut b = doc(1, 5.0);
        if let Json::Obj(pairs) = &mut b {
            pairs[0].1 = Json::Str("other".into());
        }
        assert!(diff_documents(&a, &b).is_err());
    }

    #[test]
    fn record_count_mismatch_is_reported() {
        let a = doc(1, 5.0);
        let mut b = doc(1, 5.0);
        if let Json::Obj(pairs) = &mut b {
            let recs = pairs.iter_mut().find(|(k, _)| k == "records").unwrap();
            if let Json::Arr(items) = &mut recs.1 {
                let extra = items[0].clone();
                items.push(extra);
            }
        }
        let d = diff_documents(&a, &b).unwrap();
        assert!(
            d.deltas.iter().any(|x| x.path == "records.len"),
            "{:?}",
            d.deltas
        );
    }

    #[test]
    fn threshold_parser_is_strict() {
        assert_eq!(parse_threshold("2.5"), Ok(2.5));
        assert_eq!(parse_threshold(" 0 "), Ok(0.0));
        assert!(parse_threshold("").is_err());
        assert!(parse_threshold("-1").is_err());
        assert!(parse_threshold("inf").is_err());
        assert!(parse_threshold("2%").is_err());
        assert!(parse_threshold("nan").is_err());
    }

    #[test]
    fn round_trip_through_text_stays_identical() {
        let a = doc(12345, 1.0);
        let text = a.to_json_pretty();
        let b = json::parse(&text).unwrap();
        let d = diff_documents(&a, &b).unwrap();
        assert!(d.deltas.is_empty(), "{:?}", d.deltas);
    }
}
