//! Conversion of `MORLOG_TRACE_DIR` JSONL event traces into Chrome
//! `trace_event` JSON, openable at <https://ui.perfetto.dev> — the
//! engine behind the `trace2perfetto` binary.
//!
//! The mapping (one simulated cycle is rendered as one microsecond,
//! since `trace_event` timestamps are µs):
//!
//! * `commit_phase` Begin→Complete pairs become `"X"` duration spans on
//!   the committing thread's track, named by transaction id. The
//!   Start→RecordPersisted window becomes a second span on a parallel
//!   `persist` track per thread — under delay-persistence it extends
//!   *past* the commit span, which makes the §III-C persistence lag
//!   directly visible in the UI.
//! * `wq_accept` events become one `"C"` counter track per memory
//!   channel (queue occupancy at each accept).
//! * `log_append` / `log_truncate` events become per-slice counter
//!   tracks of the live tail/head offsets.
//!
//! Everything else (word transitions, cache writebacks, recovery steps)
//! is ignored and counted, so the converter stays robust as new event
//! kinds appear. Begin events evicted from the trace ring leave
//! unmatched Complete events; those are skipped and counted too.

use std::collections::HashMap;

use crate::json::{self, Json};

/// Offset separating per-thread `persist` tracks from the commit
/// tracks in the synthetic thread-id space.
const PERSIST_TID_BASE: u64 = 100;

/// A conversion outcome: the Chrome `trace_event` document plus
/// counters describing what was (not) converted.
#[derive(Debug)]
pub struct Converted {
    /// The `{"traceEvents": [...]}` document.
    pub trace: Json,
    /// Commit duration spans emitted.
    pub spans: usize,
    /// Counter samples emitted.
    pub counter_events: usize,
    /// Events of kinds the converter does not map.
    pub ignored: usize,
    /// Commit-phase events whose opening phase was missing (ring
    /// eviction truncated the trace).
    pub unmatched: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct TxPhases {
    begin: Option<u64>,
    start: Option<u64>,
}

/// Converts one JSONL trace dump into a Chrome `trace_event` document.
///
/// # Errors
///
/// Returns a message naming the first malformed line; individually
/// well-formed lines of unknown event kinds are counted, not errors.
pub fn convert_jsonl(text: &str) -> Result<Converted, String> {
    let mut events: Vec<Json> = Vec::new();
    let mut spans = 0usize;
    let mut counter_events = 0usize;
    let mut ignored = 0usize;
    let mut unmatched = 0usize;
    // (thread, txid) -> open phase timestamps.
    let mut open: HashMap<(u64, u64), TxPhases> = HashMap::new();
    let mut threads_seen: Vec<u64> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let cycle = record
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: missing integer \"cycle\"", lineno + 1))?;
        let event = record
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string \"event\"", lineno + 1))?;
        match event {
            "commit_phase" => {
                let thread = field_u64(&record, "thread", lineno)?;
                let txid = field_u64(&record, "txid", lineno)?;
                let phase = record
                    .get("phase")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: missing string \"phase\"", lineno + 1))?
                    .to_string();
                if !threads_seen.contains(&thread) {
                    threads_seen.push(thread);
                }
                let entry = open.entry((thread, txid)).or_default();
                match phase.as_str() {
                    "begin" => entry.begin = Some(cycle),
                    "start" => entry.start = Some(cycle),
                    "record_persisted" => match entry.start.take() {
                        None => unmatched += 1,
                        Some(start) => {
                            events.push(span_event(
                                format!("persist tx{txid}"),
                                PERSIST_TID_BASE + thread,
                                start,
                                cycle,
                            ));
                            spans += 1;
                        }
                    },
                    "complete" => match entry.begin.take() {
                        None => unmatched += 1,
                        Some(begin) => {
                            events.push(span_event(format!("tx{txid}"), thread, begin, cycle));
                            spans += 1;
                        }
                    },
                    other => {
                        return Err(format!(
                            "line {}: unknown commit phase {other:?}",
                            lineno + 1
                        ))
                    }
                }
            }
            "wq_accept" => {
                let channel = field_u64(&record, "channel", lineno)?;
                let occupancy = field_u64(&record, "occupancy", lineno)?;
                events.push(counter_event(
                    format!("wq[ch{channel}]"),
                    "occupancy",
                    cycle,
                    occupancy,
                ));
                counter_events += 1;
            }
            "log_append" => {
                let slice = field_u64(&record, "slice", lineno)?;
                let offset = field_u64(&record, "offset", lineno)?;
                events.push(counter_event(
                    format!("log_tail[slice{slice}]"),
                    "offset",
                    cycle,
                    offset,
                ));
                counter_events += 1;
            }
            "log_truncate" => {
                let slice = field_u64(&record, "slice", lineno)?;
                let new_head = field_u64(&record, "new_head", lineno)?;
                events.push(counter_event(
                    format!("log_head[slice{slice}]"),
                    "offset",
                    cycle,
                    new_head,
                ));
                counter_events += 1;
            }
            _ => ignored += 1,
        }
    }

    // Name the synthetic threads so Perfetto shows "core N" / "persist
    // N" instead of bare tids.
    let mut meta = Vec::new();
    for &t in &threads_seen {
        meta.push(thread_name_event(t, format!("core {t}")));
        meta.push(thread_name_event(
            PERSIST_TID_BASE + t,
            format!("persist {t}"),
        ));
    }
    meta.extend(events);

    Ok(Converted {
        trace: Json::obj(vec![
            ("traceEvents", Json::Arr(meta)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ]),
        spans,
        counter_events,
        ignored,
        unmatched,
    })
}

fn field_u64(record: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    record
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing integer {key:?}", lineno + 1))
}

fn span_event(name: String, tid: u64, begin: u64, end: u64) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name)),
        ("cat", Json::Str("commit".into())),
        ("ph", Json::Str("X".into())),
        ("ts", Json::UInt(begin)),
        ("dur", Json::UInt(end.saturating_sub(begin).max(1))),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
    ])
}

fn counter_event(track: String, arg: &str, cycle: u64, value: u64) -> Json {
    Json::obj(vec![
        ("name", Json::Str(track)),
        ("ph", Json::Str("C".into())),
        ("ts", Json::UInt(cycle)),
        ("pid", Json::UInt(0)),
        ("args", Json::obj(vec![(arg, Json::UInt(value))])),
    ])
}

fn thread_name_event(tid: u64, name: String) -> Json {
    Json::obj(vec![
        ("name", Json::Str("thread_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj(vec![("name", Json::Str(name))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"cycle":10,"event":"commit_phase","thread":0,"txid":1,"phase":"begin"}
{"cycle":20,"event":"commit_phase","thread":0,"txid":1,"phase":"start"}
{"cycle":25,"event":"wq_accept","channel":2,"occupancy":7,"is_log":true}
{"cycle":30,"event":"log_append","slice":0,"offset":192,"kind":"commit","thread":0,"txid":1}
{"cycle":40,"event":"commit_phase","thread":0,"txid":1,"phase":"record_persisted"}
{"cycle":41,"event":"commit_phase","thread":0,"txid":1,"phase":"complete"}
{"cycle":45,"event":"word_transition","thread":0,"txid":1,"addr":64,"from":"dirty","to":"urlog"}
"#;

    #[test]
    fn converts_spans_and_counters() {
        let c = convert_jsonl(SAMPLE).unwrap();
        assert_eq!(c.spans, 2, "commit span + persist span");
        assert_eq!(c.counter_events, 2, "wq + log_tail");
        assert_eq!(c.ignored, 1, "word_transition is not mapped");
        assert_eq!(c.unmatched, 0);
        let events = c.trace.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 thread_name metadata + 2 spans + 2 counters.
        assert_eq!(events.len(), 6);
        let text = c.trace.to_json();
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"name\":\"tx1\""));
        assert!(text.contains("\"name\":\"persist tx1\""));
        assert!(text.contains("\"name\":\"wq[ch2]\""));
    }

    #[test]
    fn dp_inverted_order_still_produces_both_spans() {
        // Under delay-persistence Complete precedes RecordPersisted.
        let dp = r#"{"cycle":10,"event":"commit_phase","thread":1,"txid":7,"phase":"begin"}
{"cycle":12,"event":"commit_phase","thread":1,"txid":7,"phase":"start"}
{"cycle":12,"event":"commit_phase","thread":1,"txid":7,"phase":"complete"}
{"cycle":90,"event":"commit_phase","thread":1,"txid":7,"phase":"record_persisted"}
"#;
        let c = convert_jsonl(dp).unwrap();
        assert_eq!(c.spans, 2);
        assert_eq!(c.unmatched, 0);
        let text = c.trace.to_json();
        // The persist span covers cycles 12..90 — longer than commit.
        assert!(text.contains("\"dur\":78"));
    }

    #[test]
    fn truncated_trace_counts_unmatched() {
        // A Complete whose Begin was evicted from the ring.
        let truncated =
            r#"{"cycle":41,"event":"commit_phase","thread":0,"txid":9,"phase":"complete"}"#;
        let c = convert_jsonl(truncated).unwrap();
        assert_eq!(c.spans, 0);
        assert_eq!(c.unmatched, 1);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(convert_jsonl("{\"cycle\":1}").is_err());
        assert!(convert_jsonl("not json").is_err());
        assert!(convert_jsonl("").unwrap().spans == 0);
    }
}
