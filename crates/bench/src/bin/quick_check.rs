//! Quick sanity harness: per-design throughput/traffic/energy on one workload.
use morlog_bench::results::ResultSink;
use morlog_bench::{print_commit_latency_table, print_stall_breakdown, RunSpec, SweepRunner};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let kind = match args.get(2).map(|s| s.as_str()) {
        Some("tpcc") => WorkloadKind::Tpcc,
        Some("hash") => WorkloadKind::Hash,
        Some("queue") => WorkloadKind::Queue,
        Some("btree") => WorkloadKind::BTree,
        Some("sps") => WorkloadKind::Sps,
        Some("echo") => WorkloadKind::Echo,
        _ => WorkloadKind::Hash,
    };
    let large = args.get(3).map(|s| s == "large").unwrap_or(false);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("quick_check", runner.jobs());
    let base = {
        let spec = RunSpec::new(DesignKind::FwbCrade, kind, txs);
        if large {
            spec.large()
        } else {
            spec
        }
    };
    let runs = runner.run_designs(&base);
    sink.push_runs(&runs);
    let base_tput = runs[0].report.throughput();
    let base_writes = runs[0].report.stats.mem.nvmm_writes;
    let base_energy = runs[0].report.stats.mem.write_energy_pj;
    for t in &runs {
        let stats = &t.report.stats;
        println!(
            "{:14} tput {:>8.3}x writes {:>6.3}x energy {:>6.3}x | cycles {:>10} entries {:>7} redo_cr {:>6} postc {:>6} coalesced {:>6} redo_disc {:>6} commit_stall {:>9} buf_stall {:>8} [{:?} host]",
            t.report.design.label(),
            t.report.throughput() / base_tput,
            stats.mem.nvmm_writes as f64 / base_writes as f64,
            stats.mem.write_energy_pj / base_energy,
            stats.cycles,
            stats.log.entries_written,
            stats.log.redo_created,
            stats.log.post_commit_redo,
            stats.log.coalesced,
            stats.log.redo_discarded,
            stats.log.commit_stall_cycles,
            stats.log.buffer_full_stall_cycles,
            t.wall,
        );
    }
    // Cycle-attribution breakdown (printed with tracing on or off — the
    // profiler always runs, so traced and untraced stdout stay identical).
    println!();
    let reports: Vec<_> = runs.iter().map(|t| t.report.clone()).collect();
    print_stall_breakdown(&reports);
    // Commit-latency distributions: under delay-persistence the
    // "complete" columns collapse to the commit request while the
    // "persist" columns keep the record-drain time (§III-C).
    println!();
    print_commit_latency_table(&reports);
    sink.finish();
}
