//! Quick sanity harness: per-design throughput/traffic/energy on one workload.
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, DatasetSize, WorkloadConfig, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let kind = match args.get(2).map(|s| s.as_str()) {
        Some("tpcc") => WorkloadKind::Tpcc,
        Some("hash") => WorkloadKind::Hash,
        Some("queue") => WorkloadKind::Queue,
        Some("btree") => WorkloadKind::BTree,
        Some("sps") => WorkloadKind::Sps,
        Some("echo") => WorkloadKind::Echo,
        _ => WorkloadKind::Hash,
    };
    let large = args.get(3).map(|s| s == "large").unwrap_or(false);
    let mut base_tput = 0.0;
    let mut base_writes = 0u64;
    let mut base_energy = 0.0;
    for design in DesignKind::ALL {
        let cfg = SystemConfig::for_design(design);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = kind.default_threads();
        wl.total_transactions = txs;
        wl.dataset = if large {
            DatasetSize::Large
        } else {
            DatasetSize::Small
        };
        let trace = generate(kind, &wl);
        let t0 = std::time::Instant::now();
        let mut sys = System::new(cfg.clone(), &trace);
        let stats = sys.run();
        let tput = stats.tx_per_second(cfg.cores.frequency);
        if design == DesignKind::FwbCrade {
            base_tput = tput;
            base_writes = stats.mem.nvmm_writes;
            base_energy = stats.mem.write_energy_pj;
        }
        println!(
            "{:14} tput {:>8.3}x writes {:>6.3}x energy {:>6.3}x | cycles {:>10} entries {:>7} redo_cr {:>6} postc {:>6} coalesced {:>6} redo_disc {:>6} commit_stall {:>9} buf_stall {:>8} [{:?} host]",
            design.label(),
            tput / base_tput,
            stats.mem.nvmm_writes as f64 / base_writes as f64,
            stats.mem.write_energy_pj / base_energy,
            stats.cycles,
            stats.log.entries_written,
            stats.log.redo_created,
            stats.log.post_commit_redo,
            stats.log.coalesced,
            stats.log.redo_discarded,
            stats.log.commit_stall_cycles,
            stats.log.buffer_full_stall_cycles,
            t0.elapsed(),
        );
    }
}
