//! §VI-E NVMM-latency sensitivity: normalized throughput as the cell write
//! latency scales x1..x32.
use morlog_bench::{run, scaled_txs, RunSpec};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn scale_from_env(cfg: &mut morlog_sim_core::SystemConfig) {
    cfg.mem.write_latency_scale = std::env::var("MORLOG_LAT_SCALE").unwrap().parse().unwrap();
}

fn main() {
    let txs = scaled_txs(1_200);
    println!("§VI-E — normalized throughput vs NVMM write-latency scale ({txs} transactions)");
    print!("{:<14}", "design");
    for s in [1, 2, 8, 32] {
        print!(" {:>9}x", s);
    }
    println!();
    for design in DesignKind::ALL {
        print!("{:<14}", design.label());
        for scale in [1u32, 2, 8, 32] {
            std::env::set_var("MORLOG_LAT_SCALE", scale.to_string());
            let mut ratios = Vec::new();
            for kind in WorkloadKind::MICRO {
                let r = run(&RunSpec::new(design, kind, txs).tweak(scale_from_env));
                let b = run(&RunSpec::new(DesignKind::FwbCrade, kind, txs).tweak(scale_from_env));
                ratios.push(r.normalized_throughput(&b));
            }
            print!(" {:>10.3}", geometric_mean(&ratios).unwrap_or(0.0));
        }
        println!();
    }
    println!("\npaper: the normalized results change by less than 1.9% across x1..x32 —");
    println!("NVMM write latency has negligible effect on MorLog's relative efficiency.");
}
