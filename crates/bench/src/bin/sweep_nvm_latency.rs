//! §VI-E NVMM-latency sensitivity: normalized throughput as the cell write
//! latency scales x1..x32.
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let txs = scaled_txs(1_200);
    let scales = [1u32, 2, 8, 32];
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("sweep_nvm_latency", runner.jobs());
    println!("§VI-E — normalized throughput vs NVMM write-latency scale ({txs} transactions)");
    print!("{:<14}", "design");
    for s in scales {
        print!(" {:>9}x", s);
    }
    println!();
    let designs = DesignKind::ALL;
    let kinds = WorkloadKind::MICRO;
    // The latency scale is captured by the tweak closure (the previous
    // environment-variable plumbing would race across sweep workers).
    let mut specs: Vec<RunSpec> = Vec::new();
    for &design in designs.iter() {
        for &scale in scales.iter() {
            for &kind in kinds.iter() {
                specs.push(
                    RunSpec::new(design, kind, txs)
                        .tweak(move |cfg| cfg.mem.write_latency_scale = scale.into()),
                );
            }
        }
    }
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    let idx = |di: usize, si: usize, ki: usize| (di * scales.len() + si) * kinds.len() + ki;
    for (di, design) in designs.iter().enumerate() {
        print!("{:<14}", design.label());
        for si in 0..scales.len() {
            let mut ratios = Vec::new();
            for ki in 0..kinds.len() {
                let r = &runs[idx(di, si, ki)].report;
                let b = &runs[idx(0, si, ki)].report;
                ratios.push(r.normalized_throughput(b));
            }
            print!(" {:>10.3}", geometric_mean(&ratios).unwrap_or(0.0));
        }
        println!();
    }
    println!("\npaper: the normalized results change by less than 1.9% across x1..x32 —");
    println!("NVMM write latency has negligible effect on MorLog's relative efficiency.");
    sink.finish();
}
