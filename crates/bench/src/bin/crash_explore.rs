//! Crash-point model checker gate: exhaustive persist-order exploration
//! over a tiny workload for every atomic-persistence design, plus the
//! mutation self-test that proves the checker has teeth.
//!
//! For each design the checker records the reference run's persist-event
//! schedule, prunes crash points whose persist-domain hash is unchanged,
//! and replays every surviving prefix — crash, hardened recovery, oracle
//! verification — twice per point (base + torn-drain fault variant). The
//! per-point replays are independent, so they fan out across the
//! `SweepRunner` worker pool; outcomes are merged back in enumeration
//! order, making the verdict table byte-identical for any shard count
//! (`MORLOG_CHECK_SHARDS`, default `MORLOG_JOBS`).
//!
//! The two sabotaged variants (drop the undo→data write-ahead fence; skip
//! the DP `ulog` winner bump) must each produce a minimized counterexample
//! whose JSONL trace lands in the shared counterexample sink
//! (`MORLOG_CX_DIR`, default `counterexamples/`; deduplicated by
//! persist-domain signature and capped by `MORLOG_CX_MAX`) for
//! `trace_lint` / `trace2perfetto`. A *real* design failing any crash
//! point also writes its counterexample — and, like a surviving mutant,
//! makes the gate exit non-zero.
//!
//! Env knobs: `MORLOG_CHECK_MAX_POINTS` caps exploration (a capped run is
//! reported but is no longer an exhaustiveness proof), `MORLOG_CHECK_SHARDS`
//! sets the fan-out; both exit 2 on malformed values, as does a malformed
//! `MORLOG_CX_MAX`.

use morlog_bench::cx::{persist_signature, CxSink};
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::SweepRunner;
use morlog_checker::{
    assemble, check_max_points_from_env, check_shards_from_env, double_store_trace, plan,
    run_point, torn_plan_for, CheckOptions, CheckPlan, CheckReport,
};
use morlog_sim::System;
use morlog_sim_core::{CheckMutation, DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind, WorkloadTrace};

/// The designs that guarantee atomic persistence (FWB-unsafe is excluded —
/// it cannot pass a crash sweep by construction, which is its point).
const DESIGNS: [DesignKind; 5] = [
    DesignKind::FwbCrade,
    DesignKind::FwbSlde,
    DesignKind::MorLogCrade,
    DesignKind::MorLogSlde,
    DesignKind::MorLogDp,
];

/// Smoke transactions: small enough that the exhaustive sweep stays a
/// few seconds per design, large enough to cover log growth, coalescing
/// and truncation.
const SMOKE_TXS: usize = 16;

fn smoke_trace(cfg: &SystemConfig) -> WorkloadTrace {
    let mut wl = WorkloadConfig::test_config(System::data_base(cfg));
    wl.total_transactions = SMOKE_TXS;
    generate(WorkloadKind::Hash, &wl)
}

/// Plans, fans the replays out over the worker pool, and merges in
/// enumeration order — the deterministic-sharding core of the gate.
fn explore(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    opts: &CheckOptions,
    runner: &SweepRunner,
) -> (CheckReport, CheckPlan) {
    let p = plan(cfg, trace, opts);
    let mut items: Vec<(u64, bool)> = Vec::with_capacity(p.points.len() * 2);
    for &n in &p.points {
        items.push((n, false));
        if opts.fault_variant {
            items.push((n, true));
        }
    }
    let outcomes = runner.map(&items, |&(n, torn)| {
        let fault = torn.then(|| torn_plan_for(opts.fault_seed, n));
        run_point(cfg, trace, n, fault)
    });
    let report = assemble(cfg, trace, opts, &p, outcomes);
    (report, p)
}

fn record(label: &str, workload: &str, mutation: &str, report: &CheckReport, passed: bool) -> Json {
    let s = &report.stats;
    Json::obj(vec![
        ("kind", Json::Str("crash_check".into())),
        ("design", Json::Str(label.into())),
        ("workload", Json::Str(workload.into())),
        ("mutation", Json::Str(mutation.into())),
        ("events", Json::UInt(s.events)),
        ("points_total", Json::UInt(s.points_total)),
        ("pruned", Json::UInt(s.pruned)),
        ("capped", Json::UInt(s.capped)),
        ("explored", Json::UInt(s.explored)),
        ("verified", Json::UInt(s.verified)),
        ("failures", Json::UInt(s.failures)),
        ("passed", Json::Bool(passed)),
    ])
}

fn print_row(label: &str, report: &CheckReport, verdict: &str) {
    let s = &report.stats;
    println!(
        "{label:>22} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {verdict:>8}",
        s.events, s.points_total, s.pruned, s.explored, s.verified, s.failures
    );
}

/// Routes a report's minimized counterexample into the shared sink,
/// keyed by the persist-domain signature of its crash point. Returns
/// whether the report had a counterexample at all (not whether the sink
/// admitted it — duplicates and the cap must not change the verdict).
fn sink_counterexample(sink: &mut CxSink, name: &str, report: &CheckReport, p: &CheckPlan) -> bool {
    let Some(cx) = &report.counterexample else {
        return false;
    };
    let signature = persist_signature(&p.samples, cx.point);
    sink.write(
        name,
        signature,
        &format!("point {}, {}", cx.point, cx.error),
        &cx.trace_jsonl,
    );
    true
}

fn main() {
    let shards = check_shards_from_env();
    let runner = shards.map_or_else(SweepRunner::from_env, SweepRunner::with_jobs);
    let opts = CheckOptions {
        max_points: check_max_points_from_env(),
        fault_variant: true,
        fault_seed: 0xC0FFEE,
        ..CheckOptions::default()
    };
    let mut cx_sink = CxSink::from_env();
    let mut sink = ResultSink::new("crash_explore", runner.jobs());
    let mut failed = false;

    println!(
        "crash explore: hash x {SMOKE_TXS} txs, {} designs + 2 mutants, torn variant on",
        DESIGNS.len()
    );
    println!(
        "{:>22} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "design", "events", "points", "pruned", "explored", "verified", "failures", "verdict"
    );

    for design in DESIGNS {
        let cfg = SystemConfig::for_design(design);
        let trace = smoke_trace(&cfg);
        let (report, p) = explore(&cfg, &trace, &opts, &runner);
        let passed = report.stats.failures == 0;
        if !passed {
            failed = true;
            if let Some(f) = report.failures.first() {
                eprintln!(
                    "FAIL: {} point={} torn={}: {}",
                    design.label(),
                    f.point,
                    f.torn_variant,
                    f.error.as_deref().unwrap_or("?")
                );
            }
            sink_counterexample(&mut cx_sink, design.label(), &report, &p);
        }
        print_row(design.label(), &report, if passed { "ok" } else { "FAIL" });
        sink.push(record(design.label(), "hash", "none", &report, passed));
    }

    // The mutation self-test: each sabotaged variant runs the crafted
    // double-store workload under the schedule that exposes it (see
    // crates/checker/tests/self_test.rs for why the periods differ) and
    // must yield a minimized counterexample.
    let mutants: [(DesignKind, CheckMutation, u64); 2] = [
        (DesignKind::MorLogSlde, CheckMutation::DropUndoFence, 16),
        (DesignKind::MorLogDp, CheckMutation::SkipUlogBump, 64),
    ];
    let base_opts = CheckOptions {
        max_points: opts.max_points,
        ..CheckOptions::default()
    };
    for (design, mutation, fwb_period) in mutants {
        let mut cfg = SystemConfig::for_design(design);
        cfg.hierarchy.force_write_back_period = fwb_period;
        cfg.mutation = mutation;
        let trace = double_store_trace(&cfg, 6);
        let (report, p) = explore(&cfg, &trace, &base_opts, &runner);
        let label = format!("{}+{}", design.label(), mutation.label());
        let caught =
            report.stats.failures > 0 && sink_counterexample(&mut cx_sink, &label, &report, &p);
        if !caught {
            failed = true;
            eprintln!("FAIL: mutant {label} was not caught — the checker has no teeth");
        }
        print_row(&label, &report, if caught { "caught" } else { "MISSED" });
        sink.push(record(
            design.label(),
            "double-store",
            mutation.label(),
            &report,
            caught,
        ));
    }

    sink.finish();
    if failed {
        std::process::exit(1);
    }
}
