//! Schema-aware perf-regression gate over `results/*.json` documents.
//!
//! ```text
//! bench_diff <baseline> <candidate> [--threshold <pct>]
//! ```
//!
//! `baseline` and `candidate` are either two JSON files or two
//! directories (compared pairwise by file name over their `.json`
//! intersection). Volatile fields (`wall_ms`, `git`, `jobs`) are
//! excluded; every other metric — counters, histogram buckets, series
//! samples — is compared exactly, and non-zero deltas are printed as
//! per-metric percentages.
//!
//! The threshold defaults to 2% and can be set with `--threshold` or
//! the `MORLOG_DIFF_THRESHOLD` environment variable (the flag wins).
//!
//! Exit codes: 0 — no delta beyond the threshold; 1 — a regression
//! tripped the threshold or the trees are structurally incomparable;
//! 2 — usage or malformed-input error (matching `MORLOG_TXS` /
//! `MORLOG_JOBS` strictness).

use std::path::{Path, PathBuf};

use morlog_bench::diff::{self, DocumentDiff, MetricDelta};
use morlog_bench::json;

fn usage() -> ! {
    eprintln!("usage: bench_diff <baseline> <candidate> [--threshold <pct>]");
    eprintln!("  baseline/candidate: results JSON files, or directories of them");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("error: --threshold needs a value");
                    std::process::exit(2);
                };
                match diff::parse_threshold(raw) {
                    Ok(v) => threshold = Some(v),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag:?}");
                std::process::exit(2);
            }
            path => {
                paths.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let threshold = threshold.unwrap_or_else(diff::threshold_from_env);
    let (base, cand) = (&paths[0], &paths[1]);

    let pairs = match (base.is_dir(), cand.is_dir()) {
        (true, true) => dir_pairs(base, cand),
        (false, false) => vec![(base.clone(), cand.clone())],
        _ => {
            eprintln!(
                "error: {} and {} must both be files or both be directories",
                base.display(),
                cand.display()
            );
            std::process::exit(2);
        }
    };
    if pairs.is_empty() {
        eprintln!("error: no common *.json files to compare");
        std::process::exit(1);
    }

    let mut failed = false;
    let mut total_compared = 0usize;
    let mut total_deltas = 0usize;
    for (b, c) in &pairs {
        match diff_files(b, c) {
            Err(e) => {
                println!("== {} vs {}: ERROR: {e}", b.display(), c.display());
                failed = true;
            }
            Ok(d) => {
                total_compared += d.compared;
                total_deltas += d.deltas.len();
                let regressions = d.regressions(threshold);
                println!(
                    "== {} vs {}: {} metrics compared, {} differ, {} beyond {threshold}%",
                    b.display(),
                    c.display(),
                    d.compared,
                    d.deltas.len(),
                    regressions.len()
                );
                for delta in &d.deltas {
                    print_delta(delta, delta.exceeds(threshold));
                }
                if !regressions.is_empty() {
                    failed = true;
                }
            }
        }
    }
    if failed {
        println!("FAIL: deltas beyond the {threshold}% threshold");
        std::process::exit(1);
    }
    println!("OK: {total_compared} metrics compared, {total_deltas} small deltas, none beyond {threshold}%");
}

fn print_delta(d: &MetricDelta, beyond: bool) {
    let marker = if beyond { "REGRESSION" } else { "delta" };
    let fmt = |v: Option<f64>| match v {
        None => "-".to_string(),
        Some(x) => format!("{x}"),
    };
    let pct = d.delta_pct();
    let pct_text = if pct.is_infinite() {
        "structural".to_string()
    } else {
        format!("{pct:+.3}%")
    };
    println!(
        "  {marker}: {} {} -> {} ({pct_text})",
        d.path,
        fmt(d.base),
        fmt(d.cand)
    );
}

fn diff_files(base: &Path, cand: &Path) -> Result<DocumentDiff, String> {
    let read = |p: &Path| -> Result<json::Json, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
    };
    diff::diff_documents(&read(base)?, &read(cand)?)
}

/// The `.json` files present in both directories, paired by file name
/// and sorted for deterministic output. Files present on only one side
/// are listed on stderr but do not fail the gate (bench binaries come
/// and go between baselines).
fn dir_pairs(base: &Path, cand: &Path) -> Vec<(PathBuf, PathBuf)> {
    let names = |dir: &Path| -> Vec<String> {
        let mut out: Vec<String> = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    };
    let base_names = names(base);
    let cand_names = names(cand);
    for n in &base_names {
        if !cand_names.contains(n) {
            eprintln!("note: {n} only in baseline {}", base.display());
        }
    }
    for n in &cand_names {
        if !base_names.contains(n) {
            eprintln!("note: {n} only in candidate {}", cand.display());
        }
    }
    base_names
        .into_iter()
        .filter(|n| cand_names.contains(n))
        .map(|n| (base.join(&n), cand.join(&n)))
        .collect()
}
