//! Fig. 16: normalized throughput vs thread count (micro-benchmark average,
//! small and large datasets).
use morlog_bench::{run, scaled_txs, RunSpec};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let threads_axis = [1usize, 2, 4, 8, 16];
    for (label, large, txs) in [
        ("(a) small dataset", false, scaled_txs(1_200)),
        ("(b) large dataset", true, scaled_txs(300)),
    ] {
        println!("Fig. 16{label} — normalized throughput vs thread count ({txs} transactions)");
        print!("{:<14}", "design");
        for t in threads_axis {
            print!(" {:>8}T", t);
        }
        println!();
        for design in DesignKind::ALL {
            print!("{:<14}", design.label());
            for &threads in &threads_axis {
                let mut ratios = Vec::new();
                for kind in WorkloadKind::MICRO {
                    let mut spec = RunSpec::new(design, kind, txs).threads(threads);
                    let mut base = RunSpec::new(DesignKind::FwbCrade, kind, txs).threads(threads);
                    if large {
                        spec = spec.large();
                        base = base.large();
                    }
                    if threads > 8 {
                        spec = spec.tweak(|cfg| cfg.cores.cores = 16);
                        base = base.tweak(|cfg| cfg.cores.cores = 16);
                    }
                    let r = run(&spec);
                    let b = run(&base);
                    ratios.push(r.normalized_throughput(&b));
                }
                print!(" {:>9.3}", geometric_mean(&ratios).unwrap_or(0.0));
            }
            println!();
        }
        println!();
    }
    println!("paper: MorLog keeps its lead as threads scale; large-dataset gains shrink");
    println!("beyond 4 threads as log entries are evicted before they can coalesce.");
}
