//! Fig. 16: normalized throughput vs thread count (micro-benchmark average,
//! small and large datasets).
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn spec_for(
    design: DesignKind,
    kind: WorkloadKind,
    txs: usize,
    threads: usize,
    large: bool,
) -> RunSpec {
    let mut spec = RunSpec::new(design, kind, txs).threads(threads);
    if large {
        spec = spec.large();
    }
    if threads > 8 {
        spec = spec.tweak(|cfg| cfg.cores.cores = 16);
    }
    spec
}

fn main() {
    let threads_axis = [1usize, 2, 4, 8, 16];
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig16_thread_sweep", runner.jobs());
    for (label, large, txs) in [
        ("(a) small dataset", false, scaled_txs(1_200)),
        ("(b) large dataset", true, scaled_txs(300)),
    ] {
        println!("Fig. 16{label} — normalized throughput vs thread count ({txs} transactions)");
        print!("{:<14}", "design");
        for &t in &threads_axis {
            // Column labels carry the *effective* thread count: a request
            // beyond the core count is clamped by the simulator, and the
            // table must say what actually ran.
            let eff = spec_for(DesignKind::FwbCrade, WorkloadKind::BTree, txs, t, large)
                .effective_threads();
            print!(" {:>8}T", eff);
        }
        println!();
        let designs = DesignKind::ALL;
        let kinds = WorkloadKind::MICRO;
        let mut specs: Vec<RunSpec> = Vec::new();
        for &design in designs.iter() {
            for &threads in &threads_axis {
                for &kind in kinds.iter() {
                    specs.push(spec_for(design, kind, txs, threads, large));
                }
            }
        }
        let runs = runner.run_specs(&specs);
        sink.push_runs(&runs);
        let idx =
            |di: usize, ti: usize, ki: usize| (di * threads_axis.len() + ti) * kinds.len() + ki;
        for (di, design) in designs.iter().enumerate() {
            print!("{:<14}", design.label());
            for ti in 0..threads_axis.len() {
                let mut ratios = Vec::new();
                for ki in 0..kinds.len() {
                    // FWB-CRADE is designs[0]: the baseline at the same
                    // thread count and workload.
                    let r = &runs[idx(di, ti, ki)].report;
                    let b = &runs[idx(0, ti, ki)].report;
                    ratios.push(r.normalized_throughput(b));
                }
                print!(" {:>9.3}", geometric_mean(&ratios).unwrap_or(0.0));
            }
            println!();
        }
        println!();
    }
    println!("paper: MorLog keeps its lead as threads scale; large-dataset gains shrink");
    println!("beyond 4 threads as log entries are evicted before they can coalesce.");
    sink.finish();
}
