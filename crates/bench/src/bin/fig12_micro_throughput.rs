//! Fig. 12: transaction throughput on the micro-benchmarks, normalized to
//! FWB-CRADE, for the small (a) and large (b) dataset sizes.
use morlog_bench::results::ResultSink;
use morlog_bench::{print_design_header, print_normalized_rows, scaled_txs, RunSpec, SweepRunner};
use morlog_sim::RunReport;
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig12_micro_throughput", runner.jobs());
    for (label, large, txs) in [
        ("(a) small dataset (64 B)", false, scaled_txs(2_000)),
        ("(b) large dataset (4 KB)", true, scaled_txs(400)),
    ] {
        println!("Fig. 12{label} — normalized transaction throughput ({txs} transactions)");
        print_design_header("workload");
        let specs: Vec<RunSpec> = WorkloadKind::MICRO
            .iter()
            .flat_map(|&kind| {
                DesignKind::ALL.iter().map(move |&design| {
                    let spec = RunSpec::new(design, kind, txs);
                    if large {
                        spec.large()
                    } else {
                        spec
                    }
                })
            })
            .collect();
        let runs = runner.run_specs(&specs);
        sink.push_runs(&runs);
        let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
        for (ki, kind) in WorkloadKind::MICRO.iter().enumerate() {
            let chunk = &runs[ki * DesignKind::ALL.len()..(ki + 1) * DesignKind::ALL.len()];
            let reports: Vec<RunReport> = chunk.iter().map(|t| t.report.clone()).collect();
            print_normalized_rows(kind.label(), &reports);
            for (d, r) in reports.iter().enumerate() {
                per_design[d].push(r.normalized_throughput(&reports[0]));
            }
        }
        print!("{:<14}", "Gmean");
        for series in &per_design {
            print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
        }
        println!("\n");
    }
    println!("paper: MorLog-SLDE outperforms MorLog-CRADE by 44.7% (small) / 63.4% (large);");
    println!("MorLog-DP adds up to 13.3%; overall MorLog improves on FWB-CRADE by 72.5%.");
    sink.finish();
}
