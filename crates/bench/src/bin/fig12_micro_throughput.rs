//! Fig. 12: transaction throughput on the micro-benchmarks, normalized to
//! FWB-CRADE, for the small (a) and large (b) dataset sizes.
use morlog_bench::{
    print_design_header, print_normalized_rows, run_all_designs, scaled_txs, RunSpec,
};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    for (label, large, txs) in [
        ("(a) small dataset (64 B)", false, scaled_txs(2_000)),
        ("(b) large dataset (4 KB)", true, scaled_txs(400)),
    ] {
        println!("Fig. 12{label} — normalized transaction throughput ({txs} transactions)");
        print_design_header("workload");
        let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
        for kind in WorkloadKind::MICRO {
            let mut spec = RunSpec::new(DesignKind::FwbCrade, kind, txs);
            if large {
                spec = spec.large();
            }
            let reports = run_all_designs(&spec);
            print_normalized_rows(kind.label(), &reports);
            for (d, r) in reports.iter().enumerate() {
                per_design[d].push(r.normalized_throughput(&reports[0]));
            }
        }
        print!("{:<14}", "Gmean");
        for series in &per_design {
            print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
        }
        println!("\n");
    }
    println!("paper: MorLog-SLDE outperforms MorLog-CRADE by 44.7% (small) / 63.4% (large);");
    println!("MorLog-DP adds up to 13.3%; overall MorLog improves on FWB-CRADE by 72.5%.");
}
