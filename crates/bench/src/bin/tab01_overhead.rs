//! Table I: hardware overhead of morphable logging, plus the §IV-C SLDE
//! overhead arithmetic.
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_encoding::overhead as slde;
use morlog_logging::overhead::HardwareOverhead;
use morlog_sim_core::LogConfig;

fn main() {
    // Pure arithmetic — nothing to sweep, but the numbers still land in
    // results/ alongside every other binary's records.
    let mut sink = ResultSink::new("tab01_overhead", 1);
    let o = HardwareOverhead::for_config(&LogConfig::default(), 16);
    println!("Table I — hardware overhead of morphable logging");
    println!("{:<28} {:>6} {:>18}", "component", "type", "size");
    println!(
        "{:<28} {:>6} {:>18}",
        "log head/tail registers",
        "FF",
        format!("{} bytes", o.log_registers_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "L1 cache extensions",
        "SRAM",
        format!("{} bits/line", o.l1_ext_bits_per_line)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "undo+redo buffer",
        "SRAM",
        format!("{} bytes", o.undo_redo_buffer_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "redo buffer",
        "SRAM",
        format!("{} bytes", o.redo_buffer_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "ulog counters (optional)",
        "FF",
        format!("{} bytes", o.ulog_counters_bytes)
    );
    sink.push(Json::obj(vec![
        ("kind", Json::Str("hardware_overhead".into())),
        (
            "log_registers_bytes",
            Json::UInt(o.log_registers_bytes as u64),
        ),
        (
            "l1_ext_bits_per_line",
            Json::UInt(o.l1_ext_bits_per_line as u64),
        ),
        (
            "undo_redo_buffer_bytes",
            Json::UInt(o.undo_redo_buffer_bytes as u64),
        ),
        ("redo_buffer_bytes", Json::UInt(o.redo_buffer_bytes as u64)),
        (
            "ulog_counters_bytes",
            Json::UInt(o.ulog_counters_bytes as u64),
        ),
    ]));
    println!();
    println!("SLDE capacity overheads (dirty flag, 1 flag bit per m bytes), §IV-C:");
    for m in [1u32, 2, 4] {
        println!(
            "  m={m}: undo+redo entry {:.3}%  redo entry {:.3}%  L1 line {:.3}%",
            slde::undo_redo_dirty_flag_overhead(m) * 100.0,
            slde::redo_dirty_flag_overhead(m) * 100.0,
            slde::l1_dirty_flag_overhead(m) * 100.0
        );
        sink.push(Json::obj(vec![
            ("kind", Json::Str("slde_flag_overhead".into())),
            ("m", Json::UInt(m.into())),
            (
                "undo_redo_fraction",
                Json::Num(slde::undo_redo_dirty_flag_overhead(m)),
            ),
            (
                "redo_fraction",
                Json::Num(slde::redo_dirty_flag_overhead(m)),
            ),
            ("l1_fraction", Json::Num(slde::l1_dirty_flag_overhead(m))),
        ]));
    }
    println!(
        "log-region flag overhead: {:.2}% (paper: <= 1.7%)",
        slde::log_region_flag_overhead() * 100.0
    );
    let synth = slde::SldeSynthesis::paper();
    println!(
        "SLDE codec synthesis (22 nm, carried constants): {:.1}K gates, <{}ns encode, {:.1}pJ/{:.1}pJ",
        synth.extra_gates / 1000.0,
        synth.encode_latency_ns,
        synth.encode_energy_pj,
        synth.decode_energy_pj
    );
    sink.push(Json::obj(vec![
        ("kind", Json::Str("slde_synthesis".into())),
        (
            "log_region_flag_fraction",
            Json::Num(slde::log_region_flag_overhead()),
        ),
        ("extra_gates", Json::Num(synth.extra_gates)),
        ("encode_latency_ns", Json::Num(synth.encode_latency_ns)),
        ("encode_energy_pj", Json::Num(synth.encode_energy_pj)),
        ("decode_energy_pj", Json::Num(synth.decode_energy_pj)),
    ]));
    sink.finish();
}
