//! Table I: hardware overhead of morphable logging, plus the §IV-C SLDE
//! overhead arithmetic.
use morlog_encoding::overhead as slde;
use morlog_logging::overhead::HardwareOverhead;
use morlog_sim_core::LogConfig;

fn main() {
    let o = HardwareOverhead::for_config(&LogConfig::default(), 16);
    println!("Table I — hardware overhead of morphable logging");
    println!("{:<28} {:>6} {:>18}", "component", "type", "size");
    println!(
        "{:<28} {:>6} {:>18}",
        "log head/tail registers",
        "FF",
        format!("{} bytes", o.log_registers_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "L1 cache extensions",
        "SRAM",
        format!("{} bits/line", o.l1_ext_bits_per_line)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "undo+redo buffer",
        "SRAM",
        format!("{} bytes", o.undo_redo_buffer_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "redo buffer",
        "SRAM",
        format!("{} bytes", o.redo_buffer_bytes)
    );
    println!(
        "{:<28} {:>6} {:>18}",
        "ulog counters (optional)",
        "FF",
        format!("{} bytes", o.ulog_counters_bytes)
    );
    println!();
    println!("SLDE capacity overheads (dirty flag, 1 flag bit per m bytes), §IV-C:");
    for m in [1u32, 2, 4] {
        println!(
            "  m={m}: undo+redo entry {:.3}%  redo entry {:.3}%  L1 line {:.3}%",
            slde::undo_redo_dirty_flag_overhead(m) * 100.0,
            slde::redo_dirty_flag_overhead(m) * 100.0,
            slde::l1_dirty_flag_overhead(m) * 100.0
        );
    }
    println!(
        "log-region flag overhead: {:.2}% (paper: <= 1.7%)",
        slde::log_region_flag_overhead() * 100.0
    );
    let synth = slde::SldeSynthesis::paper();
    println!(
        "SLDE codec synthesis (22 nm, carried constants): {:.1}K gates, <{}ns encode, {:.1}pJ/{:.1}pJ",
        synth.extra_gates / 1000.0,
        synth.encode_latency_ns,
        synth.encode_energy_pj,
        synth.decode_energy_pj
    );
}
