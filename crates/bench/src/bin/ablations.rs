//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. secure NVMM (§IV-D): SLDE under plaintext / DEUCE / full encryption;
//! 2. the redo-discard-on-LLC-eviction rule (§III-B) on vs off;
//! 3. the eager-eviction window N of the undo+redo buffer;
//! 4. the force-write-back period (§III-F).
use morlog_encoding::secure::SecureMode;
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn txs() -> usize {
    morlog_bench::scaled_txs(1_500)
}

fn run_with(
    design: DesignKind,
    kind: WorkloadKind,
    secure: SecureMode,
    tweak: impl Fn(&mut SystemConfig),
) -> morlog_sim_core::SimStats {
    let mut cfg = SystemConfig::for_design(design);
    tweak(&mut cfg);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.threads = kind.default_threads().min(cfg.cores.cores);
    wl.total_transactions = txs();
    let trace = generate(kind, &wl);
    System::with_options(cfg, &trace, true, secure).run()
}

fn main() {
    // FWB-SLDE on SPS: the workload whose log data are mostly clean, so the
    // word-granularity re-encryption of DEUCE (silent words keep their
    // ciphertext, silent discarding still works) separates from whole-line
    // re-encryption (everything diffuses, nothing is discardable).
    println!(
        "Ablation 1 — secure NVMM (§IV-D), FWB-SLDE on SPS ({} txs)",
        txs()
    );
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "mode", "log bits", "write energy", "silent"
    );
    let mut base_bits = 0u64;
    for mode in [SecureMode::None, SecureMode::Deuce, SecureMode::Full] {
        let s = run_with(DesignKind::FwbSlde, WorkloadKind::Sps, mode, |_| {});
        if mode == SecureMode::None {
            base_bits = s.mem.log_bits_programmed;
        }
        println!(
            "{:<18} {:>11.3}x {:>13.3}uJ {:>12}",
            mode.label(),
            s.mem.log_bits_programmed as f64 / base_bits as f64,
            s.mem.write_energy_pj / 1e6,
            s.log.silent_discarded
        );
    }
    println!("(paper §IV-D: with DEUCE-style schemes SLDE still avoids logging clean data)\n");

    println!("Ablation 2 — redo discard on LLC eviction (§III-B), MorLog-SLDE on Echo");
    for (label, on) in [("discard on", true), ("discard off", false)] {
        let s = run_with(
            DesignKind::MorLogSlde,
            WorkloadKind::Echo,
            SecureMode::None,
            |c| {
                c.log.discard_redo_on_llc_evict = on;
                // A small LLC forces evictions mid-transaction, the case the
                // discard rule exists for.
                c.hierarchy.l3.capacity_bytes = 64 * 1024;
                c.hierarchy.l2.capacity_bytes = 16 * 1024;
                c.hierarchy.l1.capacity_bytes = 8 * 1024;
            },
        );
        println!(
            "  {:<12} NVMM writes {:>8}  redo discarded {:>6}  cycles {:>10}",
            label, s.mem.nvmm_writes, s.log.redo_discarded, s.cycles
        );
    }
    println!();

    println!("Ablation 3 — eager-eviction window N (must stay < 40-cycle traversal)");
    for n in [4u64, 8, 16, 32] {
        let s = run_with(
            DesignKind::MorLogSlde,
            WorkloadKind::Tpcc,
            SecureMode::None,
            |c| {
                c.log.eager_evict_cycles = n;
            },
        );
        println!(
            "  N={:<3} entries {:>8}  coalesced {:>7}  cycles {:>10}",
            n, s.log.entries_written, s.log.coalesced, s.cycles
        );
    }
    println!();

    println!("Ablation 4 — force-write-back period (§III-F)");
    for period in [20_000u64, 60_000, 300_000] {
        let s = run_with(
            DesignKind::MorLogSlde,
            WorkloadKind::Ycsb,
            SecureMode::None,
            |c| {
                c.hierarchy.force_write_back_period = period;
            },
        );
        println!(
            "  period={:<9} data writes {:>8}  cycles {:>10}",
            period, s.mem.data_writes, s.cycles
        );
    }
    println!();

    println!("Ablation 5 — centralized vs distributed logs (§III-F), MorLog-DP on TPCC");
    for slices in [1usize, 4, 16] {
        std::env::set_var("MORLOG_SLICES", slices.to_string());
        let s = run_with(
            DesignKind::MorLogDp,
            WorkloadKind::Tpcc,
            SecureMode::None,
            |c| {
                c.mem.log_slices = std::env::var("MORLOG_SLICES").unwrap().parse().unwrap();
            },
        );
        println!(
            "  slices={:<3} cycles {:>10}  entries {:>8}  commit records {:>6}",
            slices, s.cycles, s.log.entries_written, s.log.commit_records
        );
    }
    println!("(per-thread logs localize appends; commit order rides in the timestamps)");
}
