//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. secure NVMM (§IV-D): SLDE under plaintext / DEUCE / full encryption;
//! 2. the redo-discard-on-LLC-eviction rule (§III-B) on vs off;
//! 3. the eager-eviction window N of the undo+redo buffer;
//! 4. the force-write-back period (§III-F);
//! 5. centralized vs distributed logs (§III-F).
//!
//! Each section is a small sweep; all parameters are captured by tweak
//! closures so the runs are self-contained under a parallel sweep.
use morlog_bench::results::ResultSink;
use morlog_bench::{RunSpec, SweepRunner, TimedRun};
use morlog_encoding::secure::SecureMode;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn txs() -> usize {
    morlog_bench::scaled_txs(1_500)
}

fn main() {
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("ablations", runner.jobs());

    // FWB-SLDE on SPS: the workload whose log data are mostly clean, so the
    // word-granularity re-encryption of DEUCE (silent words keep their
    // ciphertext, silent discarding still works) separates from whole-line
    // re-encryption (everything diffuses, nothing is discardable).
    println!(
        "Ablation 1 — secure NVMM (§IV-D), FWB-SLDE on SPS ({} txs)",
        txs()
    );
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "mode", "log bits", "write energy", "silent"
    );
    let modes = [SecureMode::None, SecureMode::Deuce, SecureMode::Full];
    let specs: Vec<RunSpec> = modes
        .iter()
        .map(|&mode| RunSpec::new(DesignKind::FwbSlde, WorkloadKind::Sps, txs()).secure(mode))
        .collect();
    let runs: Vec<TimedRun> = runner.run_specs(&specs);
    sink.push_runs(&runs);
    let base_bits = runs[0].report.stats.mem.log_bits_programmed;
    for (mode, t) in modes.iter().zip(&runs) {
        let s = &t.report.stats;
        println!(
            "{:<18} {:>11.3}x {:>13.3}uJ {:>12}",
            mode.label(),
            s.mem.log_bits_programmed as f64 / base_bits as f64,
            s.mem.write_energy_pj / 1e6,
            s.log.silent_discarded
        );
    }
    println!("(paper §IV-D: with DEUCE-style schemes SLDE still avoids logging clean data)\n");

    println!("Ablation 2 — redo discard on LLC eviction (§III-B), MorLog-SLDE on Echo");
    let cases = [("discard on", true), ("discard off", false)];
    let specs: Vec<RunSpec> = cases
        .iter()
        .map(|&(_, on)| {
            RunSpec::new(DesignKind::MorLogSlde, WorkloadKind::Echo, txs()).tweak(move |c| {
                c.log.discard_redo_on_llc_evict = on;
                // A small LLC forces evictions mid-transaction, the case the
                // discard rule exists for.
                c.hierarchy.l3.capacity_bytes = 64 * 1024;
                c.hierarchy.l2.capacity_bytes = 16 * 1024;
                c.hierarchy.l1.capacity_bytes = 8 * 1024;
            })
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    for ((label, _), t) in cases.iter().zip(&runs) {
        let s = &t.report.stats;
        println!(
            "  {:<12} NVMM writes {:>8}  redo discarded {:>6}  cycles {:>10}",
            label, s.mem.nvmm_writes, s.log.redo_discarded, s.cycles
        );
    }
    println!();

    println!("Ablation 3 — eager-eviction window N (must stay < 40-cycle traversal)");
    let windows = [4u64, 8, 16, 32];
    let specs: Vec<RunSpec> = windows
        .iter()
        .map(|&n| {
            RunSpec::new(DesignKind::MorLogSlde, WorkloadKind::Tpcc, txs())
                .tweak(move |c| c.log.eager_evict_cycles = n)
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    for (n, t) in windows.iter().zip(&runs) {
        let s = &t.report.stats;
        println!(
            "  N={:<3} entries {:>8}  coalesced {:>7}  cycles {:>10}",
            n, s.log.entries_written, s.log.coalesced, s.cycles
        );
    }
    println!();

    println!("Ablation 4 — force-write-back period (§III-F)");
    let periods = [20_000u64, 60_000, 300_000];
    let specs: Vec<RunSpec> = periods
        .iter()
        .map(|&period| {
            RunSpec::new(DesignKind::MorLogSlde, WorkloadKind::Ycsb, txs())
                .tweak(move |c| c.hierarchy.force_write_back_period = period)
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    for (period, t) in periods.iter().zip(&runs) {
        let s = &t.report.stats;
        println!(
            "  period={:<9} data writes {:>8}  cycles {:>10}",
            period, s.mem.data_writes, s.cycles
        );
    }
    println!();

    println!("Ablation 5 — centralized vs distributed logs (§III-F), MorLog-DP on TPCC");
    let slice_counts = [1usize, 4, 16];
    let specs: Vec<RunSpec> = slice_counts
        .iter()
        .map(|&slices| {
            RunSpec::new(DesignKind::MorLogDp, WorkloadKind::Tpcc, txs())
                .tweak(move |c| c.mem.log_slices = slices)
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    for (slices, t) in slice_counts.iter().zip(&runs) {
        let s = &t.report.stats;
        println!(
            "  slices={:<3} cycles {:>10}  entries {:>8}  commit records {:>6}",
            slices, s.cycles, s.log.entries_written, s.log.commit_records
        );
    }
    println!("(per-thread logs localize appends; commit order rides in the timestamps)");
    sink.finish();
}
