//! Schema checker for observability artifacts: validates JSONL event
//! traces (`MORLOG_TRACE_DIR` dumps) and schema-v3 `results/*.json`
//! documents — including the `stats.hist.*` commit-latency/entry-size
//! histograms and the `stats.series.*` sampled occupancy series that
//! v3 added (bucket sums, quantile ordering and series alignment are
//! all checked by `validate_document`).
//!
//! Usage: `trace_lint <path>...` — each path is a `.jsonl` trace, a
//! `.json` results document, or a directory scanned (non-recursively) for
//! both. Exits non-zero on the first malformed file, printing what was
//! wrong; prints a per-file summary otherwise. CI runs this over the
//! `quick_check` artifacts so a schema drift fails the build instead of
//! silently shipping unreadable dumps.

use morlog_bench::json::{parse, Json};
use morlog_bench::results::validate_document;

/// Event labels the simulator emits, with the extra fields each carries
/// (beyond the common `cycle` + `event`).
const EVENT_FIELDS: &[(&str, &[&str])] = &[
    ("log_append", &["slice", "offset", "kind", "thread", "txid"]),
    ("log_truncate", &["slice", "old_head", "new_head"]),
    ("word_transition", &["thread", "txid", "addr", "from", "to"]),
    ("wq_accept", &["channel", "occupancy", "is_log"]),
    ("wq_drain_start", &["channel", "occupancy"]),
    ("wq_drain_end", &["channel", "occupancy"]),
    ("commit_phase", &["thread", "txid", "phase"]),
    ("cache_writeback", &["level", "line"]),
    ("fwb_scan", &["writebacks"]),
    ("crash", &[]),
    ("recovery", &["step", "count"]),
];

fn lint_trace(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut last_cycle = 0u64;
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let obj = parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let cycle = obj
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {n}: missing integer \"cycle\""))?;
        if cycle < last_cycle {
            return Err(format!(
                "line {n}: cycle {cycle} goes backwards (previous {last_cycle})"
            ));
        }
        last_cycle = cycle;
        let event = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing string \"event\""))?;
        let fields = EVENT_FIELDS
            .iter()
            .find(|(label, _)| *label == event)
            .map(|(_, fields)| *fields)
            .ok_or_else(|| format!("line {n}: unknown event {event:?}"))?;
        for field in fields {
            if obj.get(field).is_none() {
                return Err(format!("line {n}: {event} is missing field {field:?}"));
            }
        }
        count += 1;
    }
    Ok(count)
}

fn lint_results(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse(&text)?;
    validate_document(&doc)?;
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    Ok(records)
}

fn lint_file(path: &std::path::Path) -> Result<(), String> {
    let ext = path.extension().and_then(|e| e.to_str());
    match ext {
        Some("jsonl") => {
            let events = lint_trace(path)?;
            println!("ok {} ({events} events)", path.display());
            Ok(())
        }
        Some("json") => {
            let records = lint_results(path)?;
            println!("ok {} ({records} records)", path.display());
            Ok(())
        }
        _ => Err("expected a .jsonl trace or a .json results document".to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace_lint <trace.jsonl | results.json | dir>...");
        std::process::exit(2);
    }
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for arg in &args {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let mut entries: Vec<_> = match std::fs::read_dir(&path) {
                Ok(rd) => rd
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        matches!(
                            p.extension().and_then(|e| e.to_str()),
                            Some("json" | "jsonl")
                        )
                    })
                    .collect(),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            entries.sort();
            if entries.is_empty() {
                eprintln!("error: {}: no .json/.jsonl files", path.display());
                std::process::exit(2);
            }
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    let mut failed = false;
    for path in &files {
        if let Err(e) = lint_file(path) {
            eprintln!("error: {}: {e}", path.display());
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
