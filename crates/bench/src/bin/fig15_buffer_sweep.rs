//! Fig. 15: transaction throughput and NVMM write traffic vs the undo+redo
//! buffer size, for several redo-buffer sizes (Echo benchmark).
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let txs = scaled_txs(1_500);
    let ur_sizes = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let redo_sizes = [2usize, 8, 32, 128];
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig15_buffer_sweep", runner.jobs());
    println!("Fig. 15 — MorLog-SLDE on Echo vs log buffer sizes ({txs} transactions)");
    println!("normalized to Redo002 with a 1-entry undo+redo buffer\n");
    // Buffer sizes are captured by the tweak closures — no environment
    // round-trip, so sweep points are self-contained and can run on any
    // worker thread.
    let specs: Vec<RunSpec> = redo_sizes
        .iter()
        .flat_map(|&redo| {
            ur_sizes.iter().map(move |&ur| {
                RunSpec::new(DesignKind::MorLogSlde, WorkloadKind::Echo, txs).tweak(move |cfg| {
                    cfg.log.undo_redo_entries = ur;
                    cfg.log.redo_entries = redo;
                })
            })
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    let mut results: Vec<(usize, usize, f64, u64)> = Vec::new();
    for (i, t) in runs.iter().enumerate() {
        let redo = redo_sizes[i / ur_sizes.len()];
        let ur = ur_sizes[i % ur_sizes.len()];
        results.push((
            redo,
            ur,
            t.report.throughput(),
            t.report.stats.mem.nvmm_writes,
        ));
    }
    let (base_tput, base_writes) = {
        let r = results
            .iter()
            .find(|&&(redo, ur, _, _)| redo == 2 && ur == 1)
            .unwrap();
        (r.2, r.3)
    };
    println!("(a) normalized transaction throughput");
    print!("{:<10}", "ur size");
    for ur in ur_sizes {
        print!(" {:>8}", ur);
    }
    println!();
    for &redo in &redo_sizes {
        print!("Redo{redo:0>3}   ");
        for &ur in &ur_sizes {
            let r = results
                .iter()
                .find(|&&(rd, u, _, _)| rd == redo && u == ur)
                .unwrap();
            print!(" {:>8.3}", r.2 / base_tput);
        }
        println!();
    }
    println!("\n(b) normalized NVMM write traffic");
    print!("{:<10}", "ur size");
    for ur in ur_sizes {
        print!(" {:>8}", ur);
    }
    println!();
    for &redo in &redo_sizes {
        print!("Redo{redo:0>3}   ");
        for &ur in &ur_sizes {
            let r = results
                .iter()
                .find(|&&(rd, u, _, _)| rd == redo && u == ur)
                .unwrap();
            print!(" {:>8.3}", r.3 as f64 / base_writes as f64);
        }
        println!();
    }
    println!("\npaper: write traffic falls as the undo+redo buffer grows; throughput rises");
    println!("then drops (longer commit latency); 16-entry undo+redo + 32-entry redo is the");
    println!("chosen performance/hardware-cost trade-off.");
    sink.finish();
}
