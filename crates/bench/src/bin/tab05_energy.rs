//! Table V: NVMM write-energy reduction vs FWB-CRADE (micro-benchmark
//! average, small and large datasets).
use morlog_bench::{run_all_designs, scaled_txs, RunSpec};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    println!("Table V — NVMM write-energy reduction vs FWB-CRADE (micro average)");
    println!(
        "{:<8} {:>11} {:>10} {:>13} {:>12} {:>10}",
        "dataset", "FWB-Unsafe", "FWB-SLDE", "MorLog-CRADE", "MorLog-SLDE", "MorLog-DP"
    );
    for (label, large, txs) in [
        ("Small", false, scaled_txs(2_000)),
        ("Large", true, scaled_txs(400)),
    ] {
        let mut sums = vec![0.0f64; DesignKind::ALL.len()];
        for kind in WorkloadKind::MICRO {
            let mut spec = RunSpec::new(DesignKind::FwbCrade, kind, txs);
            if large {
                spec = spec.large();
            }
            let reports = run_all_designs(&spec);
            for (d, r) in reports.iter().enumerate() {
                sums[d] += r.energy_reduction_pct(&reports[0]) / WorkloadKind::MICRO.len() as f64;
            }
        }
        println!(
            "{:<8} {:>10.1}% {:>9.1}% {:>12.1}% {:>11.1}% {:>9.1}%",
            label, sums[1], sums[2], sums[3], sums[4], sums[5]
        );
    }
    println!("\npaper:   Small: 0.6% / 39.5% / 2.1% / 43.7% / 45.9%");
    println!("         Large: 1.6% / 30.3% / 4.3% / 34.6% / 36.0%");
}
