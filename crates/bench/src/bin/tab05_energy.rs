//! Table V: NVMM write-energy reduction vs FWB-CRADE (micro-benchmark
//! average, small and large datasets).
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("tab05_energy", runner.jobs());
    println!("Table V — NVMM write-energy reduction vs FWB-CRADE (micro average)");
    println!(
        "{:<8} {:>11} {:>10} {:>13} {:>12} {:>10}",
        "dataset", "FWB-Unsafe", "FWB-SLDE", "MorLog-CRADE", "MorLog-SLDE", "MorLog-DP"
    );
    for (label, large, txs) in [
        ("Small", false, scaled_txs(2_000)),
        ("Large", true, scaled_txs(400)),
    ] {
        let specs: Vec<RunSpec> = WorkloadKind::MICRO
            .iter()
            .flat_map(|&kind| {
                DesignKind::ALL.iter().map(move |&design| {
                    let spec = RunSpec::new(design, kind, txs);
                    if large {
                        spec.large()
                    } else {
                        spec
                    }
                })
            })
            .collect();
        let runs = runner.run_specs(&specs);
        sink.push_runs(&runs);
        let mut sums = vec![0.0f64; DesignKind::ALL.len()];
        for ki in 0..WorkloadKind::MICRO.len() {
            let chunk = &runs[ki * DesignKind::ALL.len()..(ki + 1) * DesignKind::ALL.len()];
            for (d, t) in chunk.iter().enumerate() {
                sums[d] += t.report.energy_reduction_pct(&chunk[0].report)
                    / WorkloadKind::MICRO.len() as f64;
            }
        }
        println!(
            "{:<8} {:>10.1}% {:>9.1}% {:>12.1}% {:>11.1}% {:>9.1}%",
            label, sums[1], sums[2], sums[3], sums[4], sums[5]
        );
    }
    println!("\npaper:   Small: 0.6% / 39.5% / 2.1% / 43.7% / 45.9%");
    println!("         Large: 1.6% / 30.3% / 4.3% / 34.6% / 36.0%");
    sink.finish();
}
