//! Table II: percentage of dirty log data compressed by each DLDC pattern.
use morlog_analysis::patterns::PatternStats;
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, SweepRunner};
use morlog_encoding::dldc::DldcPattern;
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{cached_generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("tab02_dldc_patterns", runner.jobs());
    println!("Table II — DLDC data-pattern coverage of dirty log data");
    println!("(averaged over all workloads, {txs} transactions each)\n");
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    let data_base = System::data_base(&cfg);
    let profiles = runner.map(&WorkloadKind::ALL, |&kind| {
        let wl = WorkloadConfig {
            threads: kind.default_threads(),
            total_transactions: txs,
            dataset: morlog_workloads::DatasetSize::Small,
            seed: 42,
            data_base,
        };
        let trace = cached_generate(kind, &wl);
        PatternStats::profile(&trace)
    });
    let mut sums = std::collections::HashMap::new();
    let n = WorkloadKind::ALL.len() as f64;
    for (kind, s) in WorkloadKind::ALL.iter().zip(&profiles) {
        let mut record_fields = vec![
            ("kind", Json::Str("dldc_patterns".into())),
            ("workload", Json::Str(kind.label().into())),
            ("transactions", Json::UInt(txs as u64)),
        ];
        let mut pattern_fields = Vec::new();
        for p in DldcPattern::TABLE_II
            .iter()
            .chain([DldcPattern::Raw].iter())
        {
            *sums.entry(format!("{p:?}")).or_insert(0.0) += s.fraction(*p) / n;
            pattern_fields.push((format!("{p:?}"), Json::Num(s.fraction(*p))));
        }
        *sums.entry("coverage".to_string()).or_insert(0.0) += s.pattern_coverage() / n;
        record_fields.push(("patterns", Json::Obj(pattern_fields)));
        record_fields.push(("coverage", Json::Num(s.pattern_coverage())));
        sink.push(Json::obj(record_fields));
    }
    let paper = [
        ("AllZero", 9.3),
        ("SignExt2PerByte", 4.5),
        ("SignExt4PerByte", 5.9),
        ("SignExt1Byte", 4.4),
        ("SignExt2Byte", 1.4),
        ("SignExt4Byte", 3.8),
        ("NibblePadded", 10.4),
        ("LsByteZero", 2.8),
    ];
    println!("{:<18} {:>9} {:>9}", "pattern", "measured", "paper");
    for (name, paper_pct) in paper {
        println!(
            "{:<18} {:>8.1}% {:>8.1}%",
            name,
            sums[name] * 100.0,
            paper_pct
        );
    }
    println!(
        "{:<18} {:>8.1}% {:>8.1}%",
        "cumulative",
        sums["coverage"] * 100.0,
        42.5
    );
    println!("{:<18} {:>8.1}%", "raw (escape)", sums["Raw"] * 100.0);
    sink.finish();
}
