//! Table II: percentage of dirty log data compressed by each DLDC pattern.
use morlog_analysis::patterns::PatternStats;
use morlog_bench::scaled_txs;
use morlog_encoding::dldc::DldcPattern;
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    println!("Table II — DLDC data-pattern coverage of dirty log data");
    println!("(averaged over all workloads, {txs} transactions each)\n");
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    let mut sums = std::collections::HashMap::new();
    let n = WorkloadKind::ALL.len() as f64;
    for kind in WorkloadKind::ALL {
        let wl = WorkloadConfig {
            threads: kind.default_threads(),
            total_transactions: txs,
            dataset: morlog_workloads::DatasetSize::Small,
            seed: 42,
            data_base: System::data_base(&cfg),
        };
        let trace = generate(kind, &wl);
        let s = PatternStats::profile(&trace);
        for p in DldcPattern::TABLE_II
            .iter()
            .chain([DldcPattern::Raw].iter())
        {
            *sums.entry(format!("{p:?}")).or_insert(0.0) += s.fraction(*p) / n;
        }
        *sums.entry("coverage".to_string()).or_insert(0.0) += s.pattern_coverage() / n;
    }
    let paper = [
        ("AllZero", 9.3),
        ("SignExt2PerByte", 4.5),
        ("SignExt4PerByte", 5.9),
        ("SignExt1Byte", 4.4),
        ("SignExt2Byte", 1.4),
        ("SignExt4Byte", 3.8),
        ("NibblePadded", 10.4),
        ("LsByteZero", 2.8),
    ];
    println!("{:<18} {:>9} {:>9}", "pattern", "measured", "paper");
    for (name, paper_pct) in paper {
        println!(
            "{:<18} {:>8.1}% {:>8.1}%",
            name,
            sums[name] * 100.0,
            paper_pct
        );
    }
    println!(
        "{:<18} {:>8.1}% {:>8.1}%",
        "cumulative",
        sums["coverage"] * 100.0,
        42.5
    );
    println!("{:<18} {:>8.1}%", "raw (escape)", sums["Raw"] * 100.0);
}
