//! Fuzz-scale crash checking gate: coverage-guided random crash+fault
//! campaigns plus differential cross-design verification.
//!
//! Where `crash_explore` exhaustively sweeps a 16-transaction workload,
//! this gate *samples* crash points on workloads an order of magnitude
//! larger. Each design runs a seeded campaign ([`morlog_checker::fuzz`]):
//! points are drawn uniformly over the persist-event schedule, paired with
//! a fault variant (none / torn drain / crash-time bit flip / stuck-at
//! wear), pruned when the persist-domain hash proves the point redundant,
//! and resampled around draws that light a novel `(event kind, progress
//! decile)` coverage bucket. The plan is built serially; execution fans
//! out over the `SweepRunner` pool with input-order reassembly, so the
//! verdict table and `results/crash_fuzz.json` are byte-identical for any
//! `MORLOG_CHECK_SHARDS` setting.
//!
//! Teeth: the two `crash_explore` sabotages (dropped undo→data fence,
//! skipped DP `ulog` bump) must be caught by the *random* mode on a
//! 500-transaction workload, and the redo-value skew — invisible to a
//! single design's oracle sweep here — must be pinned to the mutated
//! design by the differential mode, which crashes two designs at matched
//! persist-progress fractions and compares recovered program-visible
//! state. A real design failing any sampled point, or a mutant escaping,
//! makes the gate exit non-zero; minimized counterexamples land in the
//! shared sink (`MORLOG_CX_DIR`, deduplicated by persist-domain
//! signature, capped by `MORLOG_CX_MAX`).
//!
//! Env knobs: `MORLOG_FUZZ_POINTS` sets the base draws per campaign
//! (deterministic sizing, used by the CI smoke and shard-diff jobs);
//! `MORLOG_FUZZ_BUDGET_MS` adds wall-clock-budgeted extra rounds with
//! derived seeds (the nightly deep run — round *counts* are then
//! time-dependent, so the shard-diff comparison never sets it);
//! `MORLOG_CHECK_SHARDS` sets the fan-out. All three exit 2 on malformed
//! values, as does a malformed `MORLOG_CX_MAX`.

use morlog_bench::cx::{persist_signature, CxSink};
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::SweepRunner;
use morlog_checker::differential::{assemble_diff, diff_plan, run_diff_pair};
use morlog_checker::fuzz::{assemble_fuzz, fuzz_plan, run_fuzz_item};
use morlog_checker::{
    check_shards_from_env, double_store_trace, fuzz_budget_ms_from_env, fuzz_points_from_env,
    DiffCulprit, DiffReport, FuzzCounterexample, FuzzOptions,
};
use morlog_sim::System;
use morlog_sim_core::{CheckMutation, DesignKind, FuzzStats, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind, WorkloadTrace};
use std::time::Instant;

/// The designs that guarantee atomic persistence (FWB-unsafe is excluded —
/// it cannot pass a crash sweep by construction, which is its point).
const DESIGNS: [DesignKind; 5] = [
    DesignKind::FwbCrade,
    DesignKind::FwbSlde,
    DesignKind::MorLogCrade,
    DesignKind::MorLogSlde,
    DesignKind::MorLogDp,
];

/// Hash-workload transactions for the clean-design campaigns: an order of
/// magnitude past the exhaustive gate's 16, small enough that one replay
/// stays well under a second in release builds.
const DESIGN_TXS: usize = 200;

/// Per-thread transactions for the mutant campaigns (double-store trace,
/// two threads — a 500-transaction workload, as the teeth test in
/// `crates/checker/tests/fuzz_test.rs` pins).
const MUTANT_TXS_PER_THREAD: usize = 250;

/// Per-thread transactions for the differential runs. Each crash pair
/// replays *two* full schedules, so the differential workload stays small;
/// the redo-value skew corrupts every sync-commit redo record, which makes
/// divergence dense enough for a short trace to expose.
const DIFF_TXS_PER_THREAD: usize = 6;

/// Matched-fraction crash pairs per differential run.
const DIFF_PAIRS: u64 = 8;

/// Base draws per campaign when `MORLOG_FUZZ_POINTS` is unset: enough for
/// the mutant campaigns to fail dense (the teeth test catches both
/// sabotages at 6), cheap enough for the per-PR smoke job.
const DEFAULT_POINTS: u64 = 8;

/// Campaign count the wall-clock budget is split across (5 designs + 2
/// mutants; the differential runs are not round-based).
const CAMPAIGNS: u64 = 7;

fn design_trace(cfg: &SystemConfig) -> WorkloadTrace {
    let mut wl = WorkloadConfig::test_config(System::data_base(cfg));
    wl.total_transactions = DESIGN_TXS;
    generate(WorkloadKind::Hash, &wl)
}

/// A campaign's merged verdict across its budgeted rounds.
struct CampaignResult {
    stats: FuzzStats,
    coverage: u64,
    counterexample: Option<FuzzCounterexample>,
    /// Reference-run hash samples (identical every round) for
    /// counterexample signatures.
    samples: Vec<u64>,
    rounds: u64,
}

/// Runs one campaign: round 0 uses the base seed (the deterministic smoke
/// and shard-diff configuration), and — only when a wall-clock budget is
/// given — further rounds with derived seeds keep sampling until the
/// budget is spent or a counterexample appears. Stats merge across
/// rounds; coverage reports the best round (the map restarts per round).
fn run_campaign(
    cfg: &SystemConfig,
    trace: &WorkloadTrace,
    base: &FuzzOptions,
    runner: &SweepRunner,
    budget_ms: Option<u64>,
) -> CampaignResult {
    let start = Instant::now();
    let mut result = CampaignResult {
        stats: FuzzStats::default(),
        coverage: 0,
        counterexample: None,
        samples: Vec::new(),
        rounds: 0,
    };
    loop {
        let opts = FuzzOptions {
            seed: base.seed ^ result.rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..base.clone()
        };
        let plan = fuzz_plan(cfg, trace, &opts);
        let outcomes = runner.map(&plan.items, |&item| {
            run_fuzz_item(cfg, trace, item, opts.fault_seed)
        });
        let report = assemble_fuzz(cfg, trace, &opts, &plan, outcomes);
        result.stats.merge(&report.stats);
        result.coverage = result.coverage.max(report.coverage);
        result.samples = plan.samples;
        if result.counterexample.is_none() {
            result.counterexample = report.counterexample;
        }
        result.rounds += 1;
        let more_budget = budget_ms.is_some_and(|ms| (start.elapsed().as_millis() as u64) < ms);
        if !more_budget || result.counterexample.is_some() {
            return result;
        }
    }
}

fn fuzz_record(
    design: &str,
    workload: &str,
    mutation: &str,
    r: &CampaignResult,
    passed: bool,
) -> Json {
    let s = &r.stats;
    Json::obj(vec![
        ("kind", Json::Str("crash_fuzz".into())),
        ("design", Json::Str(design.into())),
        ("workload", Json::Str(workload.into())),
        ("mutation", Json::Str(mutation.into())),
        ("events", Json::UInt(s.events)),
        ("sampled", Json::UInt(s.sampled)),
        ("novel", Json::UInt(s.novel)),
        ("pruned", Json::UInt(s.pruned)),
        ("executed", Json::UInt(s.executed)),
        ("verified", Json::UInt(s.verified)),
        ("failures", Json::UInt(s.failures)),
        ("coverage", Json::UInt(r.coverage)),
        ("passed", Json::Bool(passed)),
    ])
}

fn diff_record(
    design_a: &str,
    design_b: &str,
    workload: &str,
    report: &DiffReport,
    passed: bool,
) -> Json {
    let culprit = report
        .divergence
        .as_ref()
        .map_or("none", |d| d.culprit.label());
    Json::obj(vec![
        ("kind", Json::Str("crash_diff".into())),
        ("design_a", Json::Str(design_a.into())),
        ("design_b", Json::Str(design_b.into())),
        ("workload", Json::Str(workload.into())),
        ("checked", Json::UInt(report.checked)),
        ("divergences", Json::UInt(report.divergences)),
        ("culprit", Json::Str(culprit.into())),
        ("passed", Json::Bool(passed)),
    ])
}

fn print_row(label: &str, r: &CampaignResult, verdict: &str) {
    let s = &r.stats;
    println!(
        "{label:>22} {:>6} {:>7} {:>7} {:>6} {:>7} {:>8} {:>8} {:>5}/40 {verdict:>8}",
        r.rounds, s.events, s.sampled, s.novel, s.pruned, s.executed, s.failures, r.coverage
    );
}

/// Routes a campaign counterexample into the shared sink, keyed by the
/// persist-domain signature of its crash point. Returns whether there was
/// a counterexample at all (not whether the sink admitted it — duplicates
/// and the cap must not change the verdict).
fn sink_fuzz_cx(sink: &mut CxSink, name: &str, r: &CampaignResult) -> bool {
    let Some(cx) = &r.counterexample else {
        return false;
    };
    sink.write(
        name,
        persist_signature(&r.samples, cx.point),
        &format!(
            "point {}, variant {}, {}",
            cx.point,
            cx.variant.label(),
            cx.error
        ),
        &cx.trace_jsonl,
    );
    true
}

/// Runs one differential comparison, sharding the crash pairs over the
/// worker pool (plan and reassembly stay serial, so the outcome is
/// shard-count independent).
fn run_diff(
    cfg_a: &SystemConfig,
    cfg_b: &SystemConfig,
    trace: &WorkloadTrace,
    runner: &SweepRunner,
) -> DiffReport {
    let plan = diff_plan(cfg_a, cfg_b, trace, DIFF_PAIRS);
    let outcomes = runner.map(&plan.pairs, |&pair| {
        run_diff_pair(cfg_a, cfg_b, trace, &plan, pair)
    });
    assemble_diff(cfg_a, cfg_b, trace, outcomes)
}

/// Sinks a differential divergence, keyed by the culprit design's
/// persist-domain signature at its crash point (one extra reference run —
/// divergences are the rare path).
fn sink_diff_cx(
    sink: &mut CxSink,
    name: &str,
    culprit_cfg: &SystemConfig,
    trace: &WorkloadTrace,
    report: &DiffReport,
) -> bool {
    let Some(d) = &report.divergence else {
        return false;
    };
    let mut sys = System::new(culprit_cfg.clone(), trace);
    sys.enable_persist_hash();
    sys.run();
    let point = match d.culprit {
        DiffCulprit::DesignB => d.point_b,
        _ => d.point_a,
    };
    sink.write(
        name,
        persist_signature(sys.persist_hash_samples(), point),
        &format!(
            "pair a={} b={}, culprit {}, {}",
            d.point_a,
            d.point_b,
            d.culprit.label(),
            d.error
        ),
        &d.trace_jsonl,
    );
    true
}

fn main() {
    let shards = check_shards_from_env();
    let runner = shards.map_or_else(SweepRunner::from_env, SweepRunner::with_jobs);
    let points = fuzz_points_from_env().unwrap_or(DEFAULT_POINTS);
    let budget_ms = fuzz_budget_ms_from_env();
    let per_campaign_ms = budget_ms.map(|ms| ms / CAMPAIGNS);
    let base = FuzzOptions {
        seed: 0x5EED_CAFE,
        points,
        fault_seed: 0xFA11,
        neighborhood: 2,
    };
    let mut cx_sink = CxSink::from_env();
    let mut sink = ResultSink::new("crash_fuzz", runner.jobs());
    let mut failed = false;

    println!(
        "crash fuzz: {points} base draws/campaign{}, {} designs + 2 mutants + differential",
        per_campaign_ms.map_or(String::new(), |ms| format!(" (+{ms}ms budget each)")),
        DESIGNS.len()
    );
    println!(
        "{:>22} {:>6} {:>7} {:>7} {:>6} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "design",
        "rounds",
        "events",
        "sampled",
        "novel",
        "pruned",
        "executed",
        "failures",
        "coverage",
        "verdict"
    );

    for design in DESIGNS {
        let mut cfg = SystemConfig::for_design(design);
        cfg.hierarchy.force_write_back_period = 16;
        let trace = design_trace(&cfg);
        let r = run_campaign(&cfg, &trace, &base, &runner, per_campaign_ms);
        let passed = r.stats.failures == 0;
        if !passed {
            failed = true;
            if let Some(cx) = &r.counterexample {
                eprintln!(
                    "FAIL: {} point={} variant={}: {}",
                    design.label(),
                    cx.point,
                    cx.variant.label(),
                    cx.error
                );
            }
            sink_fuzz_cx(&mut cx_sink, design.label(), &r);
        }
        print_row(design.label(), &r, if passed { "ok" } else { "FAIL" });
        sink.push(fuzz_record(design.label(), "hash", "none", &r, passed));
    }

    // Random-mode teeth: the exhaustive gate's two sabotages must also
    // fall to sampling at fuzz scale (see crates/checker/tests/fuzz_test.rs
    // for why the force-write-back periods differ).
    let mutants: [(DesignKind, CheckMutation, u64); 2] = [
        (DesignKind::MorLogSlde, CheckMutation::DropUndoFence, 16),
        (DesignKind::MorLogDp, CheckMutation::SkipUlogBump, 64),
    ];
    for (design, mutation, fwb_period) in mutants {
        let mut cfg = SystemConfig::for_design(design);
        cfg.hierarchy.force_write_back_period = fwb_period;
        cfg.mutation = mutation;
        let trace = double_store_trace(&cfg, MUTANT_TXS_PER_THREAD);
        let r = run_campaign(&cfg, &trace, &base, &runner, per_campaign_ms);
        let label = format!("{}+{}", design.label(), mutation.label());
        let caught = r.stats.failures > 0 && sink_fuzz_cx(&mut cx_sink, &label, &r);
        if !caught {
            failed = true;
            eprintln!("FAIL: mutant {label} escaped the random campaign");
        }
        print_row(&label, &r, if caught { "caught" } else { "MISSED" });
        sink.push(fuzz_record(
            design.label(),
            "double-store",
            mutation.label(),
            &r,
            caught,
        ));
    }

    // Differential teeth: the redo-value skew passes the skewed design's
    // own oracle at most sampled points but diverges from the clean twin's
    // recovered state — and must be pinned to the mutated side (culprit
    // "a"). Needs force-write-back 64 so ULog words form and sync commits
    // queue the redo records the skew corrupts.
    let mut skewed = SystemConfig::for_design(DesignKind::MorLogSlde);
    skewed.hierarchy.force_write_back_period = 64;
    skewed.mutation = CheckMutation::SkewRedoValue;
    let mut clean = SystemConfig::for_design(DesignKind::MorLogSlde);
    clean.hierarchy.force_write_back_period = 64;
    let trace = double_store_trace(&clean, DIFF_TXS_PER_THREAD);
    let report = run_diff(&skewed, &clean, &trace, &runner);
    let pinned = report.divergences > 0
        && report
            .divergence
            .as_ref()
            .is_some_and(|d| d.culprit == DiffCulprit::DesignA)
        && sink_diff_cx(
            &mut cx_sink,
            "morlog-slde+skew-redo-diff",
            &skewed,
            &trace,
            &report,
        );
    if !pinned {
        failed = true;
        eprintln!("FAIL: differential did not pin the redo-value skew to the mutated design");
    }
    println!(
        "{:>22} {:>6} pairs, {} divergences, culprit {:>4} {:>8}",
        "slde+skew vs slde",
        report.checked,
        report.divergences,
        report
            .divergence
            .as_ref()
            .map_or("none", |d| d.culprit.label()),
        if pinned { "caught" } else { "MISSED" }
    );
    sink.push(diff_record(
        "morlog-slde+skew-redo",
        "morlog-slde",
        "double-store",
        &report,
        pinned,
    ));

    // Cross-design sanity: two *correct* designs may legitimately differ
    // in interim replay sets, but must never diverge where the
    // cross-design invariant holds.
    let slde = {
        let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
        cfg.hierarchy.force_write_back_period = 16;
        cfg
    };
    let dp = {
        let mut cfg = SystemConfig::for_design(DesignKind::MorLogDp);
        cfg.hierarchy.force_write_back_period = 16;
        cfg
    };
    let trace = double_store_trace(&slde, DIFF_TXS_PER_THREAD);
    let report = run_diff(&slde, &dp, &trace, &runner);
    let consistent = report.divergences == 0;
    if !consistent {
        failed = true;
        if let Some(d) = &report.divergence {
            eprintln!(
                "FAIL: morlog-slde vs morlog-dp diverged (culprit {}): {}",
                d.culprit.label(),
                d.error
            );
        }
        let culprit_is_b = report
            .divergence
            .as_ref()
            .is_some_and(|d| d.culprit == DiffCulprit::DesignB);
        let culprit_cfg = if culprit_is_b { &dp } else { &slde };
        sink_diff_cx(
            &mut cx_sink,
            "morlog-slde-vs-dp",
            culprit_cfg,
            &trace,
            &report,
        );
    }
    println!(
        "{:>22} {:>6} pairs, {} divergences, culprit {:>4} {:>8}",
        "slde vs dp",
        report.checked,
        report.divergences,
        report
            .divergence
            .as_ref()
            .map_or("none", |d| d.culprit.label()),
        if consistent { "ok" } else { "FAIL" }
    );
    sink.push(diff_record(
        "morlog-slde",
        "morlog-dp",
        "double-store",
        &report,
        consistent,
    ));

    sink.finish();
    if failed {
        std::process::exit(1);
    }
}
