//! Fig. 3: distribution of write distance for writes in transactions.
use morlog_analysis::write_distance::{DistanceBucket, WriteDistanceHistogram};
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, SweepRunner};
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{cached_generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig03_write_distance", runner.jobs());
    println!("Fig. 3 — write-distance distribution ({txs} transactions per workload)");
    print!("{:<10}", "workload");
    for b in DistanceBucket::ALL {
        print!(" {:>11}", b.label());
    }
    println!(" {:>8} {:>8}", ">31(nf)", "repeat");
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    let data_base = System::data_base(&cfg);
    let histograms = runner.map(&WorkloadKind::ALL, |&kind| {
        let wl = WorkloadConfig {
            threads: kind.default_threads(),
            total_transactions: txs,
            dataset: morlog_workloads::DatasetSize::Small,
            seed: 42,
            data_base,
        };
        let trace = cached_generate(kind, &wl);
        WriteDistanceHistogram::profile(&trace)
    });
    for (kind, h) in WorkloadKind::ALL.iter().zip(&histograms) {
        print!("{:<10}", kind.label());
        let mut buckets = Vec::new();
        for b in DistanceBucket::ALL {
            print!(" {:>10.1}%", h.fraction(b) * 100.0);
            buckets.push((b.label(), Json::Num(h.fraction(b))));
        }
        println!(
            " {:>7.1}% {:>7.1}%",
            h.fraction_beyond_31() * 100.0,
            h.fraction_repeat() * 100.0
        );
        sink.push(Json::obj(vec![
            ("kind", Json::Str("write_distance".into())),
            ("workload", Json::Str(kind.label().into())),
            ("transactions", Json::UInt(txs as u64)),
            ("buckets", Json::obj(buckets)),
            ("beyond_31_fraction", Json::Num(h.fraction_beyond_31())),
            ("repeat_fraction", Json::Num(h.fraction_repeat())),
        ]));
    }
    println!("\npaper: 44.8% of non-first writes have distance > 31; 83.1% of data");
    println!("are updated more than once in a transaction (WHISPER apps under PIN).");
    sink.finish();
}
