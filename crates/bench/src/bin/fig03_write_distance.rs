//! Fig. 3: distribution of write distance for writes in transactions.
use morlog_analysis::write_distance::{DistanceBucket, WriteDistanceHistogram};
use morlog_bench::scaled_txs;
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    println!("Fig. 3 — write-distance distribution ({txs} transactions per workload)");
    print!("{:<10}", "workload");
    for b in DistanceBucket::ALL {
        print!(" {:>11}", b.label());
    }
    println!(" {:>8} {:>8}", ">31(nf)", "repeat");
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    for kind in WorkloadKind::ALL {
        let wl = WorkloadConfig {
            threads: kind.default_threads(),
            total_transactions: txs,
            dataset: morlog_workloads::DatasetSize::Small,
            seed: 42,
            data_base: System::data_base(&cfg),
        };
        let trace = generate(kind, &wl);
        let h = WriteDistanceHistogram::profile(&trace);
        print!("{:<10}", kind.label());
        for b in DistanceBucket::ALL {
            print!(" {:>10.1}%", h.fraction(b) * 100.0);
        }
        println!(
            " {:>7.1}% {:>7.1}%",
            h.fraction_beyond_31() * 100.0,
            h.fraction_repeat() * 100.0
        );
    }
    println!("\npaper: 44.8% of non-first writes have distance > 31; 83.1% of data");
    println!("are updated more than once in a transaction (WHISPER apps under PIN).");
}
