//! Endurance view (§VI-C): hottest data line and log slot per design —
//! reducing log writes improves lifetime, and the ring levels log wear.
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = morlog_bench::scaled_txs(1_500);
    println!("Endurance — max per-location program counts (Queue, {txs} txs)");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>10} {:>8}",
        "design", "max data line", "max log slot", "locations", "log writes", "growths"
    );
    for design in DesignKind::ALL {
        let mut cfg = SystemConfig::for_design(design);
        // Frequent scans persist data (data-line wear becomes visible) and
        // a small ring forces slot reuse (log wear leveling becomes
        // visible).
        cfg.hierarchy.force_write_back_period = 20_000;
        cfg.mem.log_region_bytes = 96 * 1024;
        // Continuous (transaction-table) truncation lets the small ring
        // wrap in place, making slot reuse — and its even wear — visible.
        cfg.log.truncation = morlog_sim_core::config::TruncationPolicy::TransactionTable;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = 4;
        wl.total_transactions = txs;
        let trace = generate(WorkloadKind::Queue, &wl);
        let mut sys = System::new(cfg, &trace);
        let stats = sys.run();
        let (max_data, max_log, locations) = sys.memory().wear_summary();
        println!(
            "{:<14} {:>14} {:>14} {:>12} {:>10} {:>8}",
            design.label(),
            max_data,
            max_log,
            locations,
            stats.mem.log_writes,
            stats.mem.log_overflow_growths
        );
    }
    println!("\nSLDE designs touch fewer log locations for the same work: fewer writes");
    println!("means longer lifetime (§VI-C). The ring appends sequentially, so log wear");
    println!("is level by construction (max slot count stays minimal even under reuse).");
}
