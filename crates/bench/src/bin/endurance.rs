//! Endurance view (§VI-C): hottest data line and log slot per design —
//! reducing log writes improves lifetime, and the ring levels log wear.
use morlog_bench::json::Json;
use morlog_bench::results::{stats_json, ResultSink};
use morlog_bench::SweepRunner;
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SimStats, SystemConfig};
use morlog_workloads::{cached_generate, WorkloadConfig, WorkloadKind};

struct Row {
    design: DesignKind,
    stats: SimStats,
    max_data: u64,
    max_log: u64,
    locations: usize,
}

fn main() {
    let txs = morlog_bench::scaled_txs(1_500);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("endurance", runner.jobs());
    println!("Endurance — max per-location program counts (Queue, {txs} txs)");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>10} {:>8}",
        "design", "max data line", "max log slot", "locations", "log writes", "growths"
    );
    // Needs `wear_summary` off the finished system, so this sweep maps the
    // raw simulation closure instead of going through `run_specs`.
    let rows = runner.map(&DesignKind::ALL, |&design| {
        let mut cfg = SystemConfig::for_design(design);
        // Frequent scans persist data (data-line wear becomes visible) and
        // a small ring forces slot reuse (log wear leveling becomes
        // visible).
        cfg.hierarchy.force_write_back_period = 20_000;
        cfg.mem.log_region_bytes = 96 * 1024;
        // Continuous (transaction-table) truncation lets the small ring
        // wrap in place, making slot reuse — and its even wear — visible.
        cfg.log.truncation = morlog_sim_core::config::TruncationPolicy::TransactionTable;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = 4;
        wl.total_transactions = txs;
        let trace = cached_generate(WorkloadKind::Queue, &wl);
        let mut sys = System::new(cfg, &trace);
        let stats = sys.run();
        let (max_data, max_log, locations) = sys.memory().wear_summary();
        Row {
            design,
            stats,
            max_data,
            max_log,
            locations,
        }
    });
    for row in &rows {
        println!(
            "{:<14} {:>14} {:>14} {:>12} {:>10} {:>8}",
            row.design.label(),
            row.max_data,
            row.max_log,
            row.locations,
            row.stats.mem.log_writes,
            row.stats.mem.log_overflow_growths
        );
        sink.push(Json::obj(vec![
            ("kind", Json::Str("endurance".into())),
            ("design", Json::Str(row.design.label().into())),
            ("max_data_line_programs", Json::UInt(row.max_data)),
            ("max_log_slot_programs", Json::UInt(row.max_log)),
            ("locations", Json::UInt(row.locations as u64)),
            ("stats", stats_json(&row.stats)),
        ]));
    }
    println!("\nSLDE designs touch fewer log locations for the same work: fewer writes");
    println!("means longer lifetime (§VI-C). The ring appends sequentially, so log wear");
    println!("is level by construction (max slot count stays minimal even under reuse).");
    sink.finish();
}
