//! Crash-consistency matrix: every atomic-persistence design crossed with
//! workloads, fault plans and crash points. Each cell runs the workload
//! under an injected-fault plan, crashes mid-flight, recovers and checks
//! the oracle's prefix invariant — the whole sweep is deterministic in the
//! base seed (`MORLOG_SEED` or first CLI argument).
//!
//! Exits non-zero if any combination fails, so the matrix doubles as a
//! robustness gate.

use morlog_sim::System;
use morlog_sim_core::fault::FaultPlan;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

/// The designs that guarantee atomic persistence (FWB-unsafe is excluded —
/// it cannot pass a crash matrix by construction, which is its point).
const DESIGNS: [DesignKind; 5] = [
    DesignKind::FwbCrade,
    DesignKind::FwbSlde,
    DesignKind::MorLogCrade,
    DesignKind::MorLogSlde,
    DesignKind::MorLogDp,
];

const WORKLOADS: [WorkloadKind; 3] = [WorkloadKind::Hash, WorkloadKind::Tpcc, WorkloadKind::Queue];

const CRASH_POINTS: [u64; 2] = [5_000, 12_000];

fn plans(seed: u64) -> [FaultPlan; 5] {
    [
        FaultPlan::none(),
        FaultPlan::single_torn(seed),
        FaultPlan::single_crash_flip(seed.wrapping_add(101)),
        FaultPlan::single_drain_flip(seed.wrapping_add(202)),
        FaultPlan::storm(seed.wrapping_add(303), 3),
    ]
}

struct Cell {
    passed: bool,
    injected: u32,
    damaged: bool,
    error: Option<String>,
}

fn run_cell(
    design: DesignKind,
    kind: WorkloadKind,
    plan: FaultPlan,
    crash_cycle: u64,
    seed: u64,
) -> Cell {
    let cfg = SystemConfig::for_design(design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    wl.seed = seed;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.set_fault_plan(plan);
    sys.run_for(crash_cycle);
    sys.crash();
    let report = sys.recover();
    let error = sys.verify_recovery(&report).err();
    Cell {
        passed: error.is_none(),
        injected: sys.memory().fault_plan().injected(),
        damaged: report.saw_damage(),
        error,
    }
}

fn main() {
    let base_seed: u64 = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("MORLOG_SEED").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    let plan_labels = ["none", "torn", "flip", "drainflip", "storm"];
    println!(
        "crash matrix: {} designs x {} workloads x {} plans x {} crash points (seed {base_seed})",
        DESIGNS.len(),
        WORKLOADS.len(),
        plan_labels.len(),
        CRASH_POINTS.len()
    );
    print!("{:>14} {:>6}", "design", "wload");
    for label in &plan_labels {
        for crash in CRASH_POINTS {
            print!(" {:>14}", format!("{label}@{}k", crash / 1000));
        }
    }
    println!();

    let mut failures: Vec<String> = Vec::new();
    let mut combos = 0usize;
    let mut injected_total = 0u64;
    let mut damaged_cells = 0usize;
    for design in DESIGNS {
        for kind in WORKLOADS {
            print!("{:>14} {:>6}", design.label(), format!("{kind}"));
            for (pi, _) in plan_labels.iter().enumerate() {
                for crash_cycle in CRASH_POINTS {
                    // Every cell gets its own deterministic seed so plans
                    // hit different in-flight slots across the matrix.
                    let seed = base_seed
                        .wrapping_mul(31)
                        .wrapping_add(combos as u64)
                        .wrapping_mul(2_654_435_761);
                    let plan = plans(seed)[pi].clone();
                    let label = plan.label();
                    let cell = run_cell(design, kind, plan, crash_cycle, seed);
                    combos += 1;
                    injected_total += u64::from(cell.injected);
                    damaged_cells += usize::from(cell.damaged);
                    let mark = match (cell.passed, cell.injected > 0) {
                        (true, true) => format!("ok({})", cell.injected),
                        (true, false) => "ok".to_string(),
                        (false, _) => "FAIL".to_string(),
                    };
                    print!(" {mark:>14}");
                    if let Some(e) = cell.error {
                        failures.push(format!(
                            "{design}/{kind} plan={label} crash@{crash_cycle} seed={seed}: {e}"
                        ));
                    }
                }
            }
            println!();
        }
    }

    println!();
    println!(
        "{} combos, {} faults injected, {} cells saw classified damage, {} failures",
        combos,
        injected_total,
        damaged_cells,
        failures.len()
    );
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
