//! Crash-consistency matrix: every atomic-persistence design crossed with
//! workloads, fault plans and crash points. Each cell runs the workload
//! under an injected-fault plan, crashes mid-flight, recovers and checks
//! the oracle's prefix invariant — the whole sweep is deterministic in the
//! base seed (`MORLOG_SEED` or first CLI argument).
//!
//! Cells are independent, so the matrix fans out across the `MORLOG_JOBS`
//! worker pool; cell seeds are assigned by enumeration order before the
//! fan-out, and results print in that same order, so the verdict table is
//! byte-identical to a serial run.
//!
//! Exits non-zero if any combination fails, so the matrix doubles as a
//! robustness gate.

use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::SweepRunner;
use morlog_sim::System;
use morlog_sim_core::fault::FaultPlan;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

/// The designs that guarantee atomic persistence (FWB-unsafe is excluded —
/// it cannot pass a crash matrix by construction, which is its point).
const DESIGNS: [DesignKind; 5] = [
    DesignKind::FwbCrade,
    DesignKind::FwbSlde,
    DesignKind::MorLogCrade,
    DesignKind::MorLogSlde,
    DesignKind::MorLogDp,
];

const WORKLOADS: [WorkloadKind; 3] = [WorkloadKind::Hash, WorkloadKind::Tpcc, WorkloadKind::Queue];

const CRASH_POINTS: [u64; 2] = [5_000, 12_000];

const PLAN_LABELS: [&str; 5] = ["none", "torn", "flip", "drainflip", "storm"];

fn plans(seed: u64) -> [FaultPlan; 5] {
    [
        FaultPlan::none(),
        FaultPlan::single_torn(seed),
        FaultPlan::single_crash_flip(seed.wrapping_add(101)),
        FaultPlan::single_drain_flip(seed.wrapping_add(202)),
        FaultPlan::storm(seed.wrapping_add(303), 3),
    ]
}

/// One matrix point, fixed before the fan-out so seeds and ordering are
/// independent of which worker runs it.
struct CellSpec {
    design: DesignKind,
    kind: WorkloadKind,
    plan_idx: usize,
    crash_cycle: u64,
    seed: u64,
}

struct Cell {
    passed: bool,
    injected: u32,
    damaged: bool,
    error: Option<String>,
}

fn run_cell(spec: &CellSpec) -> Cell {
    let cfg = SystemConfig::for_design(spec.design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    wl.seed = spec.seed;
    // Every cell has a unique seed, so these one-shot traces bypass the
    // trace cache rather than filling it with entries used exactly once.
    let trace = generate(spec.kind, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.set_fault_plan(plans(spec.seed)[spec.plan_idx].clone());
    sys.run_for(spec.crash_cycle);
    sys.crash();
    let report = sys.recover();
    let error = sys.verify_recovery(&report).err();
    Cell {
        passed: error.is_none(),
        injected: sys.memory().fault_plan().injected(),
        damaged: report.saw_damage(),
        error,
    }
}

fn main() {
    let base_seed: u64 = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("MORLOG_SEED").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    println!(
        "crash matrix: {} designs x {} workloads x {} plans x {} crash points (seed {base_seed})",
        DESIGNS.len(),
        WORKLOADS.len(),
        PLAN_LABELS.len(),
        CRASH_POINTS.len()
    );
    print!("{:>14} {:>6}", "design", "wload");
    for label in &PLAN_LABELS {
        for crash in CRASH_POINTS {
            print!(" {:>14}", format!("{label}@{}k", crash / 1000));
        }
    }
    println!();

    // Enumerate cells in table order; each gets its own deterministic seed
    // so plans hit different in-flight slots across the matrix.
    let mut cells: Vec<CellSpec> = Vec::new();
    for design in DESIGNS {
        for kind in WORKLOADS {
            for plan_idx in 0..PLAN_LABELS.len() {
                for crash_cycle in CRASH_POINTS {
                    let combo = cells.len() as u64;
                    let seed = base_seed
                        .wrapping_mul(31)
                        .wrapping_add(combo)
                        .wrapping_mul(2_654_435_761);
                    cells.push(CellSpec {
                        design,
                        kind,
                        plan_idx,
                        crash_cycle,
                        seed,
                    });
                }
            }
        }
    }

    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("crash_matrix", runner.jobs());
    let results = runner.map(&cells, run_cell);

    let mut failures: Vec<String> = Vec::new();
    let mut injected_total = 0u64;
    let mut damaged_cells = 0usize;
    let row_len = PLAN_LABELS.len() * CRASH_POINTS.len();
    for (row, row_cells) in cells.chunks(row_len).zip(results.chunks(row_len)) {
        print!(
            "{:>14} {:>6}",
            row[0].design.label(),
            format!("{}", row[0].kind)
        );
        for (spec, cell) in row.iter().zip(row_cells) {
            injected_total += u64::from(cell.injected);
            damaged_cells += usize::from(cell.damaged);
            let mark = match (cell.passed, cell.injected > 0) {
                (true, true) => format!("ok({})", cell.injected),
                (true, false) => "ok".to_string(),
                (false, _) => "FAIL".to_string(),
            };
            print!(" {mark:>14}");
            if let Some(e) = &cell.error {
                failures.push(format!(
                    "{}/{} plan={} crash@{} seed={}: {e}",
                    spec.design, spec.kind, PLAN_LABELS[spec.plan_idx], spec.crash_cycle, spec.seed
                ));
            }
            sink.push(Json::obj(vec![
                ("kind", Json::Str("crash_cell".into())),
                ("design", Json::Str(spec.design.label().into())),
                ("workload", Json::Str(spec.kind.label().into())),
                ("plan", Json::Str(PLAN_LABELS[spec.plan_idx].into())),
                ("crash_cycle", Json::UInt(spec.crash_cycle)),
                ("seed", Json::UInt(spec.seed)),
                ("passed", Json::Bool(cell.passed)),
                ("injected", Json::UInt(u64::from(cell.injected))),
                ("damaged", Json::Bool(cell.damaged)),
                (
                    "error",
                    cell.error
                        .as_ref()
                        .map_or(Json::Null, |e| Json::Str(e.clone())),
                ),
            ]));
        }
        println!();
    }

    println!();
    println!(
        "{} combos, {} faults injected, {} cells saw classified damage, {} failures",
        cells.len(),
        injected_total,
        damaged_cells,
        failures.len()
    );
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    sink.finish();
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
