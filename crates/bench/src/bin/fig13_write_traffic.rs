//! Fig. 13: NVMM write traffic on the micro-benchmarks (small dataset),
//! normalized to FWB-CRADE.
use morlog_bench::results::ResultSink;
use morlog_bench::{print_design_header, scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let txs = scaled_txs(2_000);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig13_write_traffic", runner.jobs());
    println!("Fig. 13 — normalized NVMM write traffic, small dataset ({txs} transactions)");
    print_design_header("workload");
    let specs: Vec<RunSpec> = WorkloadKind::MICRO
        .iter()
        .flat_map(|&kind| {
            DesignKind::ALL
                .iter()
                .map(move |&design| RunSpec::new(design, kind, txs))
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
    for (ki, kind) in WorkloadKind::MICRO.iter().enumerate() {
        let chunk = &runs[ki * DesignKind::ALL.len()..(ki + 1) * DesignKind::ALL.len()];
        print!("{:<14}", kind.label());
        for (d, t) in chunk.iter().enumerate() {
            let v = t.report.normalized_write_traffic(&chunk[0].report);
            per_design[d].push(v);
            print!(" {:>12.3}", v);
        }
        println!();
    }
    print!("{:<14}", "Gmean");
    for series in &per_design {
        print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
    }
    println!("\n\npaper: MorLog-CRADE cuts NVMM writes by up to 25.6%, MorLog-SLDE by up to");
    println!("39.3% vs FWB-CRADE; delay-persistence removes a further 11.9%.");
    sink.finish();
}
