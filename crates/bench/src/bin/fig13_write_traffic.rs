//! Fig. 13: NVMM write traffic on the micro-benchmarks (small dataset),
//! normalized to FWB-CRADE.
use morlog_bench::{print_design_header, run_all_designs, scaled_txs, RunSpec};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let txs = scaled_txs(2_000);
    println!("Fig. 13 — normalized NVMM write traffic, small dataset ({txs} transactions)");
    print_design_header("workload");
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
    for kind in WorkloadKind::MICRO {
        let reports = run_all_designs(&RunSpec::new(DesignKind::FwbCrade, kind, txs));
        print!("{:<14}", kind.label());
        for (d, r) in reports.iter().enumerate() {
            let v = r.normalized_write_traffic(&reports[0]);
            per_design[d].push(v);
            print!(" {:>12.3}", v);
        }
        println!();
    }
    print!("{:<14}", "Gmean");
    for series in &per_design {
        print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
    }
    println!("\n\npaper: MorLog-CRADE cuts NVMM writes by up to 25.6%, MorLog-SLDE by up to");
    println!("39.3% vs FWB-CRADE; delay-persistence removes a further 11.9%.");
}
