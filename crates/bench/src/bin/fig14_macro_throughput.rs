//! Fig. 14: transaction throughput on the macro-benchmarks, normalized to
//! FWB-CRADE.
use morlog_bench::{
    print_design_header, print_normalized_rows, run_all_designs, scaled_txs, RunSpec,
};
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::{DatasetSize, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    println!("Fig. 14 — normalized macro-benchmark throughput ({txs} transactions)");
    print_design_header("workload");
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
    let cases: [(WorkloadKind, DatasetSize); 5] = [
        (WorkloadKind::Echo, DatasetSize::Small),
        (WorkloadKind::Echo, DatasetSize::Large),
        (WorkloadKind::Ycsb, DatasetSize::Small),
        (WorkloadKind::Ycsb, DatasetSize::Large),
        (WorkloadKind::Tpcc, DatasetSize::Small),
    ];
    for (kind, dataset) in cases {
        let mut spec = RunSpec::new(DesignKind::FwbCrade, kind, txs);
        if dataset == DatasetSize::Large {
            spec = spec.large();
            spec.transactions = scaled_txs(600);
        }
        let reports = run_all_designs(&spec);
        print_normalized_rows(&spec.label(), &reports);
        for (d, r) in reports.iter().enumerate() {
            per_design[d].push(r.normalized_throughput(&reports[0]));
        }
    }
    print!("{:<14}", "Gmean");
    for series in &per_design {
        print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
    }
    println!("\n\npaper: MorLog-CRADE outperforms FWB-CRADE by 83.8% on the macro-benchmarks;");
    println!("MorLog-SLDE adds 12.8%; MorLog-DP a further 2.1%.");
}
