//! Fig. 14: transaction throughput on the macro-benchmarks, normalized to
//! FWB-CRADE.
use morlog_bench::results::ResultSink;
use morlog_bench::{print_design_header, print_normalized_rows, scaled_txs, RunSpec, SweepRunner};
use morlog_sim::RunReport;
use morlog_sim_core::stats::geometric_mean;
use morlog_sim_core::DesignKind;
use morlog_workloads::{DatasetSize, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig14_macro_throughput", runner.jobs());
    println!("Fig. 14 — normalized macro-benchmark throughput ({txs} transactions)");
    print_design_header("workload");
    let cases: [(WorkloadKind, DatasetSize); 5] = [
        (WorkloadKind::Echo, DatasetSize::Small),
        (WorkloadKind::Echo, DatasetSize::Large),
        (WorkloadKind::Ycsb, DatasetSize::Small),
        (WorkloadKind::Ycsb, DatasetSize::Large),
        (WorkloadKind::Tpcc, DatasetSize::Small),
    ];
    let specs: Vec<RunSpec> = cases
        .iter()
        .flat_map(|&(kind, dataset)| {
            DesignKind::ALL.iter().map(move |&design| {
                let mut spec = RunSpec::new(design, kind, txs);
                if dataset == DatasetSize::Large {
                    spec = spec.large();
                    spec.transactions = scaled_txs(600);
                }
                spec
            })
        })
        .collect();
    let runs = runner.run_specs(&specs);
    sink.push_runs(&runs);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); DesignKind::ALL.len()];
    for (ci, _) in cases.iter().enumerate() {
        let chunk = &runs[ci * DesignKind::ALL.len()..(ci + 1) * DesignKind::ALL.len()];
        let reports: Vec<RunReport> = chunk.iter().map(|t| t.report.clone()).collect();
        print_normalized_rows(&chunk[0].spec.label(), &reports);
        for (d, r) in reports.iter().enumerate() {
            per_design[d].push(r.normalized_throughput(&reports[0]));
        }
    }
    print!("{:<14}", "Gmean");
    for series in &per_design {
        print!(" {:>12.3}", geometric_mean(series).unwrap_or(0.0));
    }
    println!("\n\npaper: MorLog-CRADE outperforms FWB-CRADE by 83.8% on the macro-benchmarks;");
    println!("MorLog-SLDE adds 12.8%; MorLog-DP a further 2.1%.");
    sink.finish();
}
