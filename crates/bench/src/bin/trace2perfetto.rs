//! Converts `MORLOG_TRACE_DIR` JSONL traces into Chrome `trace_event`
//! JSON, openable at <https://ui.perfetto.dev>.
//!
//! ```text
//! trace2perfetto <trace.jsonl | dir>... [--out <dir>]
//! ```
//!
//! Each input file produces `<stem>.perfetto.json` next to it (or under
//! `--out <dir>` when given); directories are expanded to their
//! `*.jsonl` files. A per-file summary of spans, counters, ignored and
//! unmatched events is printed to stderr.
//!
//! Exit codes: 0 — all inputs converted; 1 — a conversion failed;
//! 2 — usage error.

use std::path::{Path, PathBuf};

use morlog_bench::perfetto;

fn usage() -> ! {
    eprintln!("usage: trace2perfetto <trace.jsonl | dir>... [--out <dir>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(2);
                };
                out_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag:?}");
                std::process::exit(2);
            }
            path => {
                inputs.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        usage();
    }

    let files = expand_inputs(&inputs);
    if files.is_empty() {
        eprintln!("error: no *.jsonl trace files found");
        std::process::exit(1);
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failed = false;
    for file in &files {
        match convert_file(file, out_dir.as_deref()) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn convert_file(input: &Path, out_dir: Option<&Path>) -> Result<(), String> {
    let text = std::fs::read_to_string(input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let converted =
        perfetto::convert_jsonl(&text).map_err(|e| format!("{}: {e}", input.display()))?;
    let stem = input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let out_name = format!("{stem}.perfetto.json");
    let out_path = match out_dir {
        Some(dir) => dir.join(&out_name),
        None => input.with_file_name(&out_name),
    };
    std::fs::write(&out_path, converted.trace.to_json())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    eprintln!(
        "{} -> {}: {} spans, {} counter samples, {} ignored, {} unmatched",
        input.display(),
        out_path.display(),
        converted.spans,
        converted.counter_events,
        converted.ignored,
        converted.unmatched
    );
    Ok(())
}

/// Expands directory arguments to their `*.jsonl` members (sorted for
/// deterministic processing order); file arguments pass through as-is.
fn expand_inputs(inputs: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut members: Vec<PathBuf> = std::fs::read_dir(input)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                        .collect()
                })
                .unwrap_or_default();
            members.sort();
            files.extend(members);
        } else {
            files.push(input.clone());
        }
    }
    files
}
