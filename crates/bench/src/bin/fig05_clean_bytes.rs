//! Fig. 5: percentage of clean bytes among the data updated by transactions.
use morlog_analysis::clean_bytes::CleanByteStats;
use morlog_bench::json::Json;
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, SweepRunner};
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{cached_generate, WorkloadConfig, WorkloadKind};

fn main() {
    let txs = scaled_txs(2_000);
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("fig05_clean_bytes", runner.jobs());
    println!("Fig. 5 — clean bytes among updated data ({txs} transactions per workload)");
    println!(
        "{:<10} {:>12} {:>14}",
        "workload", "clean bytes", "silent stores"
    );
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    let data_base = System::data_base(&cfg);
    let profiles = runner.map(&WorkloadKind::ALL, |&kind| {
        let wl = WorkloadConfig {
            threads: kind.default_threads(),
            total_transactions: txs,
            dataset: morlog_workloads::DatasetSize::Small,
            seed: 42,
            data_base,
        };
        let trace = cached_generate(kind, &wl);
        CleanByteStats::profile(&trace)
    });
    let mut fractions = Vec::new();
    for (kind, s) in WorkloadKind::ALL.iter().zip(&profiles) {
        fractions.push(s.clean_fraction());
        println!(
            "{:<10} {:>11.1}% {:>13.1}%",
            kind.label(),
            s.clean_fraction() * 100.0,
            s.silent_fraction() * 100.0
        );
        sink.push(Json::obj(vec![
            ("kind", Json::Str("clean_bytes".into())),
            ("workload", Json::Str(kind.label().into())),
            ("transactions", Json::UInt(txs as u64)),
            ("clean_fraction", Json::Num(s.clean_fraction())),
            ("silent_fraction", Json::Num(s.silent_fraction())),
        ]));
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!("{:<10} {:>11.1}%", "average", avg * 100.0);
    println!("\npaper: 70.5% of bytes among the data updated by transactions are clean.");
    sink.finish();
}
