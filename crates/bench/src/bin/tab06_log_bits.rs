//! Table VI: log-bit reduction vs FWB-CRADE with expansion coding disabled
//! (expansion may increase the number of bits written, so the endurance
//! study counts raw bits).
use morlog_bench::{run_all_designs, scaled_txs, RunSpec};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    println!("Table VI — log-bit reduction vs FWB-CRADE, expansion coding disabled");
    println!(
        "{:<8} {:>11} {:>10} {:>13} {:>12} {:>10}",
        "dataset", "FWB-Unsafe", "FWB-SLDE", "MorLog-CRADE", "MorLog-SLDE", "MorLog-DP"
    );
    for (label, large, txs) in [
        ("Small", false, scaled_txs(2_000)),
        ("Large", true, scaled_txs(400)),
    ] {
        let mut sums = vec![0.0f64; DesignKind::ALL.len()];
        for kind in WorkloadKind::MICRO {
            let mut spec = RunSpec::new(DesignKind::FwbCrade, kind, txs).no_expansion();
            if large {
                spec = spec.large();
            }
            let reports = run_all_designs(&spec);
            for (d, r) in reports.iter().enumerate() {
                sums[d] += r.log_bit_reduction_pct(&reports[0]) / WorkloadKind::MICRO.len() as f64;
            }
        }
        println!(
            "{:<8} {:>10.1}% {:>9.1}% {:>12.1}% {:>11.1}% {:>9.1}%",
            label, sums[1], sums[2], sums[3], sums[4], sums[5]
        );
    }
    println!("\npaper:   Small: 10.4% / 41.6% / 16.0% / 57.1% / 59.5%");
    println!("         Large:  4.2% / 33.7% /  9.9% / 43.5% / 45.8%");
}
