//! Table VI: log-bit reduction vs FWB-CRADE with expansion coding disabled
//! (expansion may increase the number of bits written, so the endurance
//! study counts raw bits).
use morlog_bench::results::ResultSink;
use morlog_bench::{scaled_txs, RunSpec, SweepRunner};
use morlog_sim_core::DesignKind;
use morlog_workloads::WorkloadKind;

fn main() {
    let runner = SweepRunner::from_env();
    let mut sink = ResultSink::new("tab06_log_bits", runner.jobs());
    println!("Table VI — log-bit reduction vs FWB-CRADE, expansion coding disabled");
    println!(
        "{:<8} {:>11} {:>10} {:>13} {:>12} {:>10}",
        "dataset", "FWB-Unsafe", "FWB-SLDE", "MorLog-CRADE", "MorLog-SLDE", "MorLog-DP"
    );
    for (label, large, txs) in [
        ("Small", false, scaled_txs(2_000)),
        ("Large", true, scaled_txs(400)),
    ] {
        let specs: Vec<RunSpec> = WorkloadKind::MICRO
            .iter()
            .flat_map(|&kind| {
                DesignKind::ALL.iter().map(move |&design| {
                    let spec = RunSpec::new(design, kind, txs).no_expansion();
                    if large {
                        spec.large()
                    } else {
                        spec
                    }
                })
            })
            .collect();
        let runs = runner.run_specs(&specs);
        sink.push_runs(&runs);
        let mut sums = vec![0.0f64; DesignKind::ALL.len()];
        for ki in 0..WorkloadKind::MICRO.len() {
            let chunk = &runs[ki * DesignKind::ALL.len()..(ki + 1) * DesignKind::ALL.len()];
            for (d, t) in chunk.iter().enumerate() {
                sums[d] += t.report.log_bit_reduction_pct(&chunk[0].report)
                    / WorkloadKind::MICRO.len() as f64;
            }
        }
        println!(
            "{:<8} {:>10.1}% {:>9.1}% {:>12.1}% {:>11.1}% {:>9.1}%",
            label, sums[1], sums[2], sums[3], sums[4], sums[5]
        );
    }
    println!("\npaper:   Small: 10.4% / 41.6% / 16.0% / 57.1% / 59.5%");
    println!("         Large:  4.2% / 33.7% /  9.9% / 43.5% / 45.8%");
    sink.finish();
}
