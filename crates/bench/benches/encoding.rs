//! Micro-benchmarks for the encoding stack: the per-word FPC and DLDC
//! encoders, the SLDE selector, and full data-block encode/decode.
//!
//! Self-contained harness (no external bench framework): each case runs a
//! short warm-up, then reports the best-of-N wall-clock time per iteration.

use std::hint::black_box;
use std::time::Instant;

use morlog_encoding::cell::CellModel;
use morlog_encoding::dldc;
use morlog_encoding::fpc;
use morlog_encoding::slde::{LogWordRequest, SldeCodec};
use morlog_sim_core::types::dirty_byte_mask;
use morlog_sim_core::{DetRng, LineData};

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    const WARMUP: usize = 3;
    const SAMPLES: usize = 10;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("{name:<32} {:>12.3} us/iter", best * 1e6);
}

fn words(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| match rng.gen_range(4) {
            0 => rng.gen_range(1 << 16),                 // small integer
            1 => (rng.next_u64() as i32) as i64 as u64,  // sign-extended
            2 => rng.next_u64() & 0xFF00_FF00_FF00_FF00, // sparse bytes
            _ => rng.next_u64(),                         // random
        })
        .collect()
}

fn bench_fpc() {
    let ws = words(1024, 1);
    bench("fpc/compress_1k_words", || {
        let mut bits = 0u32;
        for &w in &ws {
            bits += fpc::compress_word(black_box(w)).total_bits();
        }
        bits
    });
    let encs: Vec<_> = ws.iter().map(|&w| fpc::compress_word(w)).collect();
    bench("fpc/decompress_1k_words", || {
        encs.iter()
            .map(|e| fpc::decompress_word(black_box(e)))
            .sum::<u64>()
    });
}

fn bench_dldc() {
    let olds = words(1024, 2);
    let news: Vec<u64> = olds.iter().map(|&o| o ^ 0xFF00).collect();
    bench("dldc/compress_1k_updates", || {
        let mut bits = 0u32;
        for (&o, &n) in olds.iter().zip(&news) {
            let mask = dirty_byte_mask(o, n);
            if let Some(e) = dldc::compress_dirty(black_box(n), mask) {
                bits += e.total_bits();
            }
        }
        bits
    });
}

fn bench_slde() {
    let codec = SldeCodec::new(CellModel::table_iii());
    let olds = words(512, 3);
    let news: Vec<u64> = olds.iter().map(|&o| o.wrapping_add(3)).collect();
    bench("slde/select_512_log_words", || {
        let mut bits = 0u32;
        for (&o, &n) in olds.iter().zip(&news) {
            bits += codec
                .encode_log_word(&LogWordRequest::redo(n, o))
                .payload_bits;
        }
        bits
    });
    let mut line = LineData::zeroed();
    for (i, &w) in words(8, 4).iter().enumerate() {
        line.set_word(i, w);
    }
    bench("slde/encode_data_block", || {
        codec.encode_data_block(black_box(&line))
    });
    let region = codec.encode_data_block(&line);
    bench("slde/decode_data_block", || {
        codec.decode_data_block(black_box(&region))
    });
}

fn main() {
    bench_fpc();
    bench_dldc();
    bench_slde();
}
