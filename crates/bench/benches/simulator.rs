//! Criterion end-to-end benchmarks: simulated-cycles-per-host-second for a
//! small run of each design, plus recovery throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    for design in [DesignKind::FwbCrade, DesignKind::MorLogSlde, DesignKind::MorLogDp] {
        let cfg = SystemConfig::for_design(design);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 200;
        let trace = generate(WorkloadKind::Tpcc, &wl);
        group.bench_function(format!("tpcc_200tx/{}", design.label()), |b| {
            b.iter_batched(
                || System::new(cfg.clone(), &trace),
                |mut sys| sys.run(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let cfg = SystemConfig::for_design(DesignKind::MorLogDp);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 200;
    let trace = generate(WorkloadKind::Tpcc, &wl);
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.bench_function("crash_recover_tpcc_200tx", |b| {
        b.iter_batched(
            || {
                let mut sys = System::new(cfg.clone(), &trace);
                sys.run_for(30_000);
                sys.crash();
                sys
            },
            |mut sys| sys.recover(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_recovery);
criterion_main!(benches);
