//! End-to-end benchmarks: simulated-cycles-per-host-second for a small run
//! of each design, plus recovery throughput.
//!
//! Self-contained harness (no external bench framework): each case rebuilds
//! its input per sample and reports the best-of-N wall-clock time.

use std::hint::black_box;
use std::time::Instant;

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn bench_batched<S, R>(name: &str, mut setup: impl FnMut() -> S, mut run: impl FnMut(S) -> R) {
    const SAMPLES: usize = 5;
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let input = setup();
        let start = Instant::now();
        black_box(run(input));
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("{name:<40} {:>12.3} ms/iter", best * 1e3);
}

fn bench_full_runs() {
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let cfg = SystemConfig::for_design(design);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 200;
        let trace = generate(WorkloadKind::Tpcc, &wl);
        bench_batched(
            &format!("system/tpcc_200tx/{}", design.label()),
            || System::new(cfg.clone(), &trace),
            |mut sys| sys.run(),
        );
    }
}

fn bench_recovery() {
    let cfg = SystemConfig::for_design(DesignKind::MorLogDp);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 200;
    let trace = generate(WorkloadKind::Tpcc, &wl);
    bench_batched(
        "recovery/crash_recover_tpcc_200tx",
        || {
            let mut sys = System::new(cfg.clone(), &trace);
            sys.run_for(30_000);
            sys.crash();
            sys
        },
        |mut sys| sys.recover(),
    );
}

fn main() {
    bench_full_runs();
    bench_recovery();
}
