//! Cache lines and the MorLog L1 extensions (Fig. 7 and Fig. 8).

use morlog_sim_core::ids::TxKey;
use morlog_sim_core::{LineAddr, LineData, WORDS_PER_LINE};

/// The 2-bit per-word log state of Fig. 8.
///
/// * `Clean` — not updated by an in-flight transaction.
/// * `Dirty` — updated; its undo+redo entry is still in the undo+redo
///   buffer (subsequent stores coalesce there).
/// * `URLog` — the undo+redo entry has been persisted; no newer redo data
///   exist.
/// * `ULog` — the oldest undo data are persisted but the newest redo data
///   (buffered in place in this line) are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordLogState {
    /// Not updated by an in-flight transaction.
    #[default]
    Clean,
    /// Updated; undo+redo entry still buffered.
    Dirty,
    /// Undo+redo entry persisted, newest redo persisted with it.
    URLog,
    /// Undo persisted; newest redo buffered in the L1 line only.
    ULog,
}

/// The MorLog L1 cache-line extensions (Fig. 7): an 8-bit TID, a 16-bit
/// TxID, a 16-bit log-state flag (2 bits per word) and the §IV-A per-word
/// dirty flags (8 bits per word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L1Ext {
    /// The transaction whose updates the line's log states describe.
    pub owner: TxKey,
    /// Per-word log state.
    pub word_state: [WordLogState; WORDS_PER_LINE],
    /// Per-word dirty flags, accumulated since the word's last persisted
    /// log data (used by DLDC when the redo entry is created).
    pub dirty_flags: [u8; WORDS_PER_LINE],
}

impl L1Ext {
    /// A fresh extension owned by `owner`, all words clean.
    pub fn new(owner: TxKey) -> Self {
        L1Ext {
            owner,
            ..Default::default()
        }
    }

    /// Whether any word is in a non-clean state.
    pub fn has_log_state(&self) -> bool {
        self.word_state.iter().any(|&s| s != WordLogState::Clean)
    }

    /// Number of words currently in `ULog` state (feeds the ulog counter of
    /// the delay-persistence commit protocol, §III-C).
    pub fn ulog_words(&self) -> u32 {
        self.word_state
            .iter()
            .filter(|&&s| s == WordLogState::ULog)
            .count() as u32
    }

    /// Resets every word to `Clean` and clears the dirty flags (after the
    /// owning transaction's log data are fully persisted).
    pub fn reset(&mut self) {
        self.word_state = [WordLogState::Clean; WORDS_PER_LINE];
        self.dirty_flags = [0; WORDS_PER_LINE];
    }
}

/// One cache line. The `ext` field is populated only while the line lives
/// in an L1 cache; lower levels drop it (the hardware state exists only in
/// the L1 arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// The line's address tag.
    pub addr: LineAddr,
    /// Current contents (the freshest copy in the hierarchy when dirty).
    pub data: LineData,
    /// Whether the line differs from memory.
    pub dirty: bool,
    /// The force-write-back scan's age flag (§III-F).
    pub fwb_flag: bool,
    /// MorLog L1 extensions, present in L1 only.
    pub ext: Option<L1Ext>,
}

impl CacheLine {
    /// A clean line filled from memory.
    pub fn clean(addr: LineAddr, data: LineData) -> Self {
        CacheLine {
            addr,
            data,
            dirty: false,
            fwb_flag: false,
            ext: None,
        }
    }

    /// Drops the L1 extensions (when the line moves below L1).
    pub fn without_ext(mut self) -> Self {
        self.ext = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::{ThreadId, TxId};

    #[test]
    fn ext_counts_ulog_words() {
        let mut ext = L1Ext::new(TxKey::new(ThreadId::new(0), TxId::new(0)));
        assert_eq!(ext.ulog_words(), 0);
        assert!(!ext.has_log_state());
        ext.word_state[0] = WordLogState::ULog;
        ext.word_state[3] = WordLogState::ULog;
        ext.word_state[5] = WordLogState::Dirty;
        assert_eq!(ext.ulog_words(), 2);
        assert!(ext.has_log_state());
        ext.reset();
        assert_eq!(ext.ulog_words(), 0);
        assert!(!ext.has_log_state());
    }

    #[test]
    fn without_ext_strips_extensions() {
        let mut line = CacheLine::clean(LineAddr::from_index(1), LineData::zeroed());
        line.ext = Some(L1Ext::default());
        let below = line.without_ext();
        assert!(below.ext.is_none());
        assert_eq!(below.addr, line.addr);
    }

    #[test]
    fn default_word_state_is_clean() {
        assert_eq!(WordLogState::default(), WordLogState::Clean);
    }
}
