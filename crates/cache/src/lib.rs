//! Three-level write-back cache hierarchy with the MorLog L1 extensions.
//!
//! * [`mod@line`] — cache lines, and the per-word L1 extensions of Fig. 7:
//!   thread/transaction tags, the 2-bit log-state machine of Fig. 8
//!   (`Clean → Dirty → URLog → ULog`), and the per-word dirty flags of
//!   §IV-A.
//! * [`cache`] — a generic set-associative LRU write-back cache.
//! * [`hierarchy`] — private L1/L2 per core and a shared inclusive L3
//!   (Table III geometry), with eviction cascades that surface the events
//!   the logging hardware reacts to (L1 evictions carry their extensions
//!   out; LLC evictions produce memory writebacks).
//! * [`fwb`] — the force-write-back scan (§III-F): a periodic two-phase
//!   sweep that writes back aged dirty lines without invalidating them,
//!   enabling log truncation.

#![deny(missing_docs)]

pub mod cache;
pub mod fwb;
pub mod hierarchy;
pub mod line;

pub use cache::Cache;
pub use hierarchy::{AccessOutcome, EvictionEvent, Hierarchy};
pub use line::{CacheLine, L1Ext, WordLogState};
