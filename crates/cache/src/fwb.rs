//! Scheduling of the periodic force-write-back scan (§III-F, §VI-A).
//!
//! The paper performs the force-write-back mechanism every three million
//! cycles, both to bound how long updated data linger in the volatile
//! caches and to let log truncation advance (entries of transactions that
//! committed before the last two scans are safe to delete).

use morlog_sim_core::Cycle;

/// Tracks when force-write-back scans are due and how many have completed.
///
/// # Example
///
/// ```
/// use morlog_cache::fwb::FwbScheduler;
/// let mut s = FwbScheduler::new(1000);
/// assert!(!s.due(999));
/// assert!(s.due(1000));
/// s.record_scan(1000);
/// assert!(!s.due(1500));
/// assert!(s.due(2000));
/// ```
#[derive(Debug, Clone)]
pub struct FwbScheduler {
    period: Cycle,
    next_scan: Cycle,
    scans_completed: u64,
    /// Cycle of each of the last two completed scans (for the truncation
    /// rule "committed before the last two scans").
    last_two: [Option<Cycle>; 2],
}

impl FwbScheduler {
    /// Creates a scheduler with the given period in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: Cycle) -> Self {
        assert!(period > 0, "scan period must be positive");
        FwbScheduler {
            period,
            next_scan: period,
            scans_completed: 0,
            last_two: [None, None],
        }
    }

    /// Whether a scan is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_scan
    }

    /// Records a completed scan at `now` and schedules the next one.
    pub fn record_scan(&mut self, now: Cycle) {
        self.scans_completed += 1;
        self.last_two = [self.last_two[1], Some(now)];
        self.next_scan = now + self.period;
    }

    /// Number of completed scans.
    pub fn scans_completed(&self) -> u64 {
        self.scans_completed
    }

    /// Transactions that committed at or before this cycle are fully
    /// persistent: their dirty data have survived two whole scans
    /// (§III-F). `None` until two scans have happened.
    pub fn safe_commit_horizon(&self) -> Option<Cycle> {
        self.last_two[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_requires_two_scans() {
        let mut s = FwbScheduler::new(100);
        assert_eq!(s.safe_commit_horizon(), None);
        s.record_scan(100);
        assert_eq!(s.safe_commit_horizon(), None);
        s.record_scan(200);
        assert_eq!(s.safe_commit_horizon(), Some(100));
        s.record_scan(300);
        assert_eq!(s.safe_commit_horizon(), Some(200));
    }

    #[test]
    fn due_follows_period() {
        let mut s = FwbScheduler::new(100);
        assert!(s.due(100));
        s.record_scan(150); // scans can slip; period restarts from the scan
        assert!(!s.due(249));
        assert!(s.due(250));
    }

    #[test]
    fn counts_scans() {
        let mut s = FwbScheduler::new(10);
        for i in 1..=5 {
            s.record_scan(i * 10);
        }
        assert_eq!(s.scans_completed(), 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_panics() {
        FwbScheduler::new(0);
    }
}
