//! A generic set-associative, write-back, LRU cache.

use morlog_sim_core::{CacheLevelConfig, LineAddr};

use crate::line::CacheLine;

/// One set-associative cache level. Each set keeps its ways in MRU-first
/// order; insertion beyond the associativity evicts the LRU way.
///
/// # Example
///
/// ```
/// use morlog_cache::cache::Cache;
/// use morlog_cache::line::CacheLine;
/// use morlog_sim_core::{CacheLevelConfig, LineAddr, LineData};
///
/// let mut c = Cache::new(CacheLevelConfig::l1_default());
/// let line = CacheLine::clean(LineAddr::from_index(7), LineData::zeroed());
/// assert!(c.insert(line).is_none());
/// assert!(c.get_mut(LineAddr::from_index(7)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheLevelConfig,
    sets: Vec<Vec<CacheLine>>,
    set_mask: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two (hardware indexing).
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Cache {
            cfg,
            sets: vec![Vec::new(); sets],
            set_mask: sets as u64 - 1,
        }
    }

    /// The geometry of this level.
    pub fn config(&self) -> &CacheLevelConfig {
        &self.cfg
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.index() & self.set_mask) as usize
    }

    /// Whether the line is present (does not touch LRU order).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.sets[self.set_index(addr)]
            .iter()
            .any(|l| l.addr == addr)
    }

    /// Looks up a line, promoting it to MRU on hit.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut CacheLine> {
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.addr == addr)?;
        let line = set.remove(pos);
        set.insert(0, line);
        Some(&mut set[0])
    }

    /// Looks up a line without changing LRU order.
    pub fn peek(&self, addr: LineAddr) -> Option<&CacheLine> {
        self.sets[self.set_index(addr)]
            .iter()
            .find(|l| l.addr == addr)
    }

    /// Inserts a line as MRU; returns the evicted LRU victim if the set was
    /// full. Replaces (and returns) an existing line with the same address.
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        let set_idx = self.set_index(line.addr);
        let ways = self.cfg.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.addr == line.addr) {
            let old = set.remove(pos);
            set.insert(0, line);
            return Some(old);
        }
        set.insert(0, line);
        if set.len() > ways {
            set.pop()
        } else {
            None
        }
    }

    /// Removes and returns a line (back-invalidation).
    pub fn remove(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.addr == addr)?;
        Some(set.remove(pos))
    }

    /// Iterates all resident lines (scan order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> + '_ {
        self.sets.iter().flatten()
    }

    /// Iterates all resident lines mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> + '_ {
        self.sets.iter_mut().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every line (crash injection: volatile caches lose state).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::LineData;

    fn tiny() -> Cache {
        // 2 ways × 4 sets of 64-byte lines.
        Cache::new(CacheLevelConfig {
            capacity_bytes: 512,
            ways: 2,
            latency_cycles: 1,
        })
    }

    fn line(idx: u64) -> CacheLine {
        CacheLine::clean(LineAddr::from_index(idx), LineData::zeroed())
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = tiny();
        assert!(c.insert(line(0)).is_none());
        assert!(c.contains(LineAddr::from_index(0)));
        assert!(!c.contains(LineAddr::from_index(4)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.insert(line(0));
        c.insert(line(4));
        c.get_mut(LineAddr::from_index(0)); // touch 0 -> MRU
        let victim = c.insert(line(8)).expect("set overflows");
        assert_eq!(victim.addr, LineAddr::from_index(4));
        assert!(c.contains(LineAddr::from_index(0)));
        assert!(c.contains(LineAddr::from_index(8)));
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = tiny();
        c.insert(line(0));
        let mut updated = line(0);
        updated.dirty = true;
        let old = c
            .insert(updated)
            .expect("same-address replacement returns old");
        assert!(!old.dirty);
        assert_eq!(c.len(), 1);
        assert!(c.peek(LineAddr::from_index(0)).unwrap().dirty);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = tiny();
        c.insert(line(3));
        assert!(c.remove(LineAddr::from_index(3)).is_some());
        assert!(c.remove(LineAddr::from_index(3)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn sets_partition_addresses() {
        let mut c = tiny();
        // 8 lines with distinct sets: no evictions.
        for i in 0..8 {
            assert!(c.insert(line(i)).is_none(), "line {i}");
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.insert(line(1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        Cache::new(CacheLevelConfig {
            capacity_bytes: 3 * 64 * 2,
            ways: 2,
            latency_cycles: 1,
        });
    }
}
