//! The three-level hierarchy of Table III: private L1/L2 per core, shared
//! inclusive L3.
//!
//! Design notes (documented deviations are in `DESIGN.md` §6):
//!
//! * A line has at most one private (L1/L2) copy at a time; an access from
//!   another core migrates it. The paper's workloads partition writable
//!   data between threads (isolation comes from software locking, §III-A),
//!   so migrations are rare and a directory protocol would add nothing the
//!   evaluation measures.
//! * The L3 is inclusive: evicting an L3 line back-invalidates the private
//!   copies, surfacing the freshest data for the memory writeback. This is
//!   the "evicted by the LLC" event morphable logging listens to when it
//!   discards redo-buffer entries (§III-B).
//! * Evictions are reported as ordered [`EvictionEvent`]s so the logging
//!   controller can act on an L1 eviction (create/flush log entries)
//!   *before* the corresponding memory writeback is enqueued.

use morlog_sim_core::stats::CacheLevelStats;
use morlog_sim_core::trace::{TraceEvent, Tracer};
use morlog_sim_core::{Cycle, HierarchyConfig, LineAddr, LineData};

use crate::cache::Cache;
use crate::line::CacheLine;

/// Where an access hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the core's L1.
    L1Hit,
    /// Hit in the core's L2 (line promoted to L1).
    L2Hit,
    /// Hit in the shared L3 or migrated from another core's private caches.
    L3Hit,
    /// Missed everywhere; the caller must fetch memory and call
    /// [`Hierarchy::fill`].
    Miss,
}

impl AccessOutcome {
    /// Lookup latency in cycles for this outcome under `cfg` (the miss
    /// latency is the full traversal; memory time comes on top).
    pub fn latency(self, cfg: &HierarchyConfig) -> u64 {
        match self {
            AccessOutcome::L1Hit => cfg.l1.latency_cycles,
            AccessOutcome::L2Hit => cfg.l1.latency_cycles + cfg.l2.latency_cycles,
            AccessOutcome::L3Hit | AccessOutcome::Miss => {
                cfg.l1.latency_cycles + cfg.l2.latency_cycles + cfg.l3.latency_cycles
            }
        }
    }
}

/// An ordered eviction event produced by an access, fill or scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionEvent {
    /// A line left an L1 cache (capacity eviction or back-invalidation).
    /// Carries the line *with* its MorLog extensions so the logging
    /// controller can create redo entries for `ULog` words and flush
    /// pending undo+redo entries for `Dirty` words.
    L1Evicted(CacheLine),
    /// A dirty line left the LLC and must be written to memory. Morphable
    /// logging discards matching redo-buffer entries on this event.
    MemoryWriteback {
        /// The line's address.
        addr: LineAddr,
        /// The freshest data among the invalidated copies.
        data: LineData,
    },
}

/// The cache hierarchy.
///
/// # Example
///
/// ```
/// use morlog_cache::hierarchy::{AccessOutcome, Hierarchy};
/// use morlog_sim_core::{HierarchyConfig, LineAddr, LineData};
///
/// let mut h = Hierarchy::new(&HierarchyConfig::default(), 2);
/// let line = LineAddr::from_index(100);
/// let (outcome, _) = h.access(0, line);
/// assert_eq!(outcome, AccessOutcome::Miss);
/// h.fill(0, line, LineData::zeroed());
/// let (outcome, _) = h.access(0, line);
/// assert_eq!(outcome, AccessOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    stats: [CacheLevelStats; 3],
    /// Observability sink (disabled by default; see [`set_tracer`]).
    ///
    /// [`set_tracer`]: Hierarchy::set_tracer
    tracer: Tracer,
    /// Cycle stamp for emitted events; the hierarchy itself is untimed, so
    /// the engine refreshes this via [`set_now`](Hierarchy::set_now).
    now: Cycle,
}

impl Hierarchy {
    /// Builds the hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cfg: &HierarchyConfig, cores: usize) -> Self {
        assert!(cores > 0, "hierarchy needs at least one core");
        Hierarchy {
            cfg: *cfg,
            l1: (0..cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cores).map(|_| Cache::new(cfg.l2)).collect(),
            l3: Cache::new(cfg.l3),
            stats: [CacheLevelStats::default(); 3],
            tracer: Tracer::disabled(),
            now: 0,
        }
    }

    /// Installs the shared trace handle (see [`morlog_sim_core::trace`]).
    /// Emits memory-writeback and force-write-back scan events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Refreshes the cycle stamp used for emitted events. The engine calls
    /// this once per simulated cycle before driving hierarchy operations.
    pub fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// The geometry in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Per-level counters (`[L1, L2, L3]`, summed over cores).
    pub fn stats(&self) -> &[CacheLevelStats; 3] {
        &self.stats
    }

    /// Number of cores the hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Accesses `addr` from `core`, promoting the line into the core's L1.
    /// On [`AccessOutcome::Miss`] the line is *not* resident; fetch memory
    /// and call [`fill`].
    ///
    /// [`fill`]: Hierarchy::fill
    pub fn access(&mut self, core: usize, addr: LineAddr) -> (AccessOutcome, Vec<EvictionEvent>) {
        if self.l1[core].get_mut(addr).is_some() {
            self.stats[0].hits += 1;
            return (AccessOutcome::L1Hit, Vec::new());
        }
        self.stats[0].misses += 1;
        if let Some(line) = self.l2[core].remove(addr) {
            self.stats[1].hits += 1;
            let events = self.insert_l1(core, line);
            return (AccessOutcome::L2Hit, events);
        }
        self.stats[1].misses += 1;
        // Another core's private copy? Migrate it (freshest data travels).
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            let migrated = self.l1[other]
                .remove(addr)
                .map(|l| (true, l))
                .or_else(|| self.l2[other].remove(addr).map(|l| (false, l)));
            if let Some((from_l1, line)) = migrated {
                self.stats[2].hits += 1;
                let mut events = Vec::new();
                if from_l1 {
                    events.push(EvictionEvent::L1Evicted(line));
                }
                events.extend(self.insert_l1(core, line.without_ext()));
                return (AccessOutcome::L3Hit, events);
            }
        }
        if let Some(l3_line) = self.l3.get_mut(addr) {
            // Inclusive L3 keeps its copy; a clean copy is promoted.
            let promoted = CacheLine {
                ext: None,
                ..*l3_line
            };
            self.stats[2].hits += 1;
            let events = self.insert_l1(core, promoted);
            return (AccessOutcome::L3Hit, events);
        }
        self.stats[2].misses += 1;
        (AccessOutcome::Miss, Vec::new())
    }

    /// Installs a line fetched from memory into L3 and the core's L1.
    pub fn fill(&mut self, core: usize, addr: LineAddr, data: LineData) -> Vec<EvictionEvent> {
        let mut events = self.insert_l3(CacheLine::clean(addr, data));
        events.extend(self.insert_l1(core, CacheLine::clean(addr, data)));
        events
    }

    /// Mutable view of a resident L1 line (for stores and log-state
    /// transitions). Returns `None` when the line is not in the core's L1.
    pub fn l1_line_mut(&mut self, core: usize, addr: LineAddr) -> Option<&mut CacheLine> {
        self.l1[core].get_mut(addr)
    }

    /// Finds the L1 copy of `addr` across cores.
    pub fn find_l1(&mut self, addr: LineAddr) -> Option<(usize, &mut CacheLine)> {
        let core = (0..self.l1.len()).find(|&c| self.l1[c].contains(addr))?;
        Some((core, self.l1[core].get_mut(addr).expect("checked contains")))
    }

    /// Iterates every L1 line of one core mutably (commit-time walks).
    pub fn l1_lines_mut(&mut self, core: usize) -> impl Iterator<Item = &mut CacheLine> + '_ {
        self.l1[core].iter_mut()
    }

    /// The force-write-back scan (§III-F): pass one sets the age flag on
    /// dirty lines; pass two (next scan) writes flagged dirty lines back
    /// without invalidating them. Returns the writebacks, freshest copy per
    /// address, L1-resident lines first.
    pub fn force_write_back_scan(&mut self) -> Vec<(LineAddr, LineData)> {
        let mut written = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let cores = self.l1.len();
        for level in 0..3 {
            let caches: Vec<&mut Cache> = match level {
                0 => self.l1.iter_mut().take(cores).collect(),
                1 => self.l2.iter_mut().take(cores).collect(),
                _ => vec![&mut self.l3],
            };
            for cache in caches {
                for line in cache.iter_mut() {
                    if !line.dirty {
                        continue;
                    }
                    if seen.contains(&line.addr) {
                        // A fresher copy was already written back; this
                        // stale copy is now clean with respect to memory.
                        line.dirty = false;
                        line.fwb_flag = false;
                        continue;
                    }
                    if line.fwb_flag {
                        written.push((line.addr, line.data));
                        seen.insert(line.addr);
                        line.dirty = false;
                        line.fwb_flag = false;
                        self.stats[level].writebacks += 1;
                        let addr = line.addr.base().as_u64();
                        self.tracer.emit(self.now, || TraceEvent::CacheWriteback {
                            level: level as u32,
                            line: addr,
                        });
                    } else {
                        line.fwb_flag = true;
                    }
                }
            }
        }
        let count = written.len() as u64;
        self.tracer
            .emit(self.now, || TraceEvent::FwbScan { writebacks: count });
        written
    }

    /// Drops all cached state (crash injection: SRAM is volatile).
    pub fn invalidate_all(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.l3.clear();
    }

    fn insert_l1(&mut self, core: usize, line: CacheLine) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        if let Some(victim) = self.l1[core].insert(line) {
            if victim.addr != line.addr {
                self.stats[0].evictions += 1;
                events.push(EvictionEvent::L1Evicted(victim));
                events.extend(self.insert_l2(core, victim.without_ext()));
            }
        }
        events
    }

    fn insert_l2(&mut self, core: usize, line: CacheLine) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        if let Some(victim) = self.l2[core].insert(line) {
            if victim.addr != line.addr {
                self.stats[1].evictions += 1;
                events.extend(self.insert_l3(victim));
            } else if victim.dirty && !line.dirty {
                // Replaced a dirty stale copy with a clean one: keep dirty.
                self.l2[core]
                    .get_mut(line.addr)
                    .expect("just inserted")
                    .dirty = true;
            }
        }
        events
    }

    fn insert_l3(&mut self, line: CacheLine) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        if let Some(victim) = self.l3.insert(line.without_ext()) {
            if victim.addr == line.addr {
                if victim.dirty && !line.dirty {
                    self.l3.get_mut(line.addr).expect("just inserted").dirty = true;
                }
                return events;
            }
            self.stats[2].evictions += 1;
            // Inclusive back-invalidation: gather the freshest copy.
            let mut freshest = victim;
            for core in 0..self.l1.len() {
                if let Some(l1_copy) = self.l1[core].remove(victim.addr) {
                    self.stats[0].evictions += 1;
                    events.push(EvictionEvent::L1Evicted(l1_copy));
                    if l1_copy.dirty {
                        freshest = l1_copy;
                    }
                }
                if let Some(l2_copy) = self.l2[core].remove(victim.addr) {
                    self.stats[1].evictions += 1;
                    if l2_copy.dirty && !freshest.dirty {
                        freshest = l2_copy;
                    }
                }
            }
            if freshest.dirty {
                self.stats[2].writebacks += 1;
                let addr = victim.addr.base().as_u64();
                self.tracer.emit(self.now, || TraceEvent::CacheWriteback {
                    level: 2,
                    line: addr,
                });
                events.push(EvictionEvent::MemoryWriteback {
                    addr: victim.addr,
                    data: freshest.data,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::CacheLevelConfig;

    fn tiny_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheLevelConfig {
                capacity_bytes: 256,
                ways: 2,
                latency_cycles: 4,
            },
            l2: CacheLevelConfig {
                capacity_bytes: 512,
                ways: 2,
                latency_cycles: 12,
            },
            l3: CacheLevelConfig {
                capacity_bytes: 1024,
                ways: 2,
                latency_cycles: 28,
            },
            force_write_back_period: 1000,
        }
    }

    fn data(v: u64) -> LineData {
        let mut d = LineData::zeroed();
        d.set_word(0, v);
        d
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        let a = LineAddr::from_index(10);
        assert_eq!(h.access(0, a).0, AccessOutcome::Miss);
        h.fill(0, a, data(7));
        assert_eq!(h.access(0, a).0, AccessOutcome::L1Hit);
        assert_eq!(h.l1_line_mut(0, a).unwrap().data.word(0), 7);
    }

    #[test]
    fn latency_accumulates_by_level() {
        let cfg = tiny_cfg();
        assert_eq!(AccessOutcome::L1Hit.latency(&cfg), 4);
        assert_eq!(AccessOutcome::L2Hit.latency(&cfg), 16);
        assert_eq!(AccessOutcome::L3Hit.latency(&cfg), 44);
        assert_eq!(AccessOutcome::Miss.latency(&cfg), 44);
    }

    #[test]
    fn capacity_eviction_cascades_to_l2() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        // L1: 2 ways × 2 sets. Fill set 0 with lines 0, 2, then 4 evicts 0.
        for idx in [0u64, 2, 4] {
            h.fill(0, LineAddr::from_index(idx), data(idx));
        }
        let (outcome, _) = h.access(0, LineAddr::from_index(0));
        assert_eq!(outcome, AccessOutcome::L2Hit, "victim landed in L2");
    }

    #[test]
    fn eviction_events_are_ordered_l1_before_writeback() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        // Dirty a line, then overflow every level so it reaches memory.
        let a = LineAddr::from_index(0);
        h.fill(0, a, data(1));
        {
            let line = h.l1_line_mut(0, a).unwrap();
            line.dirty = true;
            line.data.set_word(0, 99);
        }
        let mut all_events = Vec::new();
        // L3: 2 ways × 8 sets; push many same-set lines (stride 8).
        for i in 1..=12u64 {
            let addr = LineAddr::from_index(i * 8);
            let (o, e) = h.access(0, addr);
            all_events.extend(e);
            if o == AccessOutcome::Miss {
                all_events.extend(h.fill(0, addr, data(0)));
            }
        }
        let l1_pos = all_events
            .iter()
            .position(|e| matches!(e, EvictionEvent::L1Evicted(l) if l.addr == a));
        let wb_pos = all_events.iter().position(|e| {
            matches!(e, EvictionEvent::MemoryWriteback { addr, data } if *addr == a && data.word(0) == 99)
        });
        let (l1_pos, wb_pos) = (
            l1_pos.expect("L1 eviction event for the dirty line"),
            wb_pos.expect("memory writeback with the freshest data"),
        );
        assert!(
            l1_pos < wb_pos,
            "L1 event {l1_pos} precedes writeback {wb_pos}"
        );
    }

    #[test]
    fn migration_between_cores_preserves_data() {
        let mut h = Hierarchy::new(&tiny_cfg(), 2);
        let a = LineAddr::from_index(5);
        h.fill(0, a, data(0));
        {
            let line = h.l1_line_mut(0, a).unwrap();
            line.dirty = true;
            line.data.set_word(0, 123);
        }
        let (outcome, events) = h.access(1, a);
        assert_eq!(outcome, AccessOutcome::L3Hit);
        assert!(matches!(&events[0], EvictionEvent::L1Evicted(l) if l.addr == a));
        assert_eq!(h.l1_line_mut(1, a).unwrap().data.word(0), 123);
        assert!(h.l1_line_mut(0, a).is_none());
    }

    #[test]
    fn force_write_back_is_two_phase() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        let a = LineAddr::from_index(3);
        h.fill(0, a, data(0));
        {
            let line = h.l1_line_mut(0, a).unwrap();
            line.dirty = true;
            line.data.set_word(0, 42);
        }
        assert!(
            h.force_write_back_scan().is_empty(),
            "first scan only flags"
        );
        let written = h.force_write_back_scan();
        assert_eq!(written, vec![(a, data(42))]);
        // Line remains resident and clean.
        let line = h.l1_line_mut(0, a).unwrap();
        assert!(!line.dirty);
        assert_eq!(line.data.word(0), 42);
        assert!(h.force_write_back_scan().is_empty(), "nothing left dirty");
    }

    #[test]
    fn fwb_redirty_restarts_aging() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        let a = LineAddr::from_index(3);
        h.fill(0, a, data(0));
        h.l1_line_mut(0, a).unwrap().dirty = true;
        h.force_write_back_scan(); // flags
        h.force_write_back_scan(); // writes back
        let line = h.l1_line_mut(0, a).unwrap();
        line.dirty = true; // new store re-dirties; flag was cleared
        line.fwb_flag = false;
        assert!(h.force_write_back_scan().is_empty(), "must age again first");
        assert_eq!(h.force_write_back_scan().len(), 1);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        h.fill(0, LineAddr::from_index(9), data(9));
        h.invalidate_all();
        assert_eq!(h.access(0, LineAddr::from_index(9)).0, AccessOutcome::Miss);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut h = Hierarchy::new(&tiny_cfg(), 1);
        let a = LineAddr::from_index(1);
        h.access(0, a);
        h.fill(0, a, data(0));
        h.access(0, a);
        assert_eq!(h.stats()[0].hits, 1);
        assert_eq!(h.stats()[0].misses, 1);
        assert_eq!(h.stats()[2].misses, 1);
    }
}
