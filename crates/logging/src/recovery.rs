//! The recovery routine (§III-E), hardened against damaged log slots.
//!
//! After a failure, the routine scans the log region from head to tail,
//! *classifies* every record (valid, torn by an interrupted drain, or
//! corrupt per its integrity footprint), decides which transactions
//! committed (and, under delay-persistence, which committed transactions
//! were *persisted*), then rolls winners forward with their redo data in
//! commit order and rolls losers back with their undo data in reverse
//! append order.
//!
//! Damage handling rests on two hardware invariants the controller
//! enforces:
//!
//! - A slot's metadata header (and a commit slot entirely) is one atomic
//!   row program, so every damaged record is still attributable to its
//!   thread, transaction and home address — only *data* words tear or flip.
//! - Under an active fault plan the controller gates in-place data writes
//!   behind undrained undo slots for the same line, and holds synchronous
//!   commit completion until the transaction's records have drained. A
//!   damaged record therefore always belongs to a transaction the program
//!   never observed as committed, and a damaged undo slot implies its home
//!   line was never overwritten in place.
//!
//! Roll-forward stops per thread at the first damaged record in its slice:
//! later records of that thread are dropped from winner determination and
//! replay (reported in [`RecoveryReport`]). Roll-back inspects the oldest
//! undo+redo entry per (transaction, word): a valid anchor restores the
//! pre-transaction value; a damaged anchor means the gated in-place write
//! never landed, so the word is skipped — it already holds that value.
//!
//! Winners are replayed **in commit order** (cross-transaction) and in
//! append order within a transaction; losers are undone in reverse append
//! order. With lock-based isolation (§III-A) the per-word entry order in
//! the ring matches program order, which keeps this schedule equivalent to
//! the paper's description when entries of different transactions
//! interleave in the ring.

use std::collections::{HashMap, HashSet};

use morlog_nvm::controller::{MemoryController, ScannedRecord};
use morlog_nvm::log::{LogRecord, LogRecordKind};
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::trace::{RecoveryStepTag, TraceEvent};
use morlog_sim_core::{Addr, ThreadId};

/// What recovery did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed (and persisted) transactions rolled forward, commit order.
    pub redone: Vec<TxKey>,
    /// Transactions rolled back (uncommitted, committed-but-not-persisted
    /// under delay-persistence, or demoted because the crash damaged one of
    /// their records before their commit could be trusted).
    pub undone: Vec<TxKey>,
    /// Ring records scanned.
    pub records_scanned: usize,
    /// Records an interrupted drain truncated (a strict prefix of their
    /// data words persisted). Classified and excluded from replay.
    pub torn_records: usize,
    /// Records whose integrity footprint or metadata header failed to
    /// check out (escaped bit flips). Excluded from replay.
    pub corrupt_records: usize,
    /// Undamaged records dropped from roll-forward because they follow a
    /// damaged record of the same thread (replay stops at first damage).
    pub dropped_records: usize,
    /// Whether this recovery pass was cut short by a second crash
    /// ([`recover_interrupted`]): the log region is intact and another
    /// recovery pass must run before the state is trustworthy.
    pub interrupted: bool,
}

impl RecoveryReport {
    /// Whether the scan found any damaged or dropped records.
    pub fn saw_damage(&self) -> bool {
        self.torn_records > 0 || self.corrupt_records > 0 || self.dropped_records > 0
    }
}

/// Why a scanned record was excluded from replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Damage {
    /// A crash cut the slot's drain short: fewer data words persisted than
    /// the record kind carries.
    Torn,
    /// The slot's contents fail their integrity footprint (or the header
    /// fields are internally inconsistent).
    Corrupt,
}

/// Classifies one scanned slot. Torn wins over corrupt: a truncated slot
/// also fails its CRC, but the distinction matters for reporting.
fn classify(s: &ScannedRecord) -> Option<Damage> {
    let r = &s.stored.record;
    if s.words_persisted < r.kind.data_words() {
        return Some(Damage::Torn);
    }
    if LogRecord::decode_meta(r.meta_words()).is_err() {
        return Some(Damage::Corrupt);
    }
    if r.kind == LogRecordKind::UndoRedo && r.undo.is_none() {
        return Some(Damage::Corrupt);
    }
    if !r.crc_ok(s.stored.torn) {
        return Some(Damage::Corrupt);
    }
    None
}

/// Runs recovery over the controller's log region and applies the log data
/// to the in-place NVMM locations. Pass `delay_persistence = true` for
/// systems that committed with the §III-C protocol.
///
/// The log region is emptied afterwards (entries are deleted by updating
/// the head pointer once their updates are in place).
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// use morlog_logging::recovery::recover;
/// use morlog_nvm::controller::MemoryController;
/// use morlog_sim_core::{Frequency, MemConfig};
///
/// let mut mc = MemoryController::with_default_map(
///     MemConfig::default(),
///     Frequency::ghz(3.0),
///     SldeCodec::new(CellModel::table_iii()),
/// );
/// let report = recover(&mut mc, false);
/// assert!(report.redone.is_empty() && report.undone.is_empty());
/// assert!(!report.saw_damage());
/// ```
pub fn recover(mc: &mut MemoryController, delay_persistence: bool) -> RecoveryReport {
    recover_inner(mc, delay_persistence, None)
}

/// Runs recovery but crashes it after `apply_budget` replay writes — the
/// double-crash scenario: power is lost again while the routine is rolling
/// winners forward (or losers back). The partial pass stops mid-replay and
/// leaves the log region intact (entries are only deleted *after* every
/// update is in place), so a subsequent [`recover`] re-scans the full ring
/// and must converge to the same state an uninterrupted recovery produces.
/// Replay writes are absolute values, so re-applying them is idempotent.
///
/// The returned report carries the winner/loser determination (which is
/// complete before any replay write) with
/// [`RecoveryReport::interrupted`] set.
pub fn recover_interrupted(
    mc: &mut MemoryController,
    delay_persistence: bool,
    apply_budget: usize,
) -> RecoveryReport {
    recover_inner(mc, delay_persistence, Some(apply_budget))
}

fn recover_inner(
    mc: &mut MemoryController,
    delay_persistence: bool,
    apply_budget: Option<usize>,
) -> RecoveryReport {
    // Budget of replay writes before the simulated second crash; `None`
    // never interrupts.
    let mut budget = apply_budget;
    let mut spend = move || match &mut budget {
        None => true,
        Some(0) => false,
        Some(n) => {
            *n -= 1;
            true
        }
    };
    // Gather and classify records from every log slice (one for the
    // centralized log, several for the §III-F distributed variant). A
    // transaction's records all live in its thread's slice, so per-slice
    // `seq` ordering is enough within a transaction; commit order across
    // slices comes from the timestamps in the commit records.
    let scanned = mc.scan_log();
    let tracer = mc.tracer().clone();
    let at = mc.last_tick();
    tracer.emit(at, || TraceEvent::Recovery {
        step: RecoveryStepTag::Scan,
        count: scanned.len() as u64,
    });
    let mut report = RecoveryReport {
        records_scanned: scanned.len(),
        ..Default::default()
    };
    let entries: Vec<(ScannedRecord, Option<Damage>)> =
        scanned.into_iter().map(|s| (s, classify(&s))).collect();
    for (_, damage) in &entries {
        match damage {
            Some(Damage::Torn) => report.torn_records += 1,
            Some(Damage::Corrupt) => report.corrupt_records += 1,
            None => {}
        }
    }

    // Per-thread roll-forward cutoff: the first damaged record in a
    // thread's slice ends that thread's trustworthy region. (Damaged
    // records keep a readable header, so they still name their thread.)
    let mut cutoff: HashMap<ThreadId, u64> = HashMap::new();
    for (s, damage) in &entries {
        if damage.is_some() {
            let c = cutoff
                .entry(s.stored.record.key.thread)
                .or_insert(s.stored.seq);
            *c = (*c).min(s.stored.seq);
        }
    }
    let usable = |s: &ScannedRecord, damage: &Option<Damage>| {
        damage.is_none()
            && cutoff
                .get(&s.stored.record.key.thread)
                .is_none_or(|&c| s.stored.seq < c)
    };
    report.dropped_records = entries
        .iter()
        .filter(|(s, d)| d.is_none() && !usable(s, d))
        .count();

    // Commit records ordered by timestamp (ties keep scan order, which is
    // the ring order of the centralized log).
    let mut commits: Vec<&ScannedRecord> = entries
        .iter()
        .filter(|(s, d)| s.stored.record.kind == LogRecordKind::Commit && usable(s, d))
        .map(|(s, _)| s)
        .collect();
    commits.sort_by_key(|s| s.stored.record.timestamp);

    // Which committed transactions count as winners.
    let mut winners: Vec<TxKey> = Vec::new();
    let mut winner_set: HashSet<TxKey> = HashSet::new();
    if delay_persistence {
        // §III-C/§III-E: a committed transaction is persisted iff the number
        // of redo entries appended after its commit record equals the logged
        // ulog counter. Only usable records count — a damaged or dropped
        // redo entry must demote its transaction. The first non-persisted
        // commit cuts off everything that committed later (persistence must
        // follow commit order).
        for commit in &commits {
            let ulog = commit.stored.record.ulog_count.unwrap_or(0) as usize;
            let post_redo = entries
                .iter()
                .filter(|(s, d)| {
                    usable(s, d)
                        && s.stored.record.kind == LogRecordKind::Redo
                        && s.stored.record.key == commit.stored.record.key
                        && s.stored.seq > commit.stored.seq
                })
                .count();
            if post_redo == ulog {
                winners.push(commit.stored.record.key);
                winner_set.insert(commit.stored.record.key);
            } else {
                break;
            }
        }
    } else {
        for commit in &commits {
            winners.push(commit.stored.record.key);
            winner_set.insert(commit.stored.record.key);
        }
    }

    // Group usable data records per transaction, preserving append order.
    let mut by_tx: HashMap<TxKey, Vec<&ScannedRecord>> = HashMap::new();
    for (s, d) in &entries {
        if s.stored.record.kind != LogRecordKind::Commit && usable(s, d) {
            by_tx.entry(s.stored.record.key).or_default().push(s);
        }
    }

    tracer.emit(at, || TraceEvent::Recovery {
        step: RecoveryStepTag::Winners,
        count: winners.len() as u64,
    });

    // Forward pass: winners in commit order, records in append order.
    let mut redone_words = 0u64;
    'forward: for key in &winners {
        if let Some(recs) = by_tx.get(key) {
            for s in recs {
                if !spend() {
                    report.interrupted = true;
                    break 'forward;
                }
                apply_word(mc, s.stored.record.addr, s.stored.record.redo);
                redone_words += 1;
            }
        }
    }
    tracer.emit(at, || TraceEvent::Recovery {
        step: RecoveryStepTag::RollForward,
        count: redone_words,
    });
    report.redone = winners;

    // Backward pass. When several rolled-back transactions touched a word
    // (delay-persistence cutoff, damage cutoff), their undo values chain:
    // each one's undo is the previous one's write, so walking the whole
    // chain in reverse lands on the undo of the *globally oldest*
    // rolled-back entry — the last value the surviving winners produced.
    // We therefore anchor each word at that single oldest entry across
    // all rolled-back transactions and apply only it. A damaged anchor
    // means the slot was still in flight at the crash, so the write-ahead
    // gate kept every later store to the word's line from persisting —
    // the in-place line (plus the forward replay above) already holds the
    // pre-rollback value and the word is skipped.
    let mut undone_set: HashSet<TxKey> = HashSet::new();
    let mut anchors: HashMap<Addr, &(ScannedRecord, Option<Damage>)> = HashMap::new();
    for e in &entries {
        let r = &e.0.stored.record;
        if r.kind != LogRecordKind::UndoRedo || winner_set.contains(&r.key) {
            continue;
        }
        undone_set.insert(r.key);
        anchors
            .entry(r.addr)
            .and_modify(|cur| {
                if (e.0.slice, e.0.stored.seq) < (cur.0.slice, cur.0.stored.seq) {
                    *cur = e;
                }
            })
            .or_insert(e);
    }
    let mut undos: Vec<(usize, u64, Addr, u64)> = Vec::new();
    for (&addr, (s, damage)) in &anchors {
        if damage.is_none() {
            if let Some(undo) = s.stored.record.undo {
                undos.push((s.slice, s.stored.seq, addr, undo));
            }
        }
    }
    undos.sort_by_key(|&(slice, seq, _, _)| (slice, seq));
    tracer.emit(at, || TraceEvent::Recovery {
        step: RecoveryStepTag::RollBack,
        count: undos.len() as u64,
    });
    for &(_, _, addr, undo) in undos.iter().rev() {
        if report.interrupted || !spend() {
            report.interrupted = true;
            break;
        }
        apply_word(mc, addr, undo);
    }
    // Committed-but-unpersisted transactions past the delay-persistence
    // cutoff — and transactions whose commit record was dropped behind a
    // damaged record — are rolled back even if only their commit record
    // names them.
    for (s, _) in &entries {
        let r = &s.stored.record;
        if r.kind == LogRecordKind::Commit && !winner_set.contains(&r.key) {
            undone_set.insert(r.key);
        }
    }
    let mut undone: Vec<TxKey> = undone_set.into_iter().collect();
    undone.sort();
    report.undone = undone;

    // "After that, log entries are deleted by updating the log head pointer."
    // A second crash mid-replay leaves the ring intact: entries may only be
    // deleted once every update is in place, so the next recovery pass can
    // re-derive everything the interrupted one did.
    if report.interrupted {
        tracer.emit(at, || TraceEvent::Recovery {
            step: RecoveryStepTag::Interrupted,
            count: report.undone.len() as u64,
        });
        return report;
    }
    mc.clear_log();
    tracer.emit(at, || TraceEvent::Recovery {
        step: RecoveryStepTag::Done,
        count: report.undone.len() as u64,
    });
    report
}

fn apply_word(mc: &mut MemoryController, addr: Addr, value: u64) {
    let line_addr = addr.line();
    let mut line = mc.read_line(line_addr);
    line.set_word(addr.word_index(), value);
    mc.write_line_functional(line_addr, line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecord;
    use morlog_sim_core::{Frequency, MemConfig, ThreadId, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn word_at(mc: &MemoryController, addr: Addr) -> u64 {
        mc.read_line(addr.line()).word(addr.word_index())
    }

    #[test]
    fn committed_tx_rolls_forward() {
        let mut m = mc();
        let a = m.map().data_base(); // word 0 of the first data line
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 42, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, None), 0).unwrap();
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k]);
        assert!(report.undone.is_empty());
        assert!(!report.saw_damage());
        assert_eq!(word_at(&m, a), 42);
        assert!(m.log_region().is_empty());
    }

    #[test]
    fn uncommitted_tx_rolls_back() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        // Simulate: undo+redo persisted, then in-place data updated, crash
        // before commit.
        m.try_append_log(LogRecord::undo_redo(k, a, 7, 42, 0xFF), 0)
            .unwrap();
        let mut line = m.read_line(a.line());
        line.set_word(0, 42);
        m.write_line_functional(a.line(), line);
        let report = recover(&mut m, false);
        assert_eq!(report.undone, vec![k]);
        assert_eq!(word_at(&m, a), 7, "rolled back to the undo value");
    }

    #[test]
    fn newest_redo_wins_within_a_tx() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 1, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::redo_only(k, a, 2, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::redo_only(k, a, 3, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, None), 0).unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 3);
    }

    #[test]
    fn oldest_undo_wins_for_losers() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        // Two undo+redo entries for the same word (line was evicted and
        // re-fetched mid-transaction): the oldest anchors the rollback.
        m.try_append_log(LogRecord::undo_redo(k, a, 10, 20, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::undo_redo(k, a, 20, 30, 0xFF), 0)
            .unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 10);
    }

    #[test]
    fn interleaved_txs_respect_commit_order() {
        let mut m = mc();
        let a = m.map().data_base();
        let k1 = key(0, 0);
        let k2 = key(1, 0);
        // tx1 writes 5, commits; tx2 writes 9 (undo = 5), commits.
        m.try_append_log(LogRecord::undo_redo(k1, a, 0, 5, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k1, None), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k2, a, 5, 9, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k2, None), 0).unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 9, "later commit replays later");
    }

    #[test]
    fn committed_then_aborted_writer_rolls_to_committed_value() {
        let mut m = mc();
        let a = m.map().data_base();
        let k1 = key(0, 0);
        let k2 = key(1, 0);
        m.try_append_log(LogRecord::undo_redo(k1, a, 0, 5, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k1, None), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k2, a, 5, 9, 0xFF), 0)
            .unwrap();
        // Crash before tx2 commits; in-place holds 9.
        let mut line = m.read_line(a.line());
        line.set_word(0, 9);
        m.write_line_functional(a.line(), line);
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k2]);
        assert_eq!(
            word_at(&m, a),
            5,
            "tx2 undone back to tx1's committed value"
        );
    }

    #[test]
    fn dp_persistence_cutoff_follows_commit_order() {
        let mut m = mc();
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let a2 = Addr::new(a0.as_u64() + 16);
        let (k1, k2, k3) = (key(0, 0), key(0, 1), key(0, 2));
        // tx1: complete (ulog 1, one post-commit redo entry present).
        m.try_append_log(LogRecord::undo_redo(k1, a0, 0, 1, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(1)), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k1, a0, 11, 0xFF), 0)
            .unwrap();
        // tx2: claims 2 ULog words but only one redo entry made it.
        m.try_append_log(LogRecord::undo_redo(k2, a1, 0, 2, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k2, Some(2)), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k2, a1, 22, 0xFF), 0)
            .unwrap();
        // tx3: complete, but commits after tx2 -> still a loser.
        m.try_append_log(LogRecord::undo_redo(k3, a2, 0, 3, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k3, Some(0)), 0).unwrap();
        let report = recover(&mut m, true);
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k2, k3]);
        assert_eq!(word_at(&m, a0), 11, "tx1 rolled forward to its newest redo");
        assert_eq!(word_at(&m, a1), 0, "tx2 rolled back");
        assert_eq!(word_at(&m, a2), 0, "tx3 rolled back despite being complete");
    }

    /// Boundary: the transaction's log state persisted up to and including
    /// the commit record's acceptance, but the record itself is damaged —
    /// the `ulog` counter it carries is unreadable. Recovery must not
    /// guess: the commit is unusable, the transaction rolls back via its
    /// undo anchor, and the DP cutoff drops every later commit of the
    /// thread even if complete.
    #[test]
    fn dp_ulog_persisted_but_commit_torn_rolls_back() {
        let mut m = mc();
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k1, k2) = (key(0, 0), key(0, 1));
        m.try_append_log(LogRecord::undo_redo(k1, a0, 5, 50, 0xFF), 0)
            .unwrap();
        let commit = m.try_append_log(LogRecord::commit(k1, Some(1)), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k1, a0, 51, 0xFF), 0)
            .unwrap();
        // tx2: complete with ulog 0, committing after the damaged record.
        m.try_append_log(LogRecord::undo_redo(k2, a1, 6, 60, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k2, Some(0)), 0).unwrap();
        // In-place data already carries tx1's update (DP wrote it back).
        let mut line = m.read_line(a0.line());
        line.set_word(a0.word_index(), 51);
        m.write_line_functional(a0.line(), line);
        // Tear the commit record: the stored ulog field no longer matches
        // the sealed CRC, so the scan classifies the record as corrupt.
        assert!(m.corrupt_log_record(0, commit.offset, |r| {
            r.ulog_count = Some(2);
        }));
        let report = recover(&mut m, true);
        assert_eq!(report.corrupt_records, 1);
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k1, k2]);
        assert_eq!(word_at(&m, a0), 5, "tx1 rolled back via its undo anchor");
        assert_eq!(word_at(&m, a1), 6, "tx2 dropped behind the damage");
    }

    /// Boundary: the crash lands exactly after the commit record persists,
    /// with zero log writes following it. With `ulog = 0` that is the
    /// complete protocol state — the transaction wins. With `ulog > 0` the
    /// same crash point means the promised post-commit redo entries are
    /// missing, and the transaction must lose.
    #[test]
    fn dp_commit_persisted_with_zero_subsequent_writes() {
        // ulog = 0: nothing was promised after the commit; roll forward.
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 1, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, Some(0)), 0).unwrap();
        let report = recover(&mut m, true);
        assert_eq!(report.redone, vec![k]);
        assert!(report.undone.is_empty());
        assert_eq!(word_at(&m, a), 1);

        // ulog = 1 at the same crash point: the counter says one more redo
        // entry should follow, none did — the commit is not persisted.
        let mut m = mc();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 7, 8, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, Some(1)), 0).unwrap();
        let report = recover(&mut m, true);
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k]);
        assert_eq!(word_at(&m, a), 7, "rolled back to the undo value");
    }

    #[test]
    fn non_dp_ignores_ulog_counters() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 1, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, Some(99)), 0).unwrap();
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k]);
        assert_eq!(word_at(&m, a), 1);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut m = mc();
        let report = recover(&mut m, true);
        assert_eq!(report, RecoveryReport::default());
    }

    /// Double crash: recovery dies after every possible number of replay
    /// writes; a second, uninterrupted pass must land on exactly the state
    /// a single uninterrupted recovery produces.
    #[test]
    fn interrupted_recovery_converges_on_second_pass() {
        let build = || {
            let mut m = mc();
            let a0 = m.map().data_base();
            let a1 = Addr::new(a0.as_u64() + 8);
            let (k1, k2) = (key(0, 0), key(1, 0));
            // Winner k1 writes both words; loser k2 overwrote a1 in place.
            m.try_append_log(LogRecord::undo_redo(k1, a0, 0, 5, 0xFF), 0)
                .unwrap();
            m.try_append_log(LogRecord::undo_redo(k1, a1, 0, 6, 0xFF), 0)
                .unwrap();
            m.try_append_log(LogRecord::commit(k1, None), 0).unwrap();
            m.try_append_log(LogRecord::undo_redo(k2, a1, 6, 9, 0xFF), 0)
                .unwrap();
            let mut line = m.read_line(a1.line());
            line.set_word(a1.word_index(), 9);
            m.write_line_functional(a1.line(), line);
            (m, a0, a1)
        };
        let (mut reference, a0, a1) = build();
        recover(&mut reference, false);
        let want = (word_at(&reference, a0), word_at(&reference, a1));
        assert_eq!(want, (5, 6));
        for budget in 0..3 {
            let (mut m, a0, a1) = build();
            let partial = recover_interrupted(&mut m, false, budget);
            assert!(partial.interrupted, "budget {budget} must interrupt");
            assert!(
                !m.log_region().is_empty(),
                "interrupted recovery must not delete log entries"
            );
            let second = recover(&mut m, false);
            assert!(!second.interrupted);
            assert_eq!(second.redone, vec![key(0, 0)]);
            assert_eq!(second.undone, vec![key(1, 0)]);
            assert_eq!((word_at(&m, a0), word_at(&m, a1)), want, "budget {budget}");
            assert!(m.log_region().is_empty());
        }
        // A budget past the total replay count no longer interrupts.
        let (mut m, _, _) = build();
        let full = recover_interrupted(&mut m, false, 64);
        assert!(!full.interrupted);
        assert!(m.log_region().is_empty());
    }
}

#[cfg(test)]
mod damage_tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecord;
    use morlog_sim_core::fault::FaultPlan;
    use morlog_sim_core::{Frequency, MemConfig, ThreadId, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn word_at(mc: &MemoryController, addr: Addr) -> u64 {
        mc.read_line(addr.line()).word(addr.word_index())
    }

    /// A crash tears the only undo+redo slot of an uncommitted transaction
    /// whose in-place write was gated: the word keeps its pre-tx value and
    /// the record is reported torn, not replayed.
    #[test]
    fn torn_undo_anchor_is_skipped_not_applied() {
        let mut m = mc();
        let mut plan = FaultPlan::none();
        plan.torn_drain_per_mille = 1000;
        plan.fault_budget = Some(1);
        m.set_fault_plan(plan);
        let a = m.map().data_base();
        let k = key(0, 0);
        // Pre-tx value 7 in place; the undo slot never finishes draining.
        let mut line = m.read_line(a.line());
        line.set_word(0, 7);
        m.write_line_functional(a.line(), line);
        m.try_append_log(LogRecord::undo_redo(k, a, 7, 42, 0xFF), 0)
            .unwrap();
        m.crash_persist();
        let report = recover(&mut m, false);
        assert_eq!(report.torn_records, 1);
        assert_eq!(
            report.undone,
            vec![k],
            "the damaged tx is still rolled back"
        );
        assert_eq!(word_at(&m, a), 7, "skipped word keeps the pre-tx value");
    }

    /// A corrupt (bit-flipped) record demotes every later record of its
    /// thread: a commit behind the damage is dropped and its transaction
    /// rolls back via the earlier, valid undo anchor.
    #[test]
    fn damage_cuts_off_later_commits_of_the_thread() {
        let mut m = mc();
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let k = key(0, 0);
        let first = m
            .try_append_log(LogRecord::undo_redo(k, a0, 5, 50, 0xFF), 0)
            .unwrap();
        let second = m
            .try_append_log(LogRecord::undo_redo(k, a1, 6, 60, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, None), 0).unwrap();
        assert!(first.offset < second.offset);
        // In-place state: a0 already carries the tx's value; a1 stayed at
        // its pre-tx value because the write-ahead gate holds a line back
        // while its undo slot is in flight (the slot about to be damaged).
        let mut line = m.read_line(a0.line());
        line.set_word(a0.word_index(), 50);
        m.write_line_functional(a0.line(), line);
        let mut line = m.read_line(a1.line());
        line.set_word(a1.word_index(), 6);
        m.write_line_functional(a1.line(), line);
        // Flip a redo bit in the second slot behind the sealed CRC's back
        // (stands in for an escaped crash-time drift flip).
        assert!(m.corrupt_log_record(0, second.offset, |r| {
            let w = r.data_word(1);
            r.set_data_word(1, w ^ (1 << 17));
        }));
        let report = recover(&mut m, false);
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(
            report.dropped_records, 1,
            "the commit behind the damage is dropped"
        );
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k]);
        assert_eq!(word_at(&m, a0), 5, "valid anchor rolled back");
        assert_eq!(word_at(&m, a1), 6, "damaged anchor skipped (still pre-tx)");
    }

    /// Damage in one thread's slice must not disturb another thread's
    /// committed transaction.
    #[test]
    fn damage_is_confined_to_its_thread() {
        let mut m = mc();
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k0, k1) = (key(0, 0), key(1, 0));
        m.try_append_log(LogRecord::undo_redo(k0, a0, 0, 5, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k0, None), 0).unwrap();
        let victim = m
            .try_append_log(LogRecord::undo_redo(k1, a1, 0, 9, 0xFF), 0)
            .unwrap();
        assert!(m.corrupt_log_record(0, victim.offset, |r| {
            let w = r.data_word(0);
            r.set_data_word(0, w ^ 1);
        }));
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k0], "thread 0's commit survives");
        assert_eq!(report.undone, vec![k1]);
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(word_at(&m, a0), 5);
    }

    /// Under delay-persistence a damaged post-commit redo entry fails the
    /// ulog check and demotes the committed transaction to a loser.
    #[test]
    fn dp_damaged_post_commit_redo_demotes_the_commit() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 3, 30, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k, Some(1)), 0).unwrap();
        let redo = m
            .try_append_log(LogRecord::redo_only(k, a, 31, 0xFF), 0)
            .unwrap();
        assert!(m.corrupt_log_record(0, redo.offset, |r| {
            let w = r.data_word(0);
            r.set_data_word(0, w ^ 2);
        }));
        let report = recover(&mut m, true);
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k]);
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(word_at(&m, a), 3, "rolled back to the pre-tx value");
    }

    /// Double recovery stays idempotent with damage: the first pass clears
    /// the ring (and the torn-word map), so the second scans nothing.
    #[test]
    fn recovery_after_damage_is_idempotent() {
        let mut m = mc();
        let mut plan = FaultPlan::none();
        plan.torn_drain_per_mille = 1000;
        plan.fault_budget = Some(4);
        m.set_fault_plan(plan);
        let a = m.map().data_base();
        m.try_append_log(LogRecord::undo_redo(key(0, 0), a, 0, 1, 0xFF), 0)
            .unwrap();
        m.crash_persist();
        let first = recover(&mut m, false);
        assert!(first.saw_damage());
        let second = recover(&mut m, false);
        assert_eq!(second.records_scanned, 0);
        assert!(!second.saw_damage());
    }
}

#[cfg(test)]
mod distributed_tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecord;
    use morlog_sim_core::{Addr, Frequency, MemConfig, ThreadId, TxId};

    fn mc_sliced(slices: usize) -> MemoryController {
        let cfg = MemConfig {
            log_slices: slices,
            ..Default::default()
        };
        MemoryController::with_default_map(
            cfg,
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn word_at(mc: &MemoryController, addr: Addr) -> u64 {
        mc.read_line(addr.line()).word(addr.word_index())
    }

    #[test]
    fn slices_route_by_thread() {
        let mut m = mc_sliced(4);
        let a = m.map().data_base();
        for t in 0..4u8 {
            m.try_append_log(LogRecord::undo_redo(key(t, 0), a, 0, t as u64, 0xFF), 0)
                .unwrap();
        }
        for slice in 0..4 {
            assert_eq!(m.log_regions()[slice].records().count(), 1, "slice {slice}");
        }
    }

    #[test]
    fn timestamps_define_commit_order_across_slices() {
        // Threads on different slices write the same... no — threads write
        // disjoint words; commit order still decides the DP cutoff.
        let mut m = mc_sliced(2);
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k0, k1) = (key(0, 0), key(1, 0));
        // Thread 1 commits FIRST (timestamp 1) but its records land in
        // slice 1; thread 0 commits second with an incomplete redo set.
        m.try_append_log(LogRecord::undo_redo(k1, a1, 0, 11, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(0)).with_timestamp(1), 0)
            .unwrap();
        m.try_append_log(LogRecord::undo_redo(k0, a0, 0, 7, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k0, Some(3)).with_timestamp(2), 0)
            .unwrap();
        let report = recover(&mut m, true);
        // k1 (ts 1) persisted; k0 (ts 2) fails its ulog check and rolls back.
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k0]);
        assert_eq!(word_at(&m, a1), 11);
        assert_eq!(word_at(&m, a0), 0);
    }

    #[test]
    fn dp_cutoff_spans_slices_in_timestamp_order() {
        let mut m = mc_sliced(2);
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k0, k1) = (key(0, 0), key(1, 0));
        // Thread 0 commits first but NON-persisted; thread 1 commits later
        // and is complete — the cutoff must still roll thread 1 back.
        m.try_append_log(LogRecord::undo_redo(k0, a0, 0, 7, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k0, Some(5)).with_timestamp(1), 0)
            .unwrap();
        m.try_append_log(LogRecord::undo_redo(k1, a1, 0, 11, 0xFF), 0)
            .unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(0)).with_timestamp(2), 0)
            .unwrap();
        let report = recover(&mut m, true);
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k0, k1]);
        assert_eq!(word_at(&m, a0), 0);
        assert_eq!(
            word_at(&m, a1),
            0,
            "later commit rolled back despite being complete"
        );
    }

    #[test]
    fn clear_log_empties_every_slice() {
        let mut m = mc_sliced(3);
        let a = m.map().data_base();
        for t in 0..3u8 {
            m.try_append_log(LogRecord::undo_redo(key(t, 0), a, 0, 1, 0xFF), 0)
                .unwrap();
        }
        recover(&mut m, false);
        for r in m.log_regions() {
            assert!(r.is_empty());
        }
    }
}
