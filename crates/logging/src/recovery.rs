//! The recovery routine (§III-E).
//!
//! After a failure, the routine scans the log region from head to tail,
//! decides which transactions committed (and, under delay-persistence,
//! which committed transactions were *persisted*), then rolls winners
//! forward with their redo data in commit order and rolls losers back with
//! their undo data in reverse append order.
//!
//! Winners are replayed **in commit order** (cross-transaction) and in
//! append order within a transaction; losers are undone in reverse global
//! append order. With lock-based isolation (§III-A) the per-word entry
//! order in the ring matches program order, which makes this replay
//! schedule equivalent to the paper's "redone with the redo data / undone
//! with the undo data" description while remaining correct when entries of
//! different transactions interleave in the ring.

use std::collections::{HashMap, HashSet};

use morlog_nvm::controller::MemoryController;
use morlog_nvm::log::{LogRecordKind, StoredRecord};
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::Addr;

/// What recovery did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed (and persisted) transactions rolled forward, commit order.
    pub redone: Vec<TxKey>,
    /// Transactions rolled back (uncommitted, or committed-but-not-persisted
    /// under delay-persistence).
    pub undone: Vec<TxKey>,
    /// Ring records scanned.
    pub records_scanned: usize,
}

/// Runs recovery over the controller's log region and applies the log data
/// to the in-place NVMM locations. Pass `delay_persistence = true` for
/// systems that committed with the §III-C protocol.
///
/// The log region is emptied afterwards (entries are deleted by updating
/// the head pointer once their updates are in place).
///
/// # Example
///
/// ```
/// use morlog_encoding::{cell::CellModel, slde::SldeCodec};
/// use morlog_logging::recovery::recover;
/// use morlog_nvm::controller::MemoryController;
/// use morlog_sim_core::{Frequency, MemConfig};
///
/// let mut mc = MemoryController::with_default_map(
///     MemConfig::default(),
///     Frequency::ghz(3.0),
///     SldeCodec::new(CellModel::table_iii()),
/// );
/// let report = recover(&mut mc, false);
/// assert!(report.redone.is_empty() && report.undone.is_empty());
/// ```
pub fn recover(mc: &mut MemoryController, delay_persistence: bool) -> RecoveryReport {
    // Gather records from every log slice (one for the centralized log,
    // several for the §III-F distributed variant). A transaction's records
    // all live in its thread's slice, so per-slice `seq` ordering is enough
    // within a transaction; commit order across slices comes from the
    // timestamps in the commit records.
    let records: Vec<StoredRecord> =
        mc.log_regions().iter().flat_map(|r| r.records().copied()).collect();
    let mut report = RecoveryReport { records_scanned: records.len(), ..Default::default() };

    // Commit records ordered by timestamp (ties keep scan order, which is
    // the ring order of the centralized log).
    let mut commits: Vec<&StoredRecord> =
        records.iter().filter(|r| r.record.kind == LogRecordKind::Commit).collect();
    commits.sort_by_key(|r| r.record.timestamp);

    // Which committed transactions count as winners.
    let mut winners: Vec<TxKey> = Vec::new();
    let mut winner_set: HashSet<TxKey> = HashSet::new();
    if delay_persistence {
        // §III-C/§III-E: a committed transaction is persisted iff the number
        // of redo entries appended after its commit record equals the logged
        // ulog counter. The first non-persisted commit cuts off everything
        // that committed later (persistence must follow commit order).
        for commit in &commits {
            let ulog = commit.record.ulog_count.unwrap_or(0) as usize;
            let post_redo = records
                .iter()
                .filter(|r| {
                    r.record.kind == LogRecordKind::Redo
                        && r.record.key == commit.record.key
                        && r.seq > commit.seq
                })
                .count();
            if post_redo == ulog {
                winners.push(commit.record.key);
                winner_set.insert(commit.record.key);
            } else {
                break;
            }
        }
    } else {
        for commit in &commits {
            winners.push(commit.record.key);
            winner_set.insert(commit.record.key);
        }
    }

    // Group data records per transaction, preserving append order.
    let mut by_tx: HashMap<TxKey, Vec<&StoredRecord>> = HashMap::new();
    for r in &records {
        if r.record.kind != LogRecordKind::Commit {
            by_tx.entry(r.record.key).or_default().push(r);
        }
    }

    // Forward pass: winners in commit order, records in append order.
    for key in &winners {
        if let Some(recs) = by_tx.get(key) {
            for r in recs {
                apply_word(mc, r.record.addr, r.record.redo);
            }
        }
    }
    report.redone = winners;

    // Backward pass: losers in reverse global append order, undo data only.
    // Transactions with only redo records and no commit record are orphans:
    // their log was already truncated (they are fully durable in place) and
    // a straggler redo entry was appended afterwards — nothing is applied
    // and they are not reported.
    let mut undone_set: HashSet<TxKey> = HashSet::new();
    for r in records.iter().rev() {
        if r.record.kind == LogRecordKind::UndoRedo && !winner_set.contains(&r.record.key) {
            let undo = r.record.undo.expect("undo+redo entries carry undo data");
            apply_word(mc, r.record.addr, undo);
            undone_set.insert(r.record.key);
        }
    }
    // Committed-but-unpersisted transactions past the delay-persistence
    // cutoff are rolled back even if only their commit record names them.
    for commit in &commits {
        if !winner_set.contains(&commit.record.key) {
            undone_set.insert(commit.record.key);
        }
    }
    let mut undone: Vec<TxKey> = undone_set.into_iter().collect();
    undone.sort();
    report.undone = undone;

    // "After that, log entries are deleted by updating the log head pointer."
    mc.clear_log();
    report
}

fn apply_word(mc: &mut MemoryController, addr: Addr, value: u64) {
    let line_addr = addr.line();
    let mut line = mc.read_line(line_addr);
    line.set_word(addr.word_index(), value);
    mc.write_line_functional(line_addr, line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecord;
    use morlog_sim_core::{Frequency, MemConfig, ThreadId, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn word_at(mc: &MemoryController, addr: Addr) -> u64 {
        mc.read_line(addr.line()).word(addr.word_index())
    }

    #[test]
    fn committed_tx_rolls_forward() {
        let mut m = mc();
        let a = m.map().data_base(); // word 0 of the first data line
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 42, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k, None), 0).unwrap();
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k]);
        assert!(report.undone.is_empty());
        assert_eq!(word_at(&m, a), 42);
        assert!(m.log_region().is_empty());
    }

    #[test]
    fn uncommitted_tx_rolls_back() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        // Simulate: undo+redo persisted, then in-place data updated, crash
        // before commit.
        m.try_append_log(LogRecord::undo_redo(k, a, 7, 42, 0xFF), 0).unwrap();
        let mut line = m.read_line(a.line());
        line.set_word(0, 42);
        m.write_line_functional(a.line(), line);
        let report = recover(&mut m, false);
        assert_eq!(report.undone, vec![k]);
        assert_eq!(word_at(&m, a), 7, "rolled back to the undo value");
    }

    #[test]
    fn newest_redo_wins_within_a_tx() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 1, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k, a, 2, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k, a, 3, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k, None), 0).unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 3);
    }

    #[test]
    fn oldest_undo_wins_for_losers() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        // Two undo+redo entries for the same word (line was evicted and
        // re-fetched mid-transaction): reverse-order undo ends at the oldest.
        m.try_append_log(LogRecord::undo_redo(k, a, 10, 20, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k, a, 20, 30, 0xFF), 0).unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 10);
    }

    #[test]
    fn interleaved_txs_respect_commit_order() {
        let mut m = mc();
        let a = m.map().data_base();
        let k1 = key(0, 0);
        let k2 = key(1, 0);
        // tx1 writes 5, commits; tx2 writes 9 (undo = 5), commits.
        m.try_append_log(LogRecord::undo_redo(k1, a, 0, 5, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k1, None), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k2, a, 5, 9, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k2, None), 0).unwrap();
        recover(&mut m, false);
        assert_eq!(word_at(&m, a), 9, "later commit replays later");
    }

    #[test]
    fn committed_then_aborted_writer_rolls_to_committed_value() {
        let mut m = mc();
        let a = m.map().data_base();
        let k1 = key(0, 0);
        let k2 = key(1, 0);
        m.try_append_log(LogRecord::undo_redo(k1, a, 0, 5, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k1, None), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k2, a, 5, 9, 0xFF), 0).unwrap();
        // Crash before tx2 commits; in-place holds 9.
        let mut line = m.read_line(a.line());
        line.set_word(0, 9);
        m.write_line_functional(a.line(), line);
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k2]);
        assert_eq!(word_at(&m, a), 5, "tx2 undone back to tx1's committed value");
    }

    #[test]
    fn dp_persistence_cutoff_follows_commit_order() {
        let mut m = mc();
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let a2 = Addr::new(a0.as_u64() + 16);
        let (k1, k2, k3) = (key(0, 0), key(0, 1), key(0, 2));
        // tx1: complete (ulog 1, one post-commit redo entry present).
        m.try_append_log(LogRecord::undo_redo(k1, a0, 0, 1, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(1)), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k1, a0, 11, 0xFF), 0).unwrap();
        // tx2: claims 2 ULog words but only one redo entry made it.
        m.try_append_log(LogRecord::undo_redo(k2, a1, 0, 2, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k2, Some(2)), 0).unwrap();
        m.try_append_log(LogRecord::redo_only(k2, a1, 22, 0xFF), 0).unwrap();
        // tx3: complete, but commits after tx2 -> still a loser.
        m.try_append_log(LogRecord::undo_redo(k3, a2, 0, 3, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k3, Some(0)), 0).unwrap();
        let report = recover(&mut m, true);
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k2, k3]);
        assert_eq!(word_at(&m, a0), 11, "tx1 rolled forward to its newest redo");
        assert_eq!(word_at(&m, a1), 0, "tx2 rolled back");
        assert_eq!(word_at(&m, a2), 0, "tx3 rolled back despite being complete");
    }

    #[test]
    fn non_dp_ignores_ulog_counters() {
        let mut m = mc();
        let a = m.map().data_base();
        let k = key(0, 0);
        m.try_append_log(LogRecord::undo_redo(k, a, 0, 1, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k, Some(99)), 0).unwrap();
        let report = recover(&mut m, false);
        assert_eq!(report.redone, vec![k]);
        assert_eq!(word_at(&m, a), 1);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut m = mc();
        let report = recover(&mut m, true);
        assert_eq!(report, RecoveryReport::default());
    }
}

#[cfg(test)]
mod distributed_tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecord;
    use morlog_sim_core::{Addr, Frequency, MemConfig, ThreadId, TxId};

    fn mc_sliced(slices: usize) -> MemoryController {
        let mut cfg = MemConfig::default();
        cfg.log_slices = slices;
        MemoryController::with_default_map(
            cfg,
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn word_at(mc: &MemoryController, addr: Addr) -> u64 {
        mc.read_line(addr.line()).word(addr.word_index())
    }

    #[test]
    fn slices_route_by_thread() {
        let mut m = mc_sliced(4);
        let a = m.map().data_base();
        for t in 0..4u8 {
            m.try_append_log(LogRecord::undo_redo(key(t, 0), a, 0, t as u64, 0xFF), 0).unwrap();
        }
        for slice in 0..4 {
            assert_eq!(m.log_regions()[slice].records().count(), 1, "slice {slice}");
        }
    }

    #[test]
    fn timestamps_define_commit_order_across_slices() {
        // Threads on different slices write the same... no — threads write
        // disjoint words; commit order still decides the DP cutoff.
        let mut m = mc_sliced(2);
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k0, k1) = (key(0, 0), key(1, 0));
        // Thread 1 commits FIRST (timestamp 1) but its records land in
        // slice 1; thread 0 commits second with an incomplete redo set.
        m.try_append_log(LogRecord::undo_redo(k1, a1, 0, 11, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(0)).with_timestamp(1), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k0, a0, 0, 7, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k0, Some(3)).with_timestamp(2), 0).unwrap();
        let report = recover(&mut m, true);
        // k1 (ts 1) persisted; k0 (ts 2) fails its ulog check and rolls back.
        assert_eq!(report.redone, vec![k1]);
        assert_eq!(report.undone, vec![k0]);
        assert_eq!(word_at(&m, a1), 11);
        assert_eq!(word_at(&m, a0), 0);
    }

    #[test]
    fn dp_cutoff_spans_slices_in_timestamp_order() {
        let mut m = mc_sliced(2);
        let a0 = m.map().data_base();
        let a1 = Addr::new(a0.as_u64() + 8);
        let (k0, k1) = (key(0, 0), key(1, 0));
        // Thread 0 commits first but NON-persisted; thread 1 commits later
        // and is complete — the cutoff must still roll thread 1 back.
        m.try_append_log(LogRecord::undo_redo(k0, a0, 0, 7, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k0, Some(5)).with_timestamp(1), 0).unwrap();
        m.try_append_log(LogRecord::undo_redo(k1, a1, 0, 11, 0xFF), 0).unwrap();
        m.try_append_log(LogRecord::commit(k1, Some(0)).with_timestamp(2), 0).unwrap();
        let report = recover(&mut m, true);
        assert!(report.redone.is_empty());
        assert_eq!(report.undone, vec![k0, k1]);
        assert_eq!(word_at(&m, a0), 0);
        assert_eq!(word_at(&m, a1), 0, "later commit rolled back despite being complete");
    }

    #[test]
    fn clear_log_empties_every_slice() {
        let mut m = mc_sliced(3);
        let a = m.map().data_base();
        for t in 0..3u8 {
            m.try_append_log(LogRecord::undo_redo(key(t, 0), a, 0, 1, 0xFF), 0).unwrap();
        }
        recover(&mut m, false);
        for r in m.log_regions() {
            assert!(r.is_empty());
        }
    }
}
