//! The hardware log controller: morphable logging (§III) and the FWB
//! undo+redo baseline (Ogleari et al., HPCA'18) behind one engine-facing
//! interface.
//!
//! # Event model
//!
//! The simulation engine drives the controller with the events the paper's
//! hardware reacts to:
//!
//! * [`tx_begin`] / [`start_commit`] — transaction boundaries
//!   (`Tx_Begin` / `Tx_End` annotations).
//! * [`on_store`] — a transactional store that already hit in L1; the
//!   controller runs the Fig. 8 word-state machine, creates or coalesces
//!   log entries, and may stall the store on buffer backpressure.
//! * [`on_l1_evict`] — an L1 line left the cache; `ULog` words emit redo
//!   entries, `Dirty` words force their undo+redo entries out first.
//! * [`on_llc_writeback`] — updated data are about to enter the persist
//!   domain; matching redo-buffer entries are discarded (their data are
//!   persisting anyway) and any still-buffered undo entries for the line
//!   are forced ahead of the data (write-ahead ordering).
//! * [`tick`] — per-cycle buffer aging: eager undo+redo eviction, lazy
//!   redo eviction, commit-record appends, overflow drain.
//!
//! [`tx_begin`]: LogController::tx_begin
//! [`start_commit`]: LogController::start_commit
//! [`on_store`]: LogController::on_store
//! [`on_l1_evict`]: LogController::on_l1_evict
//! [`on_llc_writeback`]: LogController::on_llc_writeback
//! [`tick`]: LogController::tick

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use morlog_cache::line::{CacheLine, L1Ext, WordLogState};
use morlog_encoding::secure::SecureMode;
use morlog_nvm::controller::{LogAppendError, MemoryController};
use morlog_nvm::log::{LogRecord, LogRecordKind};
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::metrics::CommitLatency;
use morlog_sim_core::stats::LogStats;
use morlog_sim_core::trace::{CommitPhaseTag, TraceEvent, Tracer, WordStateTag};
use morlog_sim_core::types::dirty_byte_mask;
use morlog_sim_core::{Addr, CheckMutation, Cycle, DesignKind, LogConfig, ThreadId, TxId};

use crate::buffer::LogBuffer;

/// A store could not proceed this cycle, and what blocked it. The engine
/// retries the store next cycle and charges the stalled cycle to the
/// matching attribution bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreStall {
    /// On-chip log machinery backpressure: forced entries are waiting in
    /// the overflow queue, or the buffer is full and its head entry could
    /// not flush because the log ring needs truncation first.
    Buffer,
    /// The flush path found the NVMM write queue full this cycle.
    WriteQueue,
}

/// An undo+redo entry left the buffer. If it was written, the engine
/// transitions the word's L1 state `Dirty → URLog` (Fig. 8); if it was
/// discarded as a silent log write, the word returns to `Clean` — a later
/// update must create a fresh undo+redo entry, because no undo anchor for
/// this word exists in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedUr {
    /// The owning transaction.
    pub key: TxKey,
    /// The logged word's home address.
    pub addr: Addr,
    /// The entry was discarded (all-clean log data) rather than written.
    pub silent: bool,
}

/// A `ULog` word reported by the engine's commit-time L1 walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UlogWord {
    /// The word's home address.
    pub addr: Addr,
    /// The newest redo value (the word's L1 contents).
    pub value: u64,
    /// The accumulated dirty flag.
    pub dirty_mask: u8,
}

#[derive(Debug, Clone)]
struct PendingCommit {
    key: TxKey,
    started: Cycle,
}

/// Phase timestamps of one in-flight transaction, resolved into the
/// commit-latency histograms once both the commit record has persisted
/// and the program has observed completion (the two arrive in either
/// order: persist-then-complete for sync designs, complete-then-persist
/// under delay-persistence).
#[derive(Debug, Clone, Copy)]
struct CommitTrack {
    begin: Cycle,
    start: Cycle,
    persisted: Option<Cycle>,
    complete: Option<Cycle>,
}

enum FlushOutcome {
    Written,
    Discarded,
    /// The append could not proceed; carries the backpressure class the
    /// engine should charge a dependent store stall to.
    Blocked(StoreStall),
}

/// The log controller.
///
/// # Example
///
/// ```
/// use morlog_logging::controller::LogController;
/// use morlog_sim_core::{DesignKind, LogConfig, ThreadId};
///
/// let mut lc = LogController::new(DesignKind::MorLogSlde, LogConfig::default());
/// let key = lc.tx_begin(ThreadId::new(0), 0);
/// assert_eq!(key.thread, ThreadId::new(0));
/// ```
#[derive(Debug)]
pub struct LogController {
    design: DesignKind,
    cfg: LogConfig,
    ur_buf: LogBuffer,
    redo_buf: LogBuffer,
    /// Records forced out of the buffers by events that cannot stall
    /// (evictions, commits); drained ahead of everything else. While
    /// non-empty, new stores stall — this is the hardware backpressure.
    overflow: VecDeque<LogRecord>,
    next_txid: HashMap<ThreadId, TxId>,
    pending_commits: BTreeMap<ThreadId, PendingCommit>,
    /// Commit records awaiting a free write-queue slot (and, for gating,
    /// their transaction's undo+redo entries draining first).
    pending_records: VecDeque<LogRecord>,
    /// Commit cycle of every transaction whose commit record persisted
    /// (drives log truncation).
    commit_cycle: HashMap<TxKey, Cycle>,
    stats: LogStats,
    /// Redo entries older than this are written out even without pressure.
    redo_lazy_age: Cycle,
    /// The secure-NVMM model in effect (§IV-D). Under whole-line
    /// re-encryption, even value-unchanged words produce new ciphertext, so
    /// silent log writes cannot be discarded.
    secure: SecureMode,
    /// Global commit-order counter stamped into commit records (needed to
    /// order commits across distributed log slices, §III-F).
    next_commit_ts: u64,
    /// Phase timestamps of transactions still resolving their commit.
    commit_track: HashMap<TxKey, CommitTrack>,
    /// Commit-latency distributions (always collected).
    latency: CommitLatency,
    /// Observability sink (disabled by default; see [`set_tracer`]).
    ///
    /// [`set_tracer`]: LogController::set_tracer
    tracer: Tracer,
    /// Deliberate sabotage selector for the checker's mutation self-test
    /// (see [`CheckMutation`]); `None` in every real configuration.
    mutation: CheckMutation,
}

impl LogController {
    /// Builds the controller for one of the six evaluated designs.
    pub fn new(design: DesignKind, cfg: LogConfig) -> Self {
        LogController {
            design,
            ur_buf: LogBuffer::new(cfg.undo_redo_entries),
            redo_buf: LogBuffer::new(cfg.redo_entries),
            overflow: VecDeque::new(),
            next_txid: HashMap::new(),
            pending_commits: BTreeMap::new(),
            pending_records: VecDeque::new(),
            commit_cycle: HashMap::new(),
            stats: LogStats::default(),
            redo_lazy_age: 4096,
            secure: SecureMode::None,
            next_commit_ts: 0,
            commit_track: HashMap::new(),
            latency: CommitLatency::default(),
            tracer: Tracer::disabled(),
            mutation: CheckMutation::None,
            cfg,
        }
    }

    /// Installs the sabotage selector for the checker's mutation
    /// self-test. Real designs always run with [`CheckMutation::None`].
    pub fn set_mutation(&mut self, mutation: CheckMutation) {
        self.mutation = mutation;
    }

    /// Installs the shared trace handle (see [`morlog_sim_core::trace`]).
    /// Emits word state-machine transitions and commit-protocol phases.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Selects the secure-NVMM model (§IV-D).
    pub fn set_secure_mode(&mut self, mode: SecureMode) {
        self.secure = mode;
    }

    /// The design this controller implements.
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// Logging counters.
    pub fn stats(&self) -> &LogStats {
        &self.stats
    }

    fn is_morlog(&self) -> bool {
        self.design.is_morlog()
    }

    /// Whether the dirty-flag hardware of §IV-A is present (SLDE designs)
    /// and silent-log-write discarding is sound: under whole-line
    /// re-encryption every write produces fresh ciphertext, so nothing is
    /// ever silent (§IV-D; DEUCE-style schemes keep clean words' ciphertext
    /// and the optimization intact).
    fn has_dirty_flags(&self) -> bool {
        !self.design.uses_crade_only() && self.secure != SecureMode::Full
    }

    /// Starts a transaction on `thread` at cycle `now`, assigning the
    /// next 16-bit TxID. `now` seeds the commit-latency phase tracker.
    pub fn tx_begin(&mut self, thread: ThreadId, now: Cycle) -> TxKey {
        let txid = self.next_txid.entry(thread).or_insert_with(|| TxId::new(0));
        let key = TxKey::new(thread, *txid);
        *txid = txid.next();
        self.commit_track.insert(
            key,
            CommitTrack {
                begin: now,
                start: now,
                persisted: None,
                complete: None,
            },
        );
        key
    }

    /// Commit-latency distributions collected so far.
    pub fn latency(&self) -> &CommitLatency {
        &self.latency
    }

    /// Stamps one commit phase for `key`; once both RecordPersisted and
    /// Complete have been observed, resolves the transaction into the
    /// latency histograms. Completion and persistence arrive in either
    /// order (§III-C inverts them), so resolution waits for both.
    fn track_phase(&mut self, key: TxKey, phase: CommitPhaseTag, now: Cycle) {
        let Some(track) = self.commit_track.get_mut(&key) else {
            return;
        };
        match phase {
            CommitPhaseTag::Begin => track.begin = now,
            CommitPhaseTag::Start => track.start = now,
            CommitPhaseTag::RecordPersisted => track.persisted = Some(now),
            CommitPhaseTag::Complete => track.complete = Some(now),
        }
        if let (Some(persisted), Some(complete)) = (track.persisted, track.complete) {
            let (begin, start) = (track.begin, track.start);
            self.commit_track.remove(&key);
            self.latency.record_commit(
                begin,
                start,
                persisted,
                complete,
                self.design.delay_persistence(),
            );
        }
    }

    /// Handles one transactional store of `new` over `old` at `addr` (the
    /// line is resident in L1 as `line`; the engine writes the data after
    /// this call succeeds).
    ///
    /// # Errors
    ///
    /// [`StoreStall`] when log-buffer backpressure blocks the store; the
    /// engine retries next cycle.
    #[allow(clippy::too_many_arguments)]
    pub fn on_store(
        &mut self,
        key: TxKey,
        addr: Addr,
        old: u64,
        new: u64,
        line: &mut CacheLine,
        now: Cycle,
        mc: &mut MemoryController,
    ) -> Result<(), StoreStall> {
        if !self.overflow.is_empty() {
            return Err(StoreStall::Buffer);
        }
        let addr = addr.word_base();
        if !self.is_morlog() {
            return self.fwb_store(key, addr, old, new, now, mc);
        }
        // Residue of a previous transaction on this line: flush it first
        // (the line's single TID/TxID tag pair can describe one transaction).
        let needs_reset = line.ext.as_ref().is_some_and(|e| e.owner != key);
        if needs_reset {
            let ext = line.ext.expect("checked above");
            self.flush_residue(&ext, line, now, mc);
        }
        let ext = line.ext.get_or_insert_with(|| L1Ext::new(key));
        if needs_reset {
            *ext = L1Ext::new(key);
        }
        let w = addr.word_index();
        let delta = dirty_byte_mask(old, new);
        match ext.word_state[w] {
            WordLogState::Clean => {
                if delta == 0 && self.has_dirty_flags() {
                    // Fig. 11 "Write C1": the dirty-flag comparators (§IV-A)
                    // see an unchanged value; stay Clean and log nothing.
                    // Without SLDE's dirty-flag hardware the store is logged
                    // like any other.
                    return Ok(());
                }
                // §III-B: a stale redo entry for this word from the same
                // transaction (created when the line was evicted earlier)
                // must be discarded — the new undo+redo entry supersedes it.
                if self.redo_buf.remove(key, addr).is_some() {
                    self.stats.redo_discarded += 1;
                }
                if self.ur_buf.is_full() {
                    self.evict_ur_front(now, mc)?;
                }
                let ext = line.ext.as_mut().expect("ext installed above");
                self.ur_buf
                    .push(LogRecord::undo_redo(key, addr, old, new, delta), now)
                    .expect("room ensured");
                self.stats.undo_redo_created += 1;
                ext.word_state[w] = WordLogState::Dirty;
                ext.dirty_flags[w] = delta;
                self.tracer.emit(now, || TraceEvent::WordTransition {
                    key,
                    addr: addr.as_u64(),
                    from: WordStateTag::Clean,
                    to: WordStateTag::Dirty,
                });
            }
            WordLogState::Dirty => {
                if let Some(p) = self.ur_buf.find_mut(key, addr) {
                    let undo = p.record.undo.expect("undo+redo entry");
                    p.record.redo = new;
                    p.record.dirty_mask = dirty_byte_mask(undo, new);
                    let mask = p.record.dirty_mask;
                    let ext = line.ext.as_mut().expect("ext installed above");
                    ext.dirty_flags[w] = mask;
                    self.stats.coalesced += 1;
                } else {
                    // The entry left the buffer before its persist
                    // notification arrived (forced flush or same-cycle
                    // eviction). Conservatively start over with a fresh
                    // undo+redo entry: its undo (the current value) chains
                    // correctly behind whatever the flushed entry logged —
                    // and if that entry was discarded as silent, this one
                    // provides the rollback anchor the word needs.
                    if self.ur_buf.is_full() {
                        self.evict_ur_front(now, mc)?;
                    }
                    self.ur_buf
                        .push(LogRecord::undo_redo(key, addr, old, new, delta), now)
                        .expect("room ensured");
                    self.stats.undo_redo_created += 1;
                    let ext = line.ext.as_mut().expect("ext installed above");
                    ext.word_state[w] = WordLogState::Dirty;
                    ext.dirty_flags[w] = delta;
                }
            }
            WordLogState::URLog => {
                if delta != 0 || !self.has_dirty_flags() {
                    let ext = line.ext.as_mut().expect("ext installed above");
                    Self::enter_ulog(ext, w, delta);
                    self.tracer.emit(now, || TraceEvent::WordTransition {
                        key,
                        addr: addr.as_u64(),
                        from: WordStateTag::URLog,
                        to: WordStateTag::ULog,
                    });
                }
            }
            WordLogState::ULog => {
                let ext = line.ext.as_mut().expect("ext installed above");
                ext.dirty_flags[w] |= delta;
            }
        }
        Ok(())
    }

    fn enter_ulog(ext: &mut L1Ext, w: usize, delta: u8) {
        ext.word_state[w] = WordLogState::ULog;
        ext.dirty_flags[w] = delta;
    }

    fn fwb_store(
        &mut self,
        key: TxKey,
        addr: Addr,
        old: u64,
        new: u64,
        now: Cycle,
        mc: &mut MemoryController,
    ) -> Result<(), StoreStall> {
        // FWB: every store creates (or coalesces into) an undo+redo entry in
        // the single log buffer; no value comparison is performed.
        if let Some(p) = self.ur_buf.find_mut(key, addr) {
            let undo = p.record.undo.expect("undo+redo entry");
            p.record.redo = new;
            p.record.dirty_mask = dirty_byte_mask(undo, new);
            self.stats.coalesced += 1;
            return Ok(());
        }
        if self.ur_buf.is_full() {
            self.evict_ur_front(now, mc)?;
        }
        self.ur_buf
            .push(
                LogRecord::undo_redo(key, addr, old, new, dirty_byte_mask(old, new)),
                now,
            )
            .expect("room ensured");
        self.stats.undo_redo_created += 1;
        Ok(())
    }

    /// Flushes the redo data of a previous transaction still described by a
    /// line's extensions (triggered by a write from a new transaction,
    /// Fig. 8).
    fn flush_residue(
        &mut self,
        ext: &L1Ext,
        line: &CacheLine,
        now: Cycle,
        mc: &mut MemoryController,
    ) {
        for w in 0..morlog_sim_core::WORDS_PER_LINE {
            if ext.word_state[w] == WordLogState::ULog {
                self.queue_redo_with_evict(
                    LogRecord::redo_only(
                        ext.owner,
                        line.addr.word_addr(w),
                        line.data.word(w),
                        ext.dirty_flags[w],
                    ),
                    now,
                    mc,
                );
            }
            // Dirty words: their undo+redo entries are still in the FIFO and
            // carry the newest redo; they flush by age in order.
        }
    }

    fn queue_redo(&mut self, mut record: LogRecord, now: Cycle) {
        // Sabotage for the differential checker's spec-divergence test: the
        // logged redo value is off by one. The program observes correct
        // values all the way to the crash, but recovery rolls winners
        // forward to a state a faithful design never reaches — exactly the
        // cross-design disagreement the differential mode must catch.
        if self.mutation == CheckMutation::SkewRedoValue {
            record.redo = record.redo.wrapping_add(1);
        }
        self.stats.redo_created += 1;
        if self.commit_cycle.contains_key(&record.key)
            || self.pending_commits.values().any(|p| p.key == record.key)
            || self.pending_records.iter().any(|r| r.key == record.key)
        {
            self.stats.post_commit_redo += 1;
        }
        if self.redo_buf.push(record, now).is_err() {
            self.overflow.push_back(record);
        }
    }

    /// Queues a redo record, making room by writing the oldest redo entry
    /// out if needed; falls back to the overflow queue (which stalls
    /// stores) only when the write queue is also full.
    fn queue_redo_with_evict(&mut self, record: LogRecord, now: Cycle, mc: &mut MemoryController) {
        if self.redo_buf.is_full() {
            if let Some(front) = self.redo_buf.front() {
                let oldest = front.record;
                if !matches!(
                    self.flush_to_ring(oldest, now, mc),
                    FlushOutcome::Blocked(_)
                ) {
                    self.redo_buf.pop_front();
                }
            }
        }
        self.queue_redo(record, now);
    }

    /// An L1 line was evicted (capacity or back-invalidation): `ULog` words
    /// emit redo entries; `Dirty` words force their undo+redo entries into
    /// the overflow queue so they persist ahead of the data (§III-B).
    pub fn on_l1_evict(&mut self, line: &CacheLine, now: Cycle) {
        if !self.is_morlog() {
            return;
        }
        let Some(ext) = line.ext else { return };
        for w in 0..morlog_sim_core::WORDS_PER_LINE {
            match ext.word_state[w] {
                WordLogState::ULog => {
                    self.queue_redo(
                        LogRecord::redo_only(
                            ext.owner,
                            line.addr.word_addr(w),
                            line.data.word(w),
                            ext.dirty_flags[w],
                        ),
                        now,
                    );
                }
                WordLogState::Dirty => {
                    let addr = line.addr.word_addr(w);
                    if let Some(p) = self.ur_buf.remove(ext.owner, addr) {
                        self.overflow.push_back(p.record);
                    }
                }
                WordLogState::Clean | WordLogState::URLog => {}
            }
        }
    }

    /// Updated data for `line_index` are about to enter the persist domain
    /// (LLC eviction or force-write-back). Discards matching redo-buffer
    /// entries (morphable logging, §III-B) and forces any still-buffered
    /// undo+redo entries for the line out first (write-ahead ordering).
    ///
    /// Returns `false` when the forced entries could not be persisted this
    /// cycle — the caller must delay the data write and retry.
    pub fn on_llc_writeback(
        &mut self,
        line_index: u64,
        now: Cycle,
        mc: &mut MemoryController,
    ) -> bool {
        // Under an active fault plan the discard is suppressed: recovery may
        // need a committed winner's redo entries to re-apply words whose
        // in-place data the crash left behind a gated (undrained-undo) write,
        // and a damaged record must never be the only copy of a word.
        if self.is_morlog() && self.cfg.discard_redo_on_llc_evict && !mc.fault_active() {
            let n = self.redo_buf.remove_line(line_index);
            self.stats.redo_discarded += n as u64;
            let before = self.overflow.len();
            self.overflow
                .retain(|r| r.kind != LogRecordKind::Redo || r.addr.line().index() != line_index);
            self.stats.redo_discarded += (before - self.overflow.len()) as u64;
        }
        // Sabotage for the mutation self-test: let the data line go durable
        // without first persisting its buffered undo entries. A crash in
        // the window between this write-back and the entries' eventual
        // eager eviction leaves in-place data with no undo to roll back.
        if self.mutation == CheckMutation::DropUndoFence {
            return true;
        }
        // Write-ahead: undo entries for this line must persist before it.
        while let Some(p) = self.ur_buf.find_line_front(line_index) {
            match self.flush_to_ring(p.record, now, mc) {
                FlushOutcome::Blocked(_) => return false,
                _ => {
                    self.ur_buf.remove(p.record.key, p.record.addr);
                }
            }
        }
        while let Some(pos) = self
            .overflow
            .iter()
            .position(|r| r.addr.line().index() == line_index && r.kind == LogRecordKind::UndoRedo)
        {
            let record = self.overflow[pos];
            match self.flush_to_ring(record, now, mc) {
                FlushOutcome::Blocked(_) => return false,
                _ => {
                    self.overflow.remove(pos);
                }
            }
        }
        true
    }

    /// Begins committing `key`. For the synchronous protocols the engine
    /// passes the `ULog` words found in the committing core's L1 (their redo
    /// entries are created now); under delay-persistence it passes the ulog
    /// counter instead and the commit completes instantly (§III-C).
    pub fn start_commit(
        &mut self,
        key: TxKey,
        ulog_words: Vec<UlogWord>,
        ulog_count: u32,
        now: Cycle,
    ) {
        self.tracer.emit(now, || TraceEvent::CommitPhase {
            key,
            phase: CommitPhaseTag::Start,
        });
        self.track_phase(key, CommitPhaseTag::Start, now);
        if self.design.delay_persistence() {
            // Instant commit: only the commit record (with the ulog counter)
            // is queued; it appends once the transaction's undo+redo entries
            // have drained, preserving the §III-C recovery invariant.
            self.next_commit_ts += 1;
            self.pending_records.push_back(
                LogRecord::commit(key, Some(ulog_count)).with_timestamp(self.next_commit_ts),
            );
            self.tracer.emit(now, || TraceEvent::CommitPhase {
                key,
                phase: CommitPhaseTag::Complete,
            });
            self.track_phase(key, CommitPhaseTag::Complete, now);
            return;
        }
        for wordinfo in ulog_words {
            self.queue_redo(
                LogRecord::redo_only(key, wordinfo.addr, wordinfo.value, wordinfo.dirty_mask),
                now,
            );
        }
        self.pending_commits
            .insert(key.thread, PendingCommit { key, started: now });
    }

    /// Whether `thread`'s synchronous commit is still draining log data.
    pub fn is_commit_pending(&self, thread: ThreadId) -> bool {
        self.pending_commits.contains_key(&thread)
    }

    /// Commit records queued but not yet persisted. The engine applies
    /// transaction-begin backpressure when this grows (a full log region
    /// must drain before more transactions pile up, §III-A overflow).
    pub fn commit_backlog(&self) -> usize {
        self.pending_records.len()
    }

    /// Per-cycle maintenance. Returns the undo+redo entries that reached the
    /// persist domain this cycle (the engine transitions their words
    /// `Dirty → URLog`).
    pub fn tick(&mut self, now: Cycle, mc: &mut MemoryController) -> Vec<PersistedUr> {
        let mut persisted = Vec::new();
        // 1. Overflow drains first (forced entries, eviction redo data).
        while let Some(&record) = self.overflow.front() {
            match self.flush_to_ring(record, now, mc) {
                FlushOutcome::Blocked(_) => break,
                outcome => {
                    self.overflow.pop_front();
                    if record.kind == LogRecordKind::UndoRedo {
                        persisted.push(PersistedUr {
                            key: record.key,
                            addr: record.addr,
                            silent: matches!(outcome, FlushOutcome::Discarded),
                        });
                    }
                }
            }
        }
        // 2. Eager undo+redo aging (§III-B: entries leave after N cycles,
        // N below the minimum cache-traversal latency).
        while let Some(front) = self.ur_buf.front() {
            if now < front.created + self.cfg.eager_evict_cycles {
                break;
            }
            let record = front.record;
            match self.flush_to_ring(record, now, mc) {
                FlushOutcome::Blocked(_) => break,
                outcome => {
                    self.ur_buf.pop_front();
                    persisted.push(PersistedUr {
                        key: record.key,
                        addr: record.addr,
                        silent: matches!(outcome, FlushOutcome::Discarded),
                    });
                }
            }
        }
        // 3. Synchronous commits pull their transaction's entries out.
        let committing: Vec<TxKey> = self.pending_commits.values().map(|p| p.key).collect();
        for key in committing {
            loop {
                let next = self
                    .ur_buf
                    .find_tx_front(key)
                    .map(|p| (true, p.record))
                    .or_else(|| self.redo_buf.find_tx_front(key).map(|p| (false, p.record)));
                let Some((is_ur, record)) = next else { break };
                match self.flush_to_ring(record, now, mc) {
                    FlushOutcome::Blocked(_) => break,
                    outcome => {
                        if is_ur {
                            self.ur_buf.remove(record.key, record.addr);
                            persisted.push(PersistedUr {
                                key: record.key,
                                addr: record.addr,
                                silent: matches!(outcome, FlushOutcome::Discarded),
                            });
                        } else {
                            self.redo_buf.remove(record.key, record.addr);
                        }
                    }
                }
            }
        }
        // 4. Lazy redo eviction: only under pressure or old age (§III-B).
        while let Some(front) = self.redo_buf.front() {
            let pressure = self.redo_buf.capacity() > 0
                && self.redo_buf.len() * 4 >= self.redo_buf.capacity() * 3;
            let old = now >= front.created + self.redo_lazy_age;
            if !(pressure || old) {
                break;
            }
            let record = front.record;
            match self.flush_to_ring(record, now, mc) {
                FlushOutcome::Blocked(_) => break,
                _ => {
                    self.redo_buf.pop_front();
                }
            }
        }
        // 5. Commit records append once their transaction's undo+redo
        // entries are in the log (write-ahead completeness for recovery).
        // The head record's entries are pulled out actively rather than
        // waiting for the aging timer.
        while let Some(record) = self.pending_records.front().copied() {
            while let Some(p) = self.ur_buf.find_tx_front(record.key) {
                match self.flush_to_ring(p.record, now, mc) {
                    FlushOutcome::Blocked(_) => break,
                    outcome => {
                        self.ur_buf.remove(p.record.key, p.record.addr);
                        persisted.push(PersistedUr {
                            key: p.record.key,
                            addr: p.record.addr,
                            silent: matches!(outcome, FlushOutcome::Discarded),
                        });
                    }
                }
            }
            if self.tx_has_buffered_undo(record.key) {
                break;
            }
            match mc.try_append_log(record, now) {
                Ok(_) => {
                    self.pending_records.pop_front();
                    self.stats.commit_records += 1;
                    self.commit_cycle.insert(record.key, now);
                    self.tracer.emit(now, || TraceEvent::CommitPhase {
                        key: record.key,
                        phase: CommitPhaseTag::RecordPersisted,
                    });
                    self.track_phase(record.key, CommitPhaseTag::RecordPersisted, now);
                }
                Err(LogAppendError::WqFull) => break,
                Err(LogAppendError::RingFull(_)) => {
                    self.stats.log_region_full_stalls += 1;
                    break;
                }
            }
        }
        // 6. Synchronous commits complete when nothing of theirs is left
        // and their commit record persisted.
        let done: Vec<ThreadId> = self
            .pending_commits
            .iter()
            .filter(|(_, p)| {
                !self.ur_buf.has_tx(p.key)
                    && !self.redo_buf.has_tx(p.key)
                    && !self.overflow.iter().any(|r| r.key == p.key)
            })
            .map(|(&t, _)| t)
            .collect();
        for thread in done {
            let p = self.pending_commits.get(&thread).expect("present").clone();
            if !self.commit_cycle.contains_key(&p.key)
                && !self.pending_records.iter().any(|r| r.key == p.key)
            {
                self.next_commit_ts += 1;
                self.pending_records
                    .push_back(LogRecord::commit(p.key, None).with_timestamp(self.next_commit_ts));
                continue; // record appends on a later tick pass
            }
            if self.commit_cycle.contains_key(&p.key) {
                // Under an active fault plan, hold completion until every
                // record of the transaction has fully drained: the program
                // must not observe a commit whose log entries a crash could
                // still tear in the write queue.
                if mc.fault_active() && mc.tx_has_undrained_records(p.key) {
                    continue;
                }
                self.stats.commit_stall_cycles += now.saturating_sub(p.started);
                self.pending_commits.remove(&thread);
                self.tracer.emit(now, || TraceEvent::CommitPhase {
                    key: p.key,
                    phase: CommitPhaseTag::Complete,
                });
                self.track_phase(p.key, CommitPhaseTag::Complete, now);
            }
        }
        persisted
    }

    fn tx_has_buffered_undo(&self, key: TxKey) -> bool {
        self.ur_buf.has_tx(key)
            || self
                .overflow
                .iter()
                .any(|r| r.key == key && r.kind == LogRecordKind::UndoRedo)
    }

    fn evict_ur_front(
        &mut self,
        now: Cycle,
        mc: &mut MemoryController,
    ) -> Result<PersistedUr, StoreStall> {
        let front = self.ur_buf.front().ok_or(StoreStall::Buffer)?;
        let record = front.record;
        match self.flush_to_ring(record, now, mc) {
            FlushOutcome::Blocked(why) => Err(why),
            outcome => {
                self.ur_buf.pop_front();
                Ok(PersistedUr {
                    key: record.key,
                    addr: record.addr,
                    silent: matches!(outcome, FlushOutcome::Discarded),
                })
            }
        }
    }

    fn flush_to_ring(
        &mut self,
        record: LogRecord,
        now: Cycle,
        mc: &mut MemoryController,
    ) -> FlushOutcome {
        // Silent log writes: with dirty-flag hardware, completely clean log
        // data are discarded instead of written (§IV-A).
        if self.has_dirty_flags() && record.kind != LogRecordKind::Commit && record.dirty_mask == 0
        {
            self.stats.silent_discarded += 1;
            return FlushOutcome::Discarded;
        }
        match mc.try_append_log(record, now) {
            Ok(_) => {
                self.stats.entries_written += 1;
                FlushOutcome::Written
            }
            Err(LogAppendError::WqFull) => FlushOutcome::Blocked(StoreStall::WriteQueue),
            Err(LogAppendError::RingFull(_)) => {
                self.stats.log_region_full_stalls += 1;
                FlushOutcome::Blocked(StoreStall::Buffer)
            }
        }
    }

    /// Log truncation (§III-F): drops ring records whose transactions
    /// committed at or before `horizon` (the force-write-back scheduler's
    /// safe commit horizon — their updated data have survived two scans).
    pub fn truncate(&mut self, horizon: Cycle, mc: &mut MemoryController) {
        let commit_cycle = &self.commit_cycle;
        let held = self.held_completions();
        Self::truncate_by(commit_cycle, mc, |key, cc| {
            !held.contains(key) && cc.get(key).map(|&c| c <= horizon).unwrap_or(false)
        });
    }

    /// Log truncation driven by the §III-F transaction table: entries of
    /// committed transactions whose updated cache lines have all been
    /// persisted are deleted immediately, without waiting for the
    /// force-write-back horizon.
    pub fn truncate_with_table(
        &mut self,
        table: &crate::txtable::TransactionTable,
        mc: &mut MemoryController,
    ) {
        let commit_cycle = &self.commit_cycle;
        let held = self.held_completions();
        Self::truncate_by(commit_cycle, mc, |key, cc| {
            !held.contains(key) && cc.contains_key(key) && table.is_deletable(*key)
        });
    }

    /// Transactions whose commit record persisted but whose program-visible
    /// completion is still pending (the fault-plan drain gate holds it).
    /// Their log entries must survive truncation: a crash inside the hold
    /// window would otherwise find a transaction the program never saw
    /// commit fully durable with no log evidence left for recovery to
    /// classify it — an unrecoverable, checker-visible state. (Without an
    /// active fault plan, completion lands the same tick the record
    /// persists, before any truncation pass, so this set is empty.)
    fn held_completions(&self) -> HashSet<TxKey> {
        self.pending_commits.values().map(|p| p.key).collect()
    }

    /// Shared truncation walk: deletes the ring prefix of records whose
    /// transactions satisfy `deletable`, subject to the no-split rule and
    /// the commit-order-prefix rule (see the `truncate` docs).
    fn truncate_by(
        commit_cycle: &HashMap<TxKey, Cycle>,
        mc: &mut MemoryController,
        deletable: impl Fn(&TxKey, &HashMap<TxKey, Cycle>) -> bool,
    ) {
        let n_slices = mc.log_regions().len();
        // Pass 1 per slice: naive committed-prefix walk, then the no-split
        // rule (recovery must see a transaction completely or not at all).
        let mut new_heads: Vec<u64> = Vec::with_capacity(n_slices);
        for slice in 0..n_slices {
            let region = &mc.log_regions()[slice];
            let head = region.head();
            let mut new_head = head;
            for stored in region.records() {
                if deletable(&stored.record.key, commit_cycle) {
                    new_head = stored.offset + stored.record.kind.slot_bytes();
                } else {
                    break;
                }
            }
            if new_head > head {
                let split_keys: std::collections::HashSet<_> = region
                    .records()
                    .filter(|r| r.offset >= new_head)
                    .map(|r| r.record.key)
                    .collect();
                for stored in region.records() {
                    if stored.offset >= new_head {
                        break;
                    }
                    if split_keys.contains(&stored.record.key) {
                        new_head = new_head.min(stored.offset);
                    }
                }
            }
            new_heads.push(new_head);
        }
        // Pass 2, global: never leave a commit-order hole. Under
        // delay-persistence, recovery may roll back a committed transaction
        // and everything that committed after it; a later-committed
        // transaction must therefore never be deleted while an
        // earlier-committed one still has ring records — across all slices.
        let mut removed: std::collections::HashSet<TxKey> = std::collections::HashSet::new();
        for (slice, &head) in new_heads.iter().enumerate().take(n_slices) {
            for r in mc.log_regions()[slice].records() {
                if r.offset < head {
                    removed.insert(r.record.key);
                }
            }
        }
        let mut c_lim = Cycle::MAX;
        for slice in 0..n_slices {
            for r in mc.log_regions()[slice].records() {
                if !removed.contains(&r.record.key) {
                    if let Some(&c) = commit_cycle.get(&r.record.key) {
                        c_lim = c_lim.min(c);
                    }
                }
            }
        }
        for (slice, slice_head) in new_heads.iter().copied().enumerate().take(n_slices) {
            let region = &mc.log_regions()[slice];
            let head = region.head();
            let mut new_head = slice_head;
            for stored in region.records() {
                if stored.offset >= new_head {
                    break;
                }
                let c = commit_cycle
                    .get(&stored.record.key)
                    .copied()
                    .unwrap_or(Cycle::MAX);
                if c > c_lim {
                    new_head = new_head.min(stored.offset);
                }
            }
            if new_head > head {
                mc.truncate_log_slice(slice, new_head);
            }
        }
    }

    /// Crash injection: the buffers and registers are volatile SRAM.
    /// In-flight commit-phase trackers die with them (their transactions
    /// never resolve); already-recorded latency histograms survive as
    /// host-side statistics.
    pub fn on_crash(&mut self) {
        self.ur_buf.clear();
        self.redo_buf.clear();
        self.overflow.clear();
        self.pending_commits.clear();
        self.pending_records.clear();
        self.commit_track.clear();
    }

    /// Whether any log state is still in flight (used by the engine to
    /// quiesce at the end of a run).
    pub fn is_quiescent(&self) -> bool {
        self.ur_buf.is_empty()
            && self.redo_buf.is_empty()
            && self.overflow.is_empty()
            && self.pending_commits.is_empty()
            && self.pending_records.is_empty()
    }

    /// Occupancy snapshot `(undo+redo, redo, overflow)` for tests and
    /// debugging.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.ur_buf.len(), self.redo_buf.len(), self.overflow.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_nvm::log::LogRecordKind;
    use morlog_sim_core::{Frequency, LineAddr, LineData, MemConfig};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn data_line(mc: &MemoryController) -> CacheLine {
        let line_addr = mc.map().data_base().line();
        CacheLine::clean(line_addr, LineData::zeroed())
    }

    /// Applies the engine's Dirty -> URLog transitions for persisted entries.
    fn apply_persisted(line: &mut CacheLine, persisted: &[PersistedUr]) {
        if let Some(ext) = line.ext.as_mut() {
            for p in persisted {
                if p.key == ext.owner && p.addr.line() == line.addr {
                    let w = p.addr.word_index();
                    if ext.word_state[w] == WordLogState::Dirty {
                        ext.word_state[w] = WordLogState::URLog;
                    }
                }
            }
        }
    }

    #[test]
    fn morlog_first_store_creates_undo_redo_and_dirty_state() {
        let mut lc = LogController::new(DesignKind::MorLogSlde, LogConfig::default());
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(0);
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        assert_eq!(lc.stats().undo_redo_created, 1);
        let ext = line.ext.unwrap();
        assert_eq!(ext.word_state[0], WordLogState::Dirty);
        assert_eq!(ext.dirty_flags[0], 0b1);
        assert_eq!(lc.occupancy(), (1, 0, 0));
    }

    #[test]
    fn morlog_coalesces_while_dirty() {
        let mut lc = LogController::new(DesignKind::MorLogSlde, LogConfig::default());
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(0);
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        lc.on_store(key, addr, 42, 7, &mut line, 1, &mut m).unwrap();
        assert_eq!(lc.stats().coalesced, 1);
        assert_eq!(lc.occupancy(), (1, 0, 0), "still one buffered entry");
        // The buffered entry carries the oldest undo and the newest redo.
        let p = lc.ur_buf.front().unwrap();
        assert_eq!(p.record.undo, Some(0));
        assert_eq!(p.record.redo, 7);
    }

    #[test]
    fn morlog_silent_store_stays_clean_and_logs_nothing() {
        let mut lc = LogController::new(DesignKind::MorLogSlde, LogConfig::default());
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(2);
        // Fig. 11 Write C1: the value is unchanged.
        lc.on_store(key, addr, 0, 0, &mut line, 0, &mut m).unwrap();
        assert_eq!(lc.stats().undo_redo_created, 0);
        assert_eq!(line.ext.unwrap().word_state[2], WordLogState::Clean);
    }

    #[test]
    fn fwb_logs_even_unchanged_values() {
        let mut lc = LogController::new(DesignKind::FwbCrade, LogConfig::default());
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        lc.on_store(key, line.addr.word_addr(0), 5, 5, &mut line, 0, &mut m)
            .unwrap();
        assert_eq!(
            lc.stats().undo_redo_created,
            1,
            "FWB does not compare values"
        );
        assert!(line.ext.is_none(), "FWB has no L1 extensions");
    }

    #[test]
    fn eager_eviction_after_n_cycles() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        lc.on_store(key, line.addr.word_addr(0), 0, 42, &mut line, 100, &mut m)
            .unwrap();
        assert!(lc.tick(100 + cfg.eager_evict_cycles - 1, &mut m).is_empty());
        let persisted = lc.tick(100 + cfg.eager_evict_cycles, &mut m);
        assert_eq!(persisted.len(), 1);
        assert_eq!(m.log_region().records().count(), 1);
        apply_persisted(&mut line, &persisted);
        assert_eq!(line.ext.unwrap().word_state[0], WordLogState::URLog);
    }

    #[test]
    fn urlog_store_moves_to_ulog_and_evict_creates_redo() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(0);
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        let persisted = lc.tick(cfg.eager_evict_cycles, &mut m);
        apply_persisted(&mut line, &persisted);
        // Store again: URLog -> ULog, redo buffered in the line itself.
        lc.on_store(key, addr, 42, 99, &mut line, 40, &mut m)
            .unwrap();
        line.data.set_word(0, 99);
        assert_eq!(line.ext.unwrap().word_state[0], WordLogState::ULog);
        assert_eq!(lc.occupancy(), (0, 0, 0), "no new entry for the ULog store");
        // Eviction emits the redo entry with the newest value.
        lc.on_l1_evict(&line, 50);
        assert_eq!(lc.stats().redo_created, 1);
        let (_, redo_len, _) = lc.occupancy();
        assert_eq!(redo_len, 1);
        assert_eq!(lc.redo_buf.front().unwrap().record.redo, 99);
        assert_eq!(
            lc.redo_buf.front().unwrap().record.kind,
            LogRecordKind::Redo
        );
    }

    #[test]
    fn llc_writeback_discards_redo_and_forces_undo() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(0);
        // Build a ULog word, evict it so a redo entry is buffered.
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        let persisted = lc.tick(cfg.eager_evict_cycles, &mut m);
        apply_persisted(&mut line, &persisted);
        lc.on_store(key, addr, 42, 99, &mut line, 40, &mut m)
            .unwrap();
        line.data.set_word(0, 99);
        lc.on_l1_evict(&line, 50);
        assert_eq!(lc.occupancy().1, 1);
        // Also leave an un-persisted undo+redo entry for another word.
        let mut line2 = line;
        line2.ext = None;
        let addr2 = line.addr.word_addr(1);
        lc.on_store(key, addr2, 0, 5, &mut line2, 51, &mut m)
            .unwrap();
        let written_before = m.log_region().records().count();
        assert!(lc.on_llc_writeback(line.addr.index(), 52, &mut m));
        assert_eq!(
            lc.stats().redo_discarded,
            1,
            "redo entry dropped: data persisted"
        );
        assert_eq!(lc.occupancy(), (0, 0, 0));
        // The undo+redo entry was forced out ahead of the data.
        assert_eq!(m.log_region().records().count(), written_before + 1);
    }

    #[test]
    fn sync_commit_drains_and_appends_record() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        lc.on_store(key, line.addr.word_addr(0), 0, 42, &mut line, 0, &mut m)
            .unwrap();
        line.data.set_word(0, 42);
        lc.start_commit(
            key,
            vec![UlogWord {
                addr: line.addr.word_addr(3),
                value: 7,
                dirty_mask: 0xFF,
            }],
            0,
            1,
        );
        assert!(lc.is_commit_pending(ThreadId::new(0)));
        let mut now = 1;
        while lc.is_commit_pending(ThreadId::new(0)) {
            m.tick(now);
            lc.tick(now, &mut m);
            now += 1;
            assert!(now < 10_000, "commit must complete");
        }
        let kinds: Vec<LogRecordKind> = m.log_region().records().map(|r| r.record.kind).collect();
        assert!(kinds.contains(&LogRecordKind::UndoRedo));
        assert!(kinds.contains(&LogRecordKind::Redo));
        assert_eq!(*kinds.last().unwrap(), LogRecordKind::Commit);
        assert!(lc.stats().commit_records == 1);
    }

    #[test]
    fn dp_commit_is_instant_and_record_follows_undo() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogDp, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        lc.on_store(key, line.addr.word_addr(0), 0, 42, &mut line, 0, &mut m)
            .unwrap();
        lc.start_commit(key, Vec::new(), 3, 1);
        assert!(
            !lc.is_commit_pending(ThreadId::new(0)),
            "DP commit is instant"
        );
        // The pending commit record pulls the transaction's undo+redo entry
        // into the log ahead of itself (write-ahead completeness: a commit
        // record in the ring implies every undo+redo entry is too).
        lc.tick(1, &mut m);
        let records: Vec<_> = m.log_region().records().collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].record.kind, LogRecordKind::UndoRedo);
        assert_eq!(records[1].record.kind, LogRecordKind::Commit);
        assert_eq!(records[1].record.ulog_count, Some(3));
    }

    #[test]
    fn slde_discards_silent_entries_crade_writes_them() {
        for (design, expect_silent) in [
            (DesignKind::MorLogSlde, 1u64),
            (DesignKind::MorLogCrade, 0u64),
        ] {
            let cfg = LogConfig::default();
            let mut lc = LogController::new(design, cfg);
            let mut m = mc();
            let mut line = data_line(&m);
            let key = lc.tx_begin(ThreadId::new(0), 0);
            let addr = line.addr.word_addr(0);
            // Write 42 then write 0 back: the coalesced entry is silent.
            lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
            line.data.set_word(0, 42);
            lc.on_store(key, addr, 42, 0, &mut line, 1, &mut m).unwrap();
            line.data.set_word(0, 0);
            lc.tick(cfg.eager_evict_cycles + 1, &mut m);
            assert_eq!(lc.stats().silent_discarded, expect_silent, "{design}");
            let written = m.log_region().records().count();
            assert_eq!(written, if expect_silent == 1 { 0 } else { 1 }, "{design}");
        }
    }

    #[test]
    fn same_tx_rewrite_discards_stale_redo_entry() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line.addr.word_addr(0);
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        let persisted = lc.tick(cfg.eager_evict_cycles, &mut m);
        apply_persisted(&mut line, &persisted);
        lc.on_store(key, addr, 42, 99, &mut line, 40, &mut m)
            .unwrap();
        line.data.set_word(0, 99);
        lc.on_l1_evict(&line, 50); // redo entry (99) buffered
                                   // Line refetched clean; the same tx writes the word again.
        let mut refetched = CacheLine::clean(line.addr, line.data);
        lc.on_store(key, addr, 99, 123, &mut refetched, 60, &mut m)
            .unwrap();
        assert_eq!(
            lc.stats().redo_discarded,
            1,
            "stale redo superseded by new entry"
        );
        assert_eq!(lc.occupancy().1, 0);
    }

    #[test]
    fn residue_of_previous_tx_flushes_on_new_tx_write() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogDp, cfg);
        let mut m = mc();
        let mut line = data_line(&m);
        let t = ThreadId::new(0);
        let key1 = lc.tx_begin(t, 0);
        let addr = line.addr.word_addr(0);
        lc.on_store(key1, addr, 0, 42, &mut line, 0, &mut m)
            .unwrap();
        line.data.set_word(0, 42);
        let persisted = lc.tick(cfg.eager_evict_cycles, &mut m);
        apply_persisted(&mut line, &persisted);
        lc.on_store(key1, addr, 42, 99, &mut line, 40, &mut m)
            .unwrap();
        line.data.set_word(0, 99);
        lc.start_commit(key1, Vec::new(), 1, 41); // DP: word stays ULog
                                                  // New transaction writes another word of the same line.
        let key2 = lc.tx_begin(t, 0);
        lc.on_store(key2, line.addr.word_addr(1), 0, 5, &mut line, 50, &mut m)
            .unwrap();
        assert_eq!(
            lc.stats().redo_created,
            1,
            "key1's ULog word flushed as redo"
        );
        assert_eq!(lc.stats().post_commit_redo, 1);
        let ext = line.ext.unwrap();
        assert_eq!(ext.owner, key2);
        assert_eq!(ext.word_state[0], WordLogState::Clean);
        assert_eq!(ext.word_state[1], WordLogState::Dirty);
    }

    #[test]
    fn buffer_full_stalls_store_when_wq_full() {
        let memcfg = MemConfig {
            write_queue_entries: 1,
            ..Default::default()
        };
        let mut m = MemoryController::with_default_map(
            memcfg,
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        );
        let cfg = LogConfig {
            undo_redo_entries: 2,
            ..Default::default()
        };
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let base = m.map().data_base().line();
        // Each store to a new line; fill the buffer, then the WQ blocks.
        let mut stalled = false;
        for i in 0..16u64 {
            let line_addr = LineAddr::from_index(base.index() + i * 4); // same channel
            let mut line = CacheLine::clean(line_addr, LineData::zeroed());
            if lc
                .on_store(key, line_addr.word_addr(0), 0, i + 1, &mut line, 0, &mut m)
                .is_err()
            {
                stalled = true;
                break;
            }
        }
        assert!(
            stalled,
            "store must stall once buffer and write queue are full"
        );
    }

    #[test]
    fn truncation_drops_only_old_committed_records() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = mc();
        let t = ThreadId::new(0);
        let mut line = data_line(&m);
        // tx1 commits at ~cycle 100.
        let key1 = lc.tx_begin(t, 0);
        lc.on_store(key1, line.addr.word_addr(0), 0, 1, &mut line, 0, &mut m)
            .unwrap();
        line.data.set_word(0, 1);
        lc.start_commit(key1, Vec::new(), 0, 100);
        let mut now = 100;
        while lc.is_commit_pending(t) {
            m.tick(now);
            lc.tick(now, &mut m);
            now += 1;
        }
        // tx2 starts but does not commit.
        let key2 = lc.tx_begin(t, 0);
        let line2_addr = LineAddr::from_index(line.addr.index() + 1);
        let mut line2 = CacheLine::clean(line2_addr, LineData::zeroed());
        lc.on_store(key2, line2_addr.word_addr(0), 0, 2, &mut line2, now, &mut m)
            .unwrap();
        lc.tick(now + cfg.eager_evict_cycles, &mut m);
        let before = m.log_region().records().count();
        assert_eq!(before, 3); // tx1 entry + commit, tx2 entry
        lc.truncate(now + 1000, &mut m);
        let remaining: Vec<_> = m.log_region().records().map(|r| r.record.key).collect();
        assert_eq!(
            remaining,
            vec![key2],
            "only the live transaction's entry remains"
        );
    }
}

#[cfg(test)]
mod silent_anchor_tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_sim_core::{Frequency, LineData, MemConfig};

    /// The silent-anchor scenario: a word's undo+redo entry coalesces back
    /// to its original value (silent), is discarded at flush, and the word
    /// is then modified again. The discard notification must send the word
    /// back to Clean so the next store creates a fresh undo anchor.
    #[test]
    fn silent_discard_restores_clean_and_later_write_gets_an_anchor() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        );
        let line_addr = m.map().data_base().line();
        let mut line = CacheLine::clean(line_addr, LineData::zeroed());
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line_addr.word_addr(0);
        // Write 42, then write 0 back: the entry becomes silent.
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        lc.on_store(key, addr, 42, 0, &mut line, 1, &mut m).unwrap();
        line.data.set_word(0, 0);
        let persisted = lc.tick(cfg.eager_evict_cycles + 1, &mut m);
        assert_eq!(persisted.len(), 1);
        assert!(
            persisted[0].silent,
            "coalesced-to-silent entry is discarded"
        );
        assert_eq!(m.log_region().records().count(), 0, "nothing written");
        // The engine sends the word back to Clean on a silent notification;
        // a later write must create a fresh undo+redo entry (not a redo).
        line.ext.as_mut().unwrap().word_state[0] = WordLogState::Clean;
        line.ext.as_mut().unwrap().dirty_flags[0] = 0;
        lc.on_store(key, addr, 0, 7, &mut line, 50, &mut m).unwrap();
        assert_eq!(lc.stats().undo_redo_created, 2);
        let p = lc.ur_buf.front().unwrap();
        assert_eq!(p.record.undo, Some(0), "the rollback anchor exists");
        assert_eq!(p.record.redo, 7);
    }

    /// A store that finds its word Dirty but its entry already flushed
    /// (forced out) must create a fresh entry whose undo chains correctly.
    #[test]
    fn forced_flush_then_store_creates_chained_entry() {
        let cfg = LogConfig::default();
        let mut lc = LogController::new(DesignKind::MorLogSlde, cfg);
        let mut m = MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        );
        let line_addr = m.map().data_base().line();
        let mut line = CacheLine::clean(line_addr, LineData::zeroed());
        let key = lc.tx_begin(ThreadId::new(0), 0);
        let addr = line_addr.word_addr(0);
        lc.on_store(key, addr, 0, 42, &mut line, 0, &mut m).unwrap();
        line.data.set_word(0, 42);
        // Force the entry out via the write-ahead path (LLC writeback).
        assert!(lc.on_llc_writeback(line_addr.index(), 1, &mut m));
        assert_eq!(m.log_region().records().count(), 1);
        // Word still marked Dirty (no notification went to the engine);
        // the next store opens a new entry with undo = 42.
        lc.on_store(key, addr, 42, 99, &mut line, 2, &mut m)
            .unwrap();
        assert_eq!(lc.stats().undo_redo_created, 2);
        let p = lc.ur_buf.front().unwrap();
        assert_eq!(p.record.undo, Some(42));
        assert_eq!(p.record.redo, 99);
    }
}
