//! Hardware-overhead accounting for morphable logging (Table I).

use morlog_sim_core::LogConfig;

/// Bits of one undo+redo buffer entry (Fig. 7).
pub const UNDO_REDO_ENTRY_BITS: usize = 202;
/// Bits of one redo buffer entry (Fig. 7).
pub const REDO_ENTRY_BITS: usize = 138;
/// Bits of the per-line L1 extensions: 8-bit TID + 16-bit TxID + 16-bit
/// log-state flag (2 bits × 8 words).
pub const L1_EXT_BITS_PER_LINE: usize = 8 + 16 + 16;
/// Bits of one ulog counter (§III-C).
pub const ULOG_COUNTER_BITS: usize = 10;

/// Table I, computed from a configuration.
///
/// # Example
///
/// ```
/// use morlog_logging::overhead::HardwareOverhead;
/// use morlog_sim_core::LogConfig;
/// let o = HardwareOverhead::for_config(&LogConfig::default(), 16);
/// assert_eq!(o.undo_redo_buffer_bytes, 404); // Table I
/// assert_eq!(o.redo_buffer_bytes, 552);
/// assert_eq!(o.ulog_counters_bytes, 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    /// Log head and tail registers (two 64-bit registers).
    pub log_registers_bytes: usize,
    /// L1 extension bits per cache line.
    pub l1_ext_bits_per_line: usize,
    /// Undo+redo buffer SRAM.
    pub undo_redo_buffer_bytes: usize,
    /// Redo buffer SRAM.
    pub redo_buffer_bytes: usize,
    /// Ulog counters (delay-persistence only).
    pub ulog_counters_bytes: usize,
}

impl HardwareOverhead {
    /// Computes the overhead of a configuration with `hw_threads` hardware
    /// threads (the paper's Table I assumes 16).
    pub fn for_config(cfg: &LogConfig, hw_threads: usize) -> Self {
        HardwareOverhead {
            log_registers_bytes: 16,
            l1_ext_bits_per_line: L1_EXT_BITS_PER_LINE,
            undo_redo_buffer_bytes: (cfg.undo_redo_entries * UNDO_REDO_ENTRY_BITS).div_ceil(8),
            redo_buffer_bytes: (cfg.redo_entries * REDO_ENTRY_BITS).div_ceil(8),
            ulog_counters_bytes: (hw_threads * ULOG_COUNTER_BITS).div_ceil(8),
        }
    }

    /// Total bytes excluding the per-line L1 extension (which scales with
    /// cache size, not a fixed block).
    pub fn fixed_bytes(&self) -> usize {
        self.log_registers_bytes
            + self.undo_redo_buffer_bytes
            + self.redo_buffer_bytes
            + self.ulog_counters_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let o = HardwareOverhead::for_config(&LogConfig::default(), 16);
        assert_eq!(o.log_registers_bytes, 16);
        assert_eq!(o.l1_ext_bits_per_line, 40); // "40 bits per cache line"
        assert_eq!(o.undo_redo_buffer_bytes, 404);
        assert_eq!(o.redo_buffer_bytes, 552);
        assert_eq!(o.ulog_counters_bytes, 20);
        assert_eq!(o.fixed_bytes(), 16 + 404 + 552 + 20);
    }

    #[test]
    fn scales_with_buffer_sizes() {
        let cfg = LogConfig {
            undo_redo_entries: 32,
            redo_entries: 64,
            ..Default::default()
        };
        let o = HardwareOverhead::for_config(&cfg, 8);
        assert_eq!(o.undo_redo_buffer_bytes, 808);
        assert_eq!(o.redo_buffer_bytes, 1104);
        assert_eq!(o.ulog_counters_bytes, 10);
    }
}
