//! The MorLog paper's primary contribution: morphable hardware logging for
//! atomic persistence, plus the FWB undo+redo baseline it is evaluated
//! against.
//!
//! * [`buffer`] — the volatile undo+redo and redo FIFOs (Table I).
//! * [`controller`] — the log controller: the Fig. 8 word-state machine,
//!   eager-undo/lazy-redo writeback (§III-B), commit protocols including
//!   delay-persistence (§III-C), silent-log-write discarding (§IV-A), and
//!   log truncation (§III-F).
//! * [`recovery`] — the §III-E recovery routine for both commit protocols.
//! * [`overhead`] — the Table I hardware-overhead arithmetic.
//!
//! The simulation engine in `morlog-sim` wires a [`controller::LogController`]
//! between the cache hierarchy (`morlog-cache`) and the memory controller
//! (`morlog-nvm`).

#![deny(missing_docs)]

pub mod buffer;
pub mod controller;
pub mod overhead;
pub mod recovery;
pub mod txtable;

pub use controller::{LogController, PersistedUr, StoreStall, UlogWord};
pub use recovery::{recover, RecoveryReport};
pub use txtable::TransactionTable;
