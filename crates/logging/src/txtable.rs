//! The transaction-table log-management option (§III-F).
//!
//! The paper offers two ways to decide when a committed transaction's log
//! entries may be deleted. The first is the force-write-back horizon (two
//! scans, [`crate::controller::LogController::truncate`]). The second is a
//! *transaction table*: each entry tracks a transaction and a counter of
//! cache lines that still hold its updated (not yet persisted) data; when
//! the counter reaches zero, every updated byte of the transaction is in
//! NVMM and its log entries are dead. "The first option is simpler and has
//! less hardware cost, while the second one provides more flexibility."
//!
//! The table is maintained from two events the engine already sees: a
//! transactional store dirtying a line (attribution) and a line's data
//! entering the persist domain (release).

use std::collections::{HashMap, HashSet};

use morlog_sim_core::ids::TxKey;
use morlog_sim_core::LineAddr;

/// The §III-F transaction table.
///
/// # Example
///
/// ```
/// use morlog_logging::txtable::TransactionTable;
/// use morlog_sim_core::ids::TxKey;
/// use morlog_sim_core::{LineAddr, ThreadId, TxId};
///
/// let mut t = TransactionTable::new();
/// let key = TxKey::new(ThreadId::new(0), TxId::new(0));
/// let line = LineAddr::from_index(7);
/// t.on_store(key, line);
/// t.on_commit(key);
/// assert!(!t.is_persisted(key), "one line still dirty");
/// t.on_line_persisted(line);
/// assert!(t.is_persisted(key));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionTable {
    /// Which transactions have unpersisted data in each line.
    attribution: HashMap<LineAddr, HashSet<TxKey>>,
    /// Outstanding dirty-line count per transaction (the table's counter).
    counters: HashMap<TxKey, u32>,
    /// Transactions that committed (table entries become deletable when
    /// committed and counter == 0).
    committed: HashSet<TxKey>,
}

impl TransactionTable {
    /// An empty table.
    pub fn new() -> Self {
        TransactionTable::default()
    }

    /// A transactional store dirtied `line` on behalf of `key`.
    pub fn on_store(&mut self, key: TxKey, line: LineAddr) {
        let txs = self.attribution.entry(line).or_default();
        if txs.insert(key) {
            *self.counters.entry(key).or_insert(0) += 1;
        }
    }

    /// The transaction committed (program-visible).
    pub fn on_commit(&mut self, key: TxKey) {
        self.committed.insert(key);
    }

    /// `line`'s data entered the persist domain (LLC writeback or
    /// force-write-back). Decrements every attributed transaction's counter.
    pub fn on_line_persisted(&mut self, line: LineAddr) {
        if let Some(txs) = self.attribution.remove(&line) {
            for key in txs {
                if let Some(c) = self.counters.get_mut(&key) {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }

    /// Whether every line the transaction updated has been persisted.
    pub fn is_persisted(&self, key: TxKey) -> bool {
        self.counters.get(&key).copied().unwrap_or(0) == 0
    }

    /// Whether the transaction's log entries are deletable: committed and
    /// counter == 0.
    pub fn is_deletable(&self, key: TxKey) -> bool {
        self.committed.contains(&key) && self.is_persisted(key)
    }

    /// Drops the bookkeeping of fully-deleted transactions (called after
    /// truncation removed their entries from the ring).
    pub fn forget(&mut self, key: TxKey) {
        self.counters.remove(&key);
        self.committed.remove(&key);
    }

    /// Transactions currently tracked (occupied table entries; the paper's
    /// hardware table is finite — its occupancy is a cost metric).
    pub fn occupancy(&self) -> usize {
        self.counters.len()
    }

    /// Volatile on crash.
    pub fn clear(&mut self) {
        self.attribution.clear();
        self.counters.clear();
        self.committed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::{ThreadId, TxId};

    fn key(x: u16) -> TxKey {
        TxKey::new(ThreadId::new(0), TxId::new(x))
    }

    #[test]
    fn counter_tracks_distinct_lines_only() {
        let mut t = TransactionTable::new();
        let l = LineAddr::from_index(1);
        t.on_store(key(0), l);
        t.on_store(key(0), l); // same line twice: still one
        t.on_store(key(0), LineAddr::from_index(2));
        t.on_commit(key(0));
        assert!(!t.is_deletable(key(0)));
        t.on_line_persisted(l);
        assert!(!t.is_deletable(key(0)));
        t.on_line_persisted(LineAddr::from_index(2));
        assert!(t.is_deletable(key(0)));
    }

    #[test]
    fn shared_line_releases_all_writers() {
        // Two transactions (sequentially) dirty the same line; one persist
        // event releases both.
        let mut t = TransactionTable::new();
        let l = LineAddr::from_index(9);
        t.on_store(key(0), l);
        t.on_store(key(1), l);
        t.on_commit(key(0));
        t.on_commit(key(1));
        t.on_line_persisted(l);
        assert!(t.is_deletable(key(0)));
        assert!(t.is_deletable(key(1)));
    }

    #[test]
    fn uncommitted_is_never_deletable() {
        let mut t = TransactionTable::new();
        let l = LineAddr::from_index(3);
        t.on_store(key(0), l);
        t.on_line_persisted(l);
        assert!(t.is_persisted(key(0)));
        assert!(!t.is_deletable(key(0)));
    }

    #[test]
    fn forget_frees_table_entries() {
        let mut t = TransactionTable::new();
        t.on_store(key(0), LineAddr::from_index(1));
        t.on_commit(key(0));
        assert_eq!(t.occupancy(), 1);
        t.forget(key(0));
        assert_eq!(t.occupancy(), 0);
    }
}
