//! The volatile log FIFOs: the undo+redo buffer and the redo buffer
//! (§III-A, §III-B).
//!
//! Both are small SRAM FIFOs in the processor (Table I: 16 × 202-bit
//! undo+redo entries, 32 × 138-bit redo entries by default). Entries for
//! the same word of the same transaction coalesce in place while buffered;
//! the undo+redo buffer evicts entries *eagerly* after a fixed number of
//! cycles (below the minimum cache-traversal latency, to keep undo data
//! ahead of updated data), while the redo buffer evicts *lazily* to
//! maximise the chance of coalescing or discarding redo data.

use std::collections::VecDeque;

use morlog_nvm::log::LogRecord;
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::{Addr, Cycle};

/// A buffered log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// The entry contents (coalescing mutates `redo` and `dirty_mask`).
    pub record: LogRecord,
    /// Cycle the entry was created (age drives eager eviction).
    pub created: Cycle,
}

/// A fixed-capacity FIFO log buffer with by-address coalescing lookup.
///
/// # Example
///
/// ```
/// use morlog_logging::buffer::LogBuffer;
/// use morlog_nvm::log::LogRecord;
/// use morlog_sim_core::ids::TxKey;
/// use morlog_sim_core::{Addr, ThreadId, TxId};
///
/// let mut buf = LogBuffer::new(4);
/// let key = TxKey::new(ThreadId::new(0), TxId::new(0));
/// buf.push(LogRecord::undo_redo(key, Addr::new(0x40), 1, 2, 0xFF), 100).unwrap();
/// assert!(buf.find_mut(key, Addr::new(0x40)).is_some());
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogBuffer {
    entries: VecDeque<Pending>,
    capacity: usize,
}

/// Error returned by [`LogBuffer::push`] when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull;

impl LogBuffer {
    /// Creates an empty buffer with `capacity` entries (may be zero —
    /// FWB-Unsafe folds the redo buffer away).
    pub fn new(capacity: usize) -> Self {
        LogBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] when at capacity (the caller decides whether
    /// to evict the head to NVMM or stall the store).
    pub fn push(&mut self, record: LogRecord, now: Cycle) -> Result<(), BufferFull> {
        if self.is_full() {
            return Err(BufferFull);
        }
        self.entries.push_back(Pending {
            record,
            created: now,
        });
        Ok(())
    }

    /// Finds the buffered entry for `(key, word address)`, for coalescing.
    pub fn find_mut(&mut self, key: TxKey, addr: Addr) -> Option<&mut Pending> {
        let addr = addr.word_base();
        self.entries
            .iter_mut()
            .find(|p| p.record.key == key && p.record.addr == addr)
    }

    /// The oldest entry, if any.
    pub fn front(&self) -> Option<&Pending> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<Pending> {
        self.entries.pop_front()
    }

    /// Removes the entry for `(key, word address)` (redo-discard, §III-B).
    pub fn remove(&mut self, key: TxKey, addr: Addr) -> Option<Pending> {
        let addr = addr.word_base();
        let pos = self
            .entries
            .iter()
            .position(|p| p.record.key == key && p.record.addr == addr)?;
        self.entries.remove(pos)
    }

    /// Removes every entry whose word lies in cache line `line_index`
    /// (LLC-eviction discard); returns how many were removed.
    pub fn remove_line(&mut self, line_index: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|p| p.record.addr.line().index() != line_index);
        before - self.entries.len()
    }

    /// Removes every entry of transaction `key` matching `pred`, returning
    /// them in FIFO order (commit flush).
    pub fn drain_tx(&mut self, key: TxKey) -> Vec<Pending> {
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for p in self.entries.drain(..) {
            if p.record.key == key {
                taken.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.entries = kept;
        taken
    }

    /// Whether any entry belongs to transaction `key`.
    pub fn has_tx(&self, key: TxKey) -> bool {
        self.entries.iter().any(|p| p.record.key == key)
    }

    /// The oldest entry belonging to transaction `key` (commit flush pulls
    /// a transaction's entries in FIFO order, preserving per-word undo
    /// ordering, §III-C).
    pub fn find_tx_front(&self, key: TxKey) -> Option<Pending> {
        self.entries.iter().find(|p| p.record.key == key).copied()
    }

    /// The oldest entry whose word lies in cache line `line_index`.
    pub fn find_line_front(&self, line_index: u64) -> Option<Pending> {
        self.entries
            .iter()
            .find(|p| p.record.addr.line().index() == line_index)
            .copied()
    }

    /// Whether any entry's word lies in cache line `line_index`.
    pub fn has_line(&self, line_index: u64) -> bool {
        self.entries
            .iter()
            .any(|p| p.record.addr.line().index() == line_index)
    }

    /// Removes and returns all entries for line `line_index`, FIFO order
    /// (forced flush before a data writeback of that line).
    pub fn drain_line(&mut self, line_index: u64) -> Vec<Pending> {
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for p in self.entries.drain(..) {
            if p.record.addr.line().index() == line_index {
                taken.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.entries = kept;
        taken
    }

    /// Iterates buffered entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Pending> + '_ {
        self.entries.iter()
    }

    /// Drops everything (crash: the buffers are volatile SRAM).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::{ThreadId, TxId};

    fn key(t: u8, x: u16) -> TxKey {
        TxKey::new(ThreadId::new(t), TxId::new(x))
    }

    fn rec(k: TxKey, addr: u64) -> LogRecord {
        LogRecord::undo_redo(k, Addr::new(addr), 0, 1, 0xFF)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = LogBuffer::new(8);
        for i in 0..5u64 {
            b.push(rec(key(0, 0), i * 8), i).unwrap();
        }
        for i in 0..5u64 {
            assert_eq!(b.pop_front().unwrap().record.addr, Addr::new(i * 8));
        }
        assert!(b.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut b = LogBuffer::new(2);
        b.push(rec(key(0, 0), 0), 0).unwrap();
        b.push(rec(key(0, 0), 8), 0).unwrap();
        assert_eq!(b.push(rec(key(0, 0), 16), 0), Err(BufferFull));
        assert!(b.is_full());
    }

    #[test]
    fn zero_capacity_always_full() {
        let mut b = LogBuffer::new(0);
        assert_eq!(b.push(rec(key(0, 0), 0), 0), Err(BufferFull));
    }

    #[test]
    fn coalescing_lookup_matches_key_and_word() {
        let mut b = LogBuffer::new(8);
        b.push(rec(key(0, 1), 0x40), 0).unwrap();
        assert!(b.find_mut(key(0, 1), Addr::new(0x40)).is_some());
        assert!(
            b.find_mut(key(0, 1), Addr::new(0x43)).is_some(),
            "byte within word"
        );
        assert!(
            b.find_mut(key(0, 1), Addr::new(0x48)).is_none(),
            "other word"
        );
        assert!(b.find_mut(key(0, 2), Addr::new(0x40)).is_none(), "other tx");
    }

    #[test]
    fn remove_line_discards_whole_line() {
        let mut b = LogBuffer::new(8);
        // Words of line 1 (0x40..0x80) and one of line 2.
        b.push(rec(key(0, 0), 0x40), 0).unwrap();
        b.push(rec(key(0, 0), 0x48), 0).unwrap();
        b.push(rec(key(0, 0), 0x80), 0).unwrap();
        assert_eq!(b.remove_line(1), 2);
        assert_eq!(b.len(), 1);
        assert!(b.has_line(2));
        assert!(!b.has_line(1));
    }

    #[test]
    fn drain_tx_keeps_other_transactions() {
        let mut b = LogBuffer::new(8);
        b.push(rec(key(0, 0), 0x00), 0).unwrap();
        b.push(rec(key(0, 1), 0x08), 1).unwrap();
        b.push(rec(key(0, 0), 0x10), 2).unwrap();
        let taken = b.drain_tx(key(0, 0));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].record.addr, Addr::new(0x00));
        assert_eq!(taken[1].record.addr, Addr::new(0x10));
        assert_eq!(b.len(), 1);
        assert!(b.has_tx(key(0, 1)));
    }

    #[test]
    fn drain_line_preserves_fifo_of_rest() {
        let mut b = LogBuffer::new(8);
        b.push(rec(key(0, 0), 0x40), 0).unwrap();
        b.push(rec(key(0, 0), 0x100), 1).unwrap();
        b.push(rec(key(0, 0), 0x48), 2).unwrap();
        let taken = b.drain_line(1);
        assert_eq!(taken.len(), 2);
        assert_eq!(b.front().unwrap().record.addr, Addr::new(0x100));
    }

    #[test]
    fn clear_empties() {
        let mut b = LogBuffer::new(4);
        b.push(rec(key(0, 0), 0), 0).unwrap();
        b.clear();
        assert!(b.is_empty());
    }
}
