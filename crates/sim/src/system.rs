//! The simulated system: cores + caches + log controller + memory
//! controller, and the cycle engine that drives them.

use std::collections::VecDeque;

use morlog_cache::fwb::FwbScheduler;
use morlog_cache::hierarchy::{AccessOutcome, EvictionEvent, Hierarchy};
use morlog_cache::line::WordLogState;
use morlog_encoding::cell::CellModel;
use morlog_encoding::slde::SldeCodec;
use morlog_logging::controller::{LogController, StoreStall, UlogWord};
use morlog_logging::recovery::{recover, RecoveryReport};
use morlog_logging::txtable::TransactionTable;
use morlog_nvm::controller::{MemoryController, ReadTicket};
use morlog_nvm::layout::MemoryMap;
use morlog_sim_core::fault::FaultPlan;
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::metrics::{MetricsSet, SeriesSet};
use morlog_sim_core::stats::{CycleAttribution, StallKind};
use morlog_sim_core::trace::{CommitPhaseTag, TraceEvent, Tracer, WordStateTag};
use morlog_sim_core::{Addr, Cycle, LineAddr, LineData, SimStats, SystemConfig, ThreadId};
use morlog_workloads::trace::{Op, WorkloadTrace};

use crate::oracle::Oracle;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Ready,
    BusyUntil(Cycle),
    WaitRead(ReadTicket, LineAddr),
    WaitCommit,
    Done,
}

#[derive(Debug)]
struct Core {
    thread: ThreadId,
    tx_idx: usize,
    op_idx: usize,
    phase: Phase,
    key: Option<TxKey>,
    tx_began: bool,
    /// What a `BusyUntil` wait is charged to in the cycle-attribution
    /// accounts: `Busy` for pipeline latency, `CommitWait` for log
    /// backpressure at transaction begin.
    busy_kind: StallKind,
}

/// One simulated machine running one workload under one design.
///
/// # Example
///
/// ```
/// use morlog_sim::System;
/// use morlog_sim_core::{Addr, DesignKind, SystemConfig};
/// use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};
///
/// let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
/// let data_base = System::data_base(&cfg);
/// let mut wl = WorkloadConfig::test_config(data_base);
/// wl.total_transactions = 20;
/// let trace = generate(WorkloadKind::Sps, &wl);
/// let mut sys = System::new(cfg, &trace);
/// let stats = sys.run();
/// assert_eq!(stats.transactions_committed, 20);
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    hierarchy: Hierarchy,
    mc: MemoryController,
    lc: LogController,
    fwb: FwbScheduler,
    cores: Vec<Core>,
    trace: WorkloadTrace,
    pending_writebacks: VecDeque<(LineAddr, LineData)>,
    /// A truncation horizon waiting for the scan's writebacks to reach the
    /// persist domain (log entries must outlive their updated data's path
    /// to NVMM).
    pending_truncation: Option<Cycle>,
    /// The §III-F transaction table (populated only under
    /// `TruncationPolicy::TransactionTable`).
    tx_table: TransactionTable,
    now: Cycle,
    committed: u64,
    tx_stores: u64,
    tx_loads: u64,
    store_stall_cycles: u64,
    /// Cycle at which the last transaction committed (the throughput
    /// clock stops here; the quiesce tail drains buffers for the traffic
    /// and energy accounting but is not execution time — under
    /// delay-persistence, persistence intentionally trails commit).
    finish_cycle: Option<Cycle>,
    oracle: Oracle,
    /// Shared observability sink (see [`morlog_sim_core::trace`]); the same
    /// handle is installed in the memory controller, log controller and
    /// cache hierarchy so events from every component land in one stream.
    tracer: Tracer,
    /// Per-component cycle accounts. For every simulated cycle before
    /// `finish_cycle`, each core contributes exactly one unit to exactly
    /// one account, so `attr.total() == cycles * cores`.
    attr: CycleAttribution,
    /// Time-series sample period in cycles (0 disables sampling);
    /// `MORLOG_SAMPLE_CYCLES` overrides the configured value.
    sample_period: Cycle,
    /// Cycle-sampled occupancy series (write queue, log buffers, live
    /// log bytes, outstanding DP commits, pending writebacks).
    series: SeriesSet,
}

impl System {
    /// Builds the codec a design uses (SLDE vs. CRADE; expansion coding can
    /// be disabled for the Table VI study).
    pub fn codec_for(cfg: &SystemConfig, expansion: bool) -> SldeCodec {
        let model = CellModel::table_iii().with_write_latency_scale(cfg.mem.write_latency_scale);
        let codec = if cfg.design.uses_crade_only() {
            SldeCodec::crade(model)
        } else {
            SldeCodec::new(model)
        };
        codec.with_expansion(expansion)
    }

    /// The persistent-heap base for a configuration (where workload arenas
    /// start).
    pub fn data_base(cfg: &SystemConfig) -> Addr {
        MemoryMap::table_iii(cfg.mem.log_region_bytes as u64).data_base()
    }

    /// Constructs the system and pre-loads each thread's initial NVMM
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace needs more
    /// threads than the system has cores.
    pub fn new(cfg: SystemConfig, trace: &WorkloadTrace) -> Self {
        Self::with_expansion(cfg, trace, true)
    }

    /// [`System::new`] with control over expansion coding (Table VI).
    pub fn with_expansion(cfg: SystemConfig, trace: &WorkloadTrace, expansion: bool) -> Self {
        Self::with_options(
            cfg,
            trace,
            expansion,
            morlog_encoding::secure::SecureMode::None,
        )
    }

    /// Full-option constructor: expansion coding (Table VI) and the
    /// secure-NVMM model (§IV-D).
    pub fn with_options(
        cfg: SystemConfig,
        trace: &WorkloadTrace,
        expansion: bool,
        secure: morlog_encoding::secure::SecureMode,
    ) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert!(
            trace.threads.len() <= cfg.cores.cores,
            "trace needs {} threads but the system has {} cores",
            trace.threads.len(),
            cfg.cores.cores
        );
        let codec = Self::codec_for(&cfg, expansion);
        let map = MemoryMap::table_iii(cfg.mem.log_region_bytes as u64);
        let tracer = if cfg.trace.enabled {
            Tracer::with_capacity(cfg.trace.buffer_capacity)
        } else {
            Tracer::from_env()
        };
        let sample_period =
            morlog_sim_core::metrics::sample_cycles_from_env().unwrap_or(cfg.metrics.sample_cycles);
        let mut mc = MemoryController::new(cfg.mem, cfg.cores.frequency, map, codec);
        mc.set_secure_mode(secure);
        mc.set_tracer(tracer.clone());
        let mut lc = LogController::new(cfg.design, cfg.log);
        lc.set_secure_mode(secure);
        lc.set_tracer(tracer.clone());
        lc.set_mutation(cfg.mutation);
        let mut oracle = Oracle::new();
        for thread in &trace.threads {
            oracle.record_initial(&thread.initial);
            for &(addr, value) in &thread.initial {
                let line_addr = addr.line();
                let mut line = mc.read_line(line_addr);
                line.set_word(addr.word_index(), value);
                mc.write_line_functional(line_addr, line);
            }
        }
        let cores = (0..trace.threads.len())
            .map(|i| Core {
                thread: ThreadId::new(i as u8),
                tx_idx: 0,
                op_idx: 0,
                phase: Phase::Ready,
                key: None,
                tx_began: false,
                busy_kind: StallKind::Busy,
            })
            .collect();
        let mut hierarchy = Hierarchy::new(&cfg.hierarchy, cfg.cores.cores);
        hierarchy.set_tracer(tracer.clone());
        System {
            hierarchy,
            lc,
            fwb: FwbScheduler::new(cfg.hierarchy.force_write_back_period),
            cores,
            trace: trace.clone(),
            pending_writebacks: VecDeque::new(),
            pending_truncation: None,
            tx_table: TransactionTable::new(),
            now: 0,
            committed: 0,
            tx_stores: 0,
            tx_loads: 0,
            store_stall_cycles: 0,
            finish_cycle: None,
            oracle,
            tracer,
            attr: CycleAttribution::default(),
            sample_period,
            series: SeriesSet::with_period(sample_period),
            mc,
            cfg,
        }
    }

    /// The shared trace handle (disabled unless the configuration or the
    /// `MORLOG_TRACE` environment variable enabled it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory controller (for recovery-oriented inspection).
    pub fn memory(&self) -> &MemoryController {
        &self.mc
    }

    /// Transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Whether every core has retired its whole trace.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(|c| c.phase == Phase::Done)
    }

    /// Runs to completion (plus quiescing the log buffers) and returns the
    /// collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the system stops making progress (an engine bug, surfaced
    /// loudly rather than hanging).
    pub fn run(&mut self) -> SimStats {
        let mut last_progress = (0u64, 0usize, self.now);
        while !self.finished() {
            self.step_cycle();
            // Watchdog: commits or retired ops must advance.
            if self.now.is_multiple_of(4_000_000) {
                let ops: usize = self.cores.iter().map(|c| c.tx_idx * 1000 + c.op_idx).sum();
                let progress = (self.committed, ops, self.now);
                assert!(
                    (progress.0, progress.1) != (last_progress.0, last_progress.1),
                    "no progress between cycle {} and {}: cores {:?}",
                    last_progress.2,
                    self.now,
                    self.cores.iter().map(|c| c.phase).collect::<Vec<_>>()
                );
                last_progress = progress;
            }
        }
        self.finish_cycle = Some(self.now);
        debug_assert_eq!(
            self.attr.total(),
            self.now * self.cores.len() as u64,
            "cycle attribution must account every core-cycle exactly once"
        );
        self.quiesce();
        self.stats()
    }

    /// Runs at most `cycles` more cycles; returns `true` if the workload
    /// finished within them.
    pub fn run_for(&mut self, cycles: Cycle) -> bool {
        let deadline = self.now + cycles;
        while !self.finished() && self.now < deadline {
            self.step_cycle();
        }
        self.finished()
    }

    fn quiesce(&mut self) {
        let deadline = self.now + 50_000_000;
        while !(self.lc.is_quiescent() && self.pending_writebacks.is_empty()) {
            self.step_cycle();
            assert!(self.now < deadline, "log controller failed to quiesce");
        }
        // Let the write queues drain for the energy/traffic accounting.
        for _ in 0..100_000 {
            if self.mc.write_queue_occupancy() == 0 {
                break;
            }
            self.mc.tick(self.now);
            self.now += 1;
        }
    }

    /// Assembles the run's statistics. `cycles` is the execution time up
    /// to the last commit; buffer-drain tails after completion are
    /// excluded (see `finish_cycle`).
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.finish_cycle.unwrap_or(self.now),
            transactions_committed: self.committed,
            tx_stores: self.tx_stores,
            tx_loads: self.tx_loads,
            cache: *self.hierarchy.stats(),
            mem: *self.mc.stats(),
            log: {
                let mut l = *self.lc.stats();
                l.buffer_full_stall_cycles += self.store_stall_cycles;
                l
            },
            attr: self.attr,
            metrics: MetricsSet {
                commit: self.lc.latency().clone(),
                log_writes: self.mc.log_metrics().clone(),
                series: self.series.clone(),
            },
        }
    }

    fn step_cycle(&mut self) {
        // Occupancy sampling runs on the execution clock only — the
        // quiesce tail after the last commit is excluded, like `attr`.
        if self.sample_period != 0
            && self.finish_cycle.is_none()
            && self.now.is_multiple_of(self.sample_period)
        {
            let (ur, redo, _) = self.lc.occupancy();
            self.series.push_sample(
                self.now,
                self.mc.write_queue_occupancy() as u64,
                redo as u64,
                ur as u64,
                self.mc.log_used_bytes(),
                self.lc.commit_backlog() as u64,
                self.pending_writebacks.len() as u64,
            );
        }
        self.hierarchy.set_now(self.now);
        self.mc.tick(self.now);
        let persisted = self.lc.tick(self.now, &mut self.mc);
        for p in persisted {
            if let Some((_, line)) = self.hierarchy.find_l1(p.addr.line()) {
                if let Some(ext) = line.ext.as_mut() {
                    let w = p.addr.word_index();
                    if ext.owner == p.key && ext.word_state[w] == WordLogState::Dirty {
                        let to = if p.silent {
                            // Silent log write discarded: no undo anchor in
                            // the log, so the word must restart from Clean.
                            ext.word_state[w] = WordLogState::Clean;
                            ext.dirty_flags[w] = 0;
                            WordStateTag::Clean
                        } else {
                            ext.word_state[w] = WordLogState::URLog;
                            WordStateTag::URLog
                        };
                        self.tracer.emit(self.now, || TraceEvent::WordTransition {
                            key: p.key,
                            addr: p.addr.as_u64(),
                            from: WordStateTag::Dirty,
                            to,
                        });
                    }
                }
            }
        }
        self.drain_writebacks();
        if self.pending_writebacks.is_empty() {
            if let Some(horizon) = self.pending_truncation.take() {
                // All scan writebacks are in the persist domain: entries of
                // transactions committed before the horizon are now safe to
                // delete.
                self.lc.truncate(horizon, &mut self.mc);
            }
        }
        if self.fwb.due(self.now) {
            let wbs = self.hierarchy.force_write_back_scan();
            self.pending_writebacks.extend(wbs);
            self.fwb.record_scan(self.now);
            if self.cfg.log.truncation == morlog_sim_core::config::TruncationPolicy::ForceWriteBack
            {
                if let Some(horizon) = self.fwb.safe_commit_horizon() {
                    self.pending_truncation = Some(horizon);
                }
            }
        }
        // Table-based truncation runs continuously (here: every 4096
        // cycles) — a committed transaction's entries are deleted as soon
        // as its last dirty line persists (§III-F option 2).
        if self.cfg.log.truncation == morlog_sim_core::config::TruncationPolicy::TransactionTable
            && self.now.is_multiple_of(4096)
            && self.pending_writebacks.is_empty()
        {
            self.lc.truncate_with_table(&self.tx_table, &mut self.mc);
        }
        for i in 0..self.cores.len() {
            let kind = self.step_core(i);
            // The attribution clock stops with the throughput clock: the
            // quiesce tail after the last commit is not execution time.
            if self.finish_cycle.is_none() {
                self.attr.add(kind);
            }
        }
        self.now += 1;
    }

    fn drain_writebacks(&mut self) {
        while let Some(&(addr, data)) = self.pending_writebacks.front() {
            if !self
                .lc
                .on_llc_writeback(addr.index(), self.now, &mut self.mc)
            {
                break;
            }
            if !self.mc.try_write_data(addr, data, self.now) {
                self.mc.note_wq_stall();
                break;
            }
            if self.cfg.log.truncation
                == morlog_sim_core::config::TruncationPolicy::TransactionTable
            {
                self.tx_table.on_line_persisted(addr);
            }
            self.pending_writebacks.pop_front();
        }
    }

    fn handle_events(&mut self, events: Vec<EvictionEvent>) {
        for ev in events {
            match ev {
                EvictionEvent::L1Evicted(line) => self.lc.on_l1_evict(&line, self.now),
                EvictionEvent::MemoryWriteback { addr, data } => {
                    self.pending_writebacks.push_back((addr, data));
                }
            }
        }
    }

    /// Advances one core by one cycle and reports which attribution
    /// account the cycle belongs to (exactly one per core per cycle).
    fn step_core(&mut self, i: usize) -> StallKind {
        match self.cores[i].phase {
            Phase::Done => StallKind::Idle,
            Phase::BusyUntil(t) => {
                if self.now >= t {
                    self.cores[i].phase = Phase::Ready;
                    self.issue(i)
                } else {
                    self.cores[i].busy_kind
                }
            }
            Phase::WaitRead(ticket, line) => {
                if self.mc.take_if_done(ticket, self.now) {
                    let data = self.mc.read_line(line);
                    let events = self.hierarchy.fill(i, line, data);
                    self.handle_events(events);
                    // Retry the op next cycle with the line resident.
                    self.cores[i].busy_kind = StallKind::Busy;
                    self.cores[i].phase = Phase::BusyUntil(self.now + 1);
                }
                // A read held behind a write-queue drain is charged to the
                // drain, not to plain read latency.
                if self.mc.any_channel_draining() {
                    StallKind::DrainWait
                } else {
                    StallKind::ReadWait
                }
            }
            Phase::WaitCommit => {
                if !self.lc.is_commit_pending(self.cores[i].thread) {
                    self.finish_commit(i);
                }
                StallKind::CommitWait
            }
            Phase::Ready => self.issue(i),
        }
    }

    fn issue(&mut self, i: usize) -> StallKind {
        let thread = self.cores[i].thread;
        let tx_idx = self.cores[i].tx_idx;
        if tx_idx >= self.trace.threads[i].transactions.len() {
            self.cores[i].phase = Phase::Done;
            return StallKind::Idle;
        }
        if !self.cores[i].tx_began {
            // Log backpressure: do not open new transactions while commit
            // records are piling up behind a full log region (§III-A).
            if self.lc.commit_backlog() > 4 * self.cores.len() {
                self.cores[i].busy_kind = StallKind::CommitWait;
                self.cores[i].phase = Phase::BusyUntil(self.now + 16);
                return StallKind::CommitWait;
            }
            let key = self.lc.tx_begin(thread, self.now);
            self.oracle.begin(key);
            self.tracer.emit(self.now, || TraceEvent::CommitPhase {
                key,
                phase: CommitPhaseTag::Begin,
            });
            self.cores[i].key = Some(key);
            self.cores[i].tx_began = true;
            self.cores[i].busy_kind = StallKind::Busy;
            self.cores[i].phase = Phase::BusyUntil(self.now + 1);
            return StallKind::Busy;
        }
        let op_idx = self.cores[i].op_idx;
        let ops_len = self.trace.threads[i].transactions[tx_idx].ops.len();
        if op_idx >= ops_len {
            return self.start_commit(i);
        }
        let op = self.trace.threads[i].transactions[tx_idx].ops[op_idx];
        match op {
            Op::Compute(cycles) => {
                self.cores[i].op_idx += 1;
                self.cores[i].busy_kind = StallKind::Busy;
                self.cores[i].phase = Phase::BusyUntil(self.now + cycles as Cycle);
                StallKind::Busy
            }
            Op::Load(addr) => {
                let (outcome, events) = self.hierarchy.access(i, addr.line());
                self.handle_events(events);
                match outcome {
                    AccessOutcome::Miss => {
                        let ticket = self.mc.enqueue_read(addr.line(), self.now);
                        self.cores[i].phase = Phase::WaitRead(ticket, addr.line());
                        StallKind::ReadWait
                    }
                    hit => {
                        self.tx_loads += 1;
                        self.cores[i].op_idx += 1;
                        self.cores[i].busy_kind = StallKind::Busy;
                        self.cores[i].phase =
                            Phase::BusyUntil(self.now + hit.latency(&self.cfg.hierarchy));
                        StallKind::Busy
                    }
                }
            }
            Op::Store(addr, value) => self.issue_store(i, addr, value),
        }
    }

    fn issue_store(&mut self, i: usize, addr: Addr, value: u64) -> StallKind {
        let key = self.cores[i].key.expect("store inside a transaction");
        let line_addr = addr.line();
        if self.hierarchy.l1_line_mut(i, line_addr).is_none() {
            // Write-allocate: bring the line into L1 first.
            let (outcome, events) = self.hierarchy.access(i, line_addr);
            self.handle_events(events);
            match outcome {
                AccessOutcome::Miss => {
                    let ticket = self.mc.enqueue_read(line_addr, self.now);
                    self.cores[i].phase = Phase::WaitRead(ticket, line_addr);
                    return StallKind::ReadWait;
                }
                hit => {
                    // Line is now resident; perform the store after the
                    // lookup latency.
                    self.cores[i].busy_kind = StallKind::Busy;
                    self.cores[i].phase =
                        Phase::BusyUntil(self.now + hit.latency(&self.cfg.hierarchy));
                    return StallKind::Busy;
                }
            }
        }
        let w = addr.word_index();
        let line = self.hierarchy.l1_line_mut(i, line_addr).expect("resident");
        let old = line.data.word(w);
        match self
            .lc
            .on_store(key, addr, old, value, line, self.now, &mut self.mc)
        {
            Err(why) => {
                // Buffer backpressure: retry next cycle.
                self.store_stall_cycles += 1;
                match why {
                    StoreStall::Buffer => StallKind::LogBufferStall,
                    StoreStall::WriteQueue => StallKind::WqStall,
                }
            }
            Ok(()) => {
                if self.cfg.log.truncation
                    == morlog_sim_core::config::TruncationPolicy::TransactionTable
                {
                    self.tx_table.on_store(key, line_addr);
                }
                let line = self.hierarchy.l1_line_mut(i, line_addr).expect("resident");
                line.data.set_word(w, value);
                // Stores do not clear the force-write-back age flag: a line
                // flagged at scan k is written back at scan k+1 even if it
                // keeps being re-dirtied, which is what makes "committed
                // before the last two scans" a safe truncation horizon.
                line.dirty = true;
                self.tx_stores += 1;
                self.oracle.record_write(key, addr, value);
                self.cores[i].op_idx += 1;
                // Stores retire through the store buffer at one per cycle
                // when the line is resident; misses block (write-allocate).
                self.cores[i].busy_kind = StallKind::Busy;
                self.cores[i].phase = Phase::BusyUntil(self.now + 1);
                StallKind::Busy
            }
        }
    }

    fn start_commit(&mut self, i: usize) -> StallKind {
        let key = self.cores[i].key.expect("commit inside a transaction");
        let dp = self.cfg.design.delay_persistence();
        let mut ulog_words = Vec::new();
        let mut ulog_count = 0u32;
        if self.cfg.design.is_morlog() {
            for line in self.hierarchy.l1_lines_mut(i) {
                let addr = line.addr;
                let data = line.data;
                if let Some(ext) = line.ext.as_mut() {
                    if ext.owner != key {
                        continue;
                    }
                    for w in 0..morlog_sim_core::WORDS_PER_LINE {
                        if ext.word_state[w] == WordLogState::ULog {
                            if dp {
                                // §III-C: redo data stay in the L1 line; the
                                // ulog counter goes into the commit record.
                                // (SkipUlogBump sabotages exactly this bump
                                // for the checker's mutation self-test.)
                                if self.cfg.mutation != morlog_sim_core::CheckMutation::SkipUlogBump
                                {
                                    ulog_count += 1;
                                }
                            } else {
                                ulog_words.push(UlogWord {
                                    addr: addr.word_addr(w),
                                    value: data.word(w),
                                    dirty_mask: ext.dirty_flags[w],
                                });
                                ext.word_state[w] = WordLogState::URLog;
                                self.tracer.emit(self.now, || TraceEvent::WordTransition {
                                    key,
                                    addr: addr.word_addr(w).as_u64(),
                                    from: WordStateTag::ULog,
                                    to: WordStateTag::URLog,
                                });
                            }
                        }
                    }
                }
            }
        }
        self.lc.start_commit(key, ulog_words, ulog_count, self.now);
        if dp {
            // Instant commit (§III-C).
            self.finish_commit(i);
            StallKind::Busy
        } else {
            self.cores[i].phase = Phase::WaitCommit;
            StallKind::CommitWait
        }
    }

    fn finish_commit(&mut self, i: usize) {
        let key = self.cores[i].key.expect("commit inside a transaction");
        let dp = self.cfg.design.delay_persistence();
        if self.cfg.design.is_morlog() {
            let trace_on = self.tracer.is_enabled();
            for line in self.hierarchy.l1_lines_mut(i) {
                let addr = line.addr;
                if let Some(ext) = line.ext.as_mut() {
                    if ext.owner != key {
                        continue;
                    }
                    if dp {
                        // ULog words keep buffering redo data after commit;
                        // fully-persisted words go back to Clean.
                        for w in 0..morlog_sim_core::WORDS_PER_LINE {
                            if ext.word_state[w] != WordLogState::ULog
                                && ext.word_state[w] != WordLogState::Dirty
                            {
                                if trace_on && ext.word_state[w] == WordLogState::URLog {
                                    self.tracer.emit(self.now, || TraceEvent::WordTransition {
                                        key,
                                        addr: addr.word_addr(w).as_u64(),
                                        from: WordStateTag::URLog,
                                        to: WordStateTag::Clean,
                                    });
                                }
                                ext.word_state[w] = WordLogState::Clean;
                                ext.dirty_flags[w] = 0;
                            }
                        }
                    } else {
                        if trace_on {
                            for w in 0..morlog_sim_core::WORDS_PER_LINE {
                                if ext.word_state[w] == WordLogState::URLog {
                                    self.tracer.emit(self.now, || TraceEvent::WordTransition {
                                        key,
                                        addr: addr.word_addr(w).as_u64(),
                                        from: WordStateTag::URLog,
                                        to: WordStateTag::Clean,
                                    });
                                }
                            }
                        }
                        ext.reset();
                    }
                }
            }
        }
        if self.cfg.log.truncation == morlog_sim_core::config::TruncationPolicy::TransactionTable {
            self.tx_table.on_commit(key);
        }
        self.oracle.mark_committed(key);
        self.committed += 1;
        self.cores[i].tx_idx += 1;
        self.cores[i].op_idx = 0;
        self.cores[i].tx_began = false;
        self.cores[i].phase = Phase::BusyUntil(self.now + 1);
    }

    /// Installs a fault-injection plan on the memory controller (see
    /// [`FaultPlan`]). Must be set before the run so the controller tracks
    /// in-flight write payloads from the first write on.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.mc.set_fault_plan(plan);
    }

    /// Monotone persist-event count: NVMM program acceptances so far (see
    /// [`MemoryController::persist_events`]).
    ///
    /// [`MemoryController::persist_events`]: morlog_nvm::controller::MemoryController::persist_events
    pub fn persist_events(&self) -> u64 {
        self.mc.persist_events()
    }

    /// Starts persist-domain hash sampling (the checker's reference run).
    /// Call before [`run`](System::run).
    pub fn enable_persist_hash(&mut self) {
        self.mc.enable_persist_hash();
    }

    /// Persist-domain hash samples: entry `i` is the fold right after
    /// persist event `i + 1` (empty unless sampling was enabled).
    pub fn persist_hash_samples(&self) -> &[u64] {
        self.mc.persist_hash_samples()
    }

    /// Starts persist-event metadata recording (the checker's
    /// partial-order-reduction reference run). Call before
    /// [`run`](System::run).
    pub fn enable_persist_meta(&mut self) {
        self.mc.enable_persist_meta();
    }

    /// Recorded persist-event metadata stream (empty unless recording was
    /// enabled via [`enable_persist_meta`](System::enable_persist_meta)).
    pub fn persist_event_meta(&self) -> &[morlog_sim_core::persist::PersistEventMeta] {
        self.mc.persist_event_meta()
    }

    /// Arms a persist-event crash point (see
    /// [`MemoryController::arm_crash_at`]); drive the run with
    /// [`run_until_crash_point`](System::run_until_crash_point).
    ///
    /// [`MemoryController::arm_crash_at`]: morlog_nvm::controller::MemoryController::arm_crash_at
    pub fn arm_crash_at(&mut self, n: u64) {
        self.mc.arm_crash_at(n);
    }

    /// Advances the system until an armed crash point freezes the
    /// controller, returning `true` — or until the workload finishes and
    /// quiesces without ever reaching it, returning `false` (the crash
    /// point lies beyond the run's total persist events).
    ///
    /// [`run`](System::run) cannot be used here: its progress watchdog
    /// would (correctly) trip on the deliberate stall a frozen controller
    /// induces. The post-completion drain is stepped too, because the
    /// reference schedule includes quiesce-time persist events.
    ///
    /// # Panics
    ///
    /// Panics if the system stops making progress with the crash point
    /// still unreached (an engine bug, surfaced loudly).
    pub fn run_until_crash_point(&mut self) -> bool {
        let deadline = self.now + 200_000_000;
        while !self.finished() {
            if self.mc.crash_point_reached() {
                return true;
            }
            self.step_cycle();
            assert!(
                self.now < deadline,
                "crash-point replay stalled without reaching its target"
            );
        }
        while !(self.lc.is_quiescent() && self.pending_writebacks.is_empty()) {
            if self.mc.crash_point_reached() {
                return true;
            }
            self.step_cycle();
            assert!(
                self.now < deadline,
                "crash-point replay failed to quiesce past the last event"
            );
        }
        self.mc.crash_point_reached()
    }

    /// Crash injection: volatile state (caches, log buffers, in-flight
    /// commits) vanishes; the NVMM image and the log ring — including the
    /// ADR-protected write queue, flushed by the ADR circuitry — survive.
    /// An active fault plan may damage in-flight log slots during that
    /// flush (torn drains, escaped bit flips); see
    /// [`MemoryController::crash_persist`].
    ///
    /// [`MemoryController::crash_persist`]: morlog_nvm::controller::MemoryController::crash_persist
    pub fn crash(&mut self) {
        self.mc.crash_persist();
        self.hierarchy.invalidate_all();
        self.lc.on_crash();
        self.tx_table.clear();
        self.pending_writebacks.clear();
        for core in &mut self.cores {
            core.phase = Phase::Done;
        }
    }

    /// Runs the §III-E recovery routine over the surviving log ring.
    pub fn recover(&mut self) -> RecoveryReport {
        recover(&mut self.mc, self.cfg.design.delay_persistence())
    }

    /// Runs recovery but loses power again after `apply_budget` replay
    /// writes (double-crash modelling). The log survives an interrupted
    /// pass, so a later [`recover`](System::recover) can finish the job.
    pub fn recover_interrupted(&mut self, apply_budget: usize) -> RecoveryReport {
        morlog_logging::recovery::recover_interrupted(
            &mut self.mc,
            self.cfg.design.delay_persistence(),
            apply_budget,
        )
    }

    /// Checks atomic persistence against the oracle after crash+recovery.
    ///
    /// Strict durability (every program-observed commit survives) is
    /// asserted for the synchronous designs — unless a crash-time fault
    /// was injected, in which case recovery may soundly demote damaged
    /// transactions and the oracle only requires a consistent prefix.
    ///
    /// # Errors
    ///
    /// Returns the oracle's description of the first violated word.
    pub fn verify_recovery(&self, report: &RecoveryReport) -> Result<(), String> {
        let strict =
            !self.cfg.design.delay_persistence() && !self.mc.stats().crash_faults_injected();
        self.oracle.verify(&self.mc, report, strict)
    }
}
