//! Run reports and the normalized metrics the paper's figures use.

use morlog_sim_core::{DesignKind, Frequency, SimStats};

/// One design's results on one workload.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The design that ran.
    pub design: DesignKind,
    /// Workload label (e.g. "BTree-Small").
    pub workload: String,
    /// Worker threads that actually ran (after clamping to the core
    /// count) — the count result rows must be labelled with.
    pub threads: usize,
    /// Collected statistics.
    pub stats: SimStats,
    /// Core frequency (for throughput).
    pub frequency: Frequency,
    /// Trace-ring evictions during the run (0 when tracing is off or
    /// the ring never filled). Non-zero means a dumped JSONL trace is
    /// truncated at the front — `trace2perfetto` spans may be missing
    /// their begin events.
    pub trace_dropped: u64,
}

impl RunReport {
    /// Transactions per simulated second.
    pub fn throughput(&self) -> f64 {
        self.stats.tx_per_second(self.frequency)
    }

    /// Throughput normalized to a baseline run (Fig. 12/14 bars).
    pub fn normalized_throughput(&self, baseline: &RunReport) -> f64 {
        let base = baseline.throughput();
        if base == 0.0 {
            0.0
        } else {
            self.throughput() / base
        }
    }

    /// NVMM write traffic normalized to a baseline run (Fig. 13 bars).
    pub fn normalized_write_traffic(&self, baseline: &RunReport) -> f64 {
        let base = baseline.stats.mem.nvmm_writes;
        if base == 0 {
            0.0
        } else {
            self.stats.mem.nvmm_writes as f64 / base as f64
        }
    }

    /// NVMM write-energy reduction vs. a baseline, in percent (Table V).
    pub fn energy_reduction_pct(&self, baseline: &RunReport) -> f64 {
        let base = baseline.stats.mem.write_energy_pj;
        if base == 0.0 {
            0.0
        } else {
            (1.0 - self.stats.mem.write_energy_pj / base) * 100.0
        }
    }

    /// Log-bit reduction vs. a baseline, in percent (Table VI).
    pub fn log_bit_reduction_pct(&self, baseline: &RunReport) -> f64 {
        let base = baseline.stats.mem.log_bits_programmed;
        if base == 0 {
            0.0
        } else {
            (1.0 - self.stats.mem.log_bits_programmed as f64 / base as f64) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, writes: u64, energy: f64, bits: u64) -> RunReport {
        let mut stats = SimStats {
            cycles,
            transactions_committed: 1000,
            ..Default::default()
        };
        stats.mem.nvmm_writes = writes;
        stats.mem.write_energy_pj = energy;
        stats.mem.log_bits_programmed = bits;
        RunReport {
            design: DesignKind::MorLogSlde,
            workload: "test".into(),
            threads: 4,
            stats,
            frequency: Frequency::ghz(3.0),
            trace_dropped: 0,
        }
    }

    #[test]
    fn normalization_math() {
        let base = report(2_000_000, 1000, 100.0, 10_000);
        let fast = report(1_000_000, 600, 50.0, 4_000);
        assert!((fast.normalized_throughput(&base) - 2.0).abs() < 1e-9);
        assert!((fast.normalized_write_traffic(&base) - 0.6).abs() < 1e-9);
        assert!((fast.energy_reduction_pct(&base) - 50.0).abs() < 1e-9);
        assert!((fast.log_bit_reduction_pct(&base) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_do_not_divide_by_zero() {
        let base = report(0, 0, 0.0, 0);
        let r = report(1, 1, 1.0, 1);
        assert_eq!(r.normalized_throughput(&base), 0.0);
        assert_eq!(r.normalized_write_traffic(&base), 0.0);
        assert_eq!(r.energy_reduction_pct(&base), 0.0);
    }
}
