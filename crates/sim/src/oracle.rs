//! The transaction oracle: ground truth for crash/recovery verification.
//!
//! The oracle records the program-order writes of every transaction and
//! which transactions committed from the program's point of view. After a
//! crash and recovery, [`Oracle::verify`] checks *atomic persistence*: for
//! every thread, the post-recovery NVMM image must equal the replay of a
//! **prefix** of that thread's transactions — every transaction is
//! all-there or all-gone, and survival follows commit order.
//!
//! Under the synchronous commit protocols the surviving prefix must cover
//! every transaction the program saw commit (durability at commit). Under
//! delay-persistence (§III-C) commit guarantees atomicity only: the most
//! recently committed transactions may be rolled back, so the prefix may
//! end earlier — but it must still be a prefix, and it must contain every
//! transaction recovery claims to have rolled forward and none it rolled
//! back.
//!
//! Injected crash-time faults (torn drains, escaped bit flips) get the
//! same relaxation: hardened recovery may soundly demote a transaction
//! whose log records were damaged, so the surviving prefix may stop short
//! of the last program-observed commit — but non-prefix survival (a later
//! transaction persisting while an earlier one is lost) and partial
//! transactions remain violations. [`System::verify_recovery`] passes
//! `strict_durability = false` exactly when the controller reports a
//! crash-time fault.
//!
//! [`System::verify_recovery`]: crate::system::System::verify_recovery

use std::collections::{BTreeMap, HashMap, HashSet};

use morlog_logging::recovery::RecoveryReport;
use morlog_nvm::controller::MemoryController;
use morlog_sim_core::ids::TxKey;
use morlog_sim_core::{Addr, ThreadId};

#[derive(Debug, Clone)]
struct OracleTx {
    key: TxKey,
    writes: Vec<(Addr, u64)>,
    committed: bool,
}

/// Ground-truth recorder for atomicity verification.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    txs: Vec<OracleTx>,
    index: HashMap<TxKey, usize>,
    initial: Vec<(Addr, u64)>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Registers the pre-loaded NVMM image.
    pub fn record_initial(&mut self, writes: &[(Addr, u64)]) {
        self.initial.extend_from_slice(writes);
    }

    /// A transaction began.
    pub fn begin(&mut self, key: TxKey) {
        self.index.insert(key, self.txs.len());
        self.txs.push(OracleTx {
            key,
            writes: Vec::new(),
            committed: false,
        });
    }

    /// A transactional store executed (program order).
    pub fn record_write(&mut self, key: TxKey, addr: Addr, value: u64) {
        let idx = self.index[&key];
        self.txs[idx].writes.push((addr.word_base(), value));
    }

    /// The transaction committed (program-visible commit).
    pub fn mark_committed(&mut self, key: TxKey) {
        let idx = self.index[&key];
        self.txs[idx].committed = true;
    }

    /// Transactions recorded so far.
    pub fn transactions(&self) -> usize {
        self.txs.len()
    }

    /// Verifies atomic persistence of the post-recovery NVMM image.
    ///
    /// `strict_durability` should be `true` for the synchronous commit
    /// protocols (a program-visible commit implies persistence) and `false`
    /// under delay-persistence.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation: no surviving prefix matches
    /// the NVMM image, or the surviving prefix is inconsistent with the
    /// recovery report or the durability contract.
    pub fn verify(
        &self,
        mc: &MemoryController,
        report: &RecoveryReport,
        strict_durability: bool,
    ) -> Result<(), String> {
        let redone: HashSet<TxKey> = report.redone.iter().copied().collect();
        let undone: HashSet<TxKey> = report.undone.iter().copied().collect();

        // Group transactions per thread, preserving program order. Threads
        // write disjoint addresses (isolation via partitioning, §III-A), so
        // each thread verifies independently. Ordered map: when several
        // threads are violated, the reported one must not depend on hash
        // iteration order (counterexample details are diffed across runs).
        let mut per_thread: BTreeMap<ThreadId, Vec<&OracleTx>> = BTreeMap::new();
        for tx in &self.txs {
            per_thread.entry(tx.key.thread).or_default().push(tx);
        }
        let initial: HashMap<u64, u64> = self
            .initial
            .iter()
            .map(|&(a, v)| (a.word_base().as_u64(), v))
            .collect();

        for (thread, txs) in per_thread {
            // Addresses this thread ever touches.
            let mut touched: HashSet<u64> = HashSet::new();
            for tx in &txs {
                for &(a, _) in &tx.writes {
                    touched.insert(a.as_u64());
                }
            }
            // Also include the thread's own initial image words.
            // (Initial entries are global; including extra words is fine —
            // other threads never write them.)
            // Allowed prefix lengths.
            let mut lo = 0usize;
            let mut hi = txs.len();
            for (i, tx) in txs.iter().enumerate() {
                if redone.contains(&tx.key) {
                    lo = lo.max(i + 1);
                }
                if undone.contains(&tx.key) {
                    hi = hi.min(i);
                }
                if strict_durability && tx.committed {
                    lo = lo.max(i + 1);
                }
                // A transaction that never committed (and that recovery did
                // not roll forward from a persisted commit record) must not
                // survive.
                if !tx.committed && !redone.contains(&tx.key) {
                    hi = hi.min(i);
                }
            }
            if lo > hi {
                return Err(format!(
                    "{thread}: recovery report inconsistent — surviving prefix must \
                     include at least {lo} transactions but at most {hi}"
                ));
            }
            // Committed transactions are a prefix of program order (commits
            // are in order per thread); the surviving prefix must not
            // include uncommitted transactions unless recovery redid them
            // (their commit record persisted just before the crash).
            for (i, tx) in txs.iter().enumerate() {
                if i < lo && !tx.committed && !redone.contains(&tx.key) {
                    return Err(format!(
                        "{thread}: transaction {} must survive but never committed",
                        tx.key
                    ));
                }
            }

            // Try every allowed prefix length, replaying incrementally.
            let mut expected: HashMap<u64, u64> = touched
                .iter()
                .map(|&a| (a, initial.get(&a).copied().unwrap_or(0)))
                .collect();
            for tx in &txs[..lo] {
                for &(a, v) in &tx.writes {
                    expected.insert(a.as_u64(), v);
                }
            }
            let mut k = lo;
            let mut matched = false;
            loop {
                if state_matches(mc, &expected) {
                    matched = true;
                    break;
                }
                if k >= hi {
                    break;
                }
                for &(a, v) in &txs[k].writes {
                    expected.insert(a.as_u64(), v);
                }
                k += 1;
            }
            if !matched {
                // Produce a diagnostic against the largest allowed prefix.
                let mismatch = first_mismatch(mc, &expected);
                return Err(format!(
                    "{thread}: no surviving prefix in [{lo}, {hi}] matches NVMM \
                     (at the {hi}-prefix, first mismatch: {mismatch})"
                ));
            }
        }
        Ok(())
    }
}

fn state_matches(mc: &MemoryController, expected: &HashMap<u64, u64>) -> bool {
    expected.iter().all(|(&a, &want)| {
        let addr = Addr::new(a);
        mc.read_line(addr.line()).word(addr.word_index()) == want
    })
}

fn first_mismatch(mc: &MemoryController, expected: &HashMap<u64, u64>) -> String {
    let mut keys: Vec<&u64> = expected.keys().collect();
    keys.sort();
    for &&a in &keys {
        let addr = Addr::new(a);
        let got = mc.read_line(addr.line()).word(addr.word_index());
        let want = expected[&a];
        if got != want {
            return format!("{addr}: NVMM holds {got:#x}, expected {want:#x}");
        }
    }
    "none".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_encoding::cell::CellModel;
    use morlog_encoding::slde::SldeCodec;
    use morlog_sim_core::{Frequency, MemConfig, TxId};

    fn mc() -> MemoryController {
        MemoryController::with_default_map(
            MemConfig::default(),
            Frequency::ghz(3.0),
            SldeCodec::new(CellModel::table_iii()),
        )
    }

    fn key(x: u16) -> TxKey {
        TxKey::new(ThreadId::new(0), TxId::new(x))
    }

    fn set_word(m: &mut MemoryController, a: Addr, v: u64) {
        let mut line = m.read_line(a.line());
        line.set_word(a.word_index(), v);
        m.write_line_functional(a.line(), line);
    }

    #[test]
    fn committed_tx_must_be_visible_under_strict_durability() {
        let mut m = mc();
        let a = m.map().data_base();
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 5);
        o.mark_committed(key(0));
        let report = RecoveryReport::default();
        assert!(o.verify(&m, &report, true).is_err(), "NVMM still zero");
        set_word(&mut m, a, 5);
        assert!(o.verify(&m, &report, true).is_ok());
    }

    #[test]
    fn dp_may_lose_recent_commits_but_only_as_a_suffix() {
        let mut m = mc();
        let a = m.map().data_base();
        let b = Addr::new(a.as_u64() + 8);
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 1);
        o.mark_committed(key(0));
        o.begin(key(1));
        o.record_write(key(1), b, 2);
        o.mark_committed(key(1));
        let report = RecoveryReport::default();
        // Nothing persisted: acceptable under DP (prefix length 0)...
        assert!(o.verify(&m, &report, false).is_ok());
        // ...but a strict protocol must reject it.
        assert!(o.verify(&m, &report, true).is_err());
        // tx1 persisted, tx0 lost: NOT a prefix — reject even under DP.
        set_word(&mut m, b, 2);
        assert!(o.verify(&m, &report, false).is_err());
        // Both persisted: fine.
        set_word(&mut m, a, 1);
        assert!(o.verify(&m, &report, false).is_ok());
    }

    #[test]
    fn undone_tx_must_be_invisible() {
        let mut m = mc();
        let a = m.map().data_base();
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 5);
        o.mark_committed(key(0));
        let report = RecoveryReport {
            undone: vec![key(0)],
            ..Default::default()
        };
        assert!(
            o.verify(&m, &report, false).is_ok(),
            "rolled-back tx leaves zeros"
        );
        set_word(&mut m, a, 5);
        assert!(
            o.verify(&m, &report, false).is_err(),
            "undone tx must not persist"
        );
    }

    #[test]
    fn redone_tx_must_be_visible_even_under_dp() {
        let mut m = mc();
        let a = m.map().data_base();
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 5);
        o.mark_committed(key(0));
        let report = RecoveryReport {
            redone: vec![key(0)],
            ..Default::default()
        };
        assert!(o.verify(&m, &report, false).is_err(), "redone but absent");
        set_word(&mut m, a, 5);
        assert!(o.verify(&m, &report, false).is_ok());
    }

    #[test]
    fn partial_visibility_is_a_violation() {
        let mut m = mc();
        let a = m.map().data_base();
        let b = Addr::new(a.as_u64() + 8);
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 1);
        o.record_write(key(0), b, 2);
        o.mark_committed(key(0));
        set_word(&mut m, a, 1); // only half the transaction applied
        assert!(o.verify(&m, &RecoveryReport::default(), false).is_err());
    }

    #[test]
    fn inconsistent_report_is_rejected() {
        let m = mc();
        let a = m.map().data_base();
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 1);
        o.mark_committed(key(0));
        o.begin(key(1));
        o.record_write(key(1), a, 2);
        o.mark_committed(key(1));
        // Recovery claims tx1 redone but tx0 undone: not a prefix.
        let report = RecoveryReport {
            redone: vec![key(1)],
            undone: vec![key(0)],
            ..Default::default()
        };
        assert!(o.verify(&m, &report, false).is_err());
    }

    #[test]
    fn fault_demoted_commit_passes_only_in_relaxed_mode() {
        // A crash-time fault damaged the commit's log records: hardened
        // recovery rolled the (program-observed) committed tx back. The
        // relaxed check accepts the shorter prefix; strict must reject it,
        // and even relaxed rejects a half-applied transaction.
        let mut m = mc();
        let a = m.map().data_base();
        let b = Addr::new(a.as_u64() + 8);
        let mut o = Oracle::new();
        o.begin(key(0));
        o.record_write(key(0), a, 1);
        o.record_write(key(0), b, 2);
        o.mark_committed(key(0));
        let report = RecoveryReport {
            undone: vec![key(0)],
            torn_records: 1,
            ..Default::default()
        };
        assert!(
            o.verify(&m, &report, false).is_ok(),
            "demotion is a valid shorter prefix"
        );
        assert!(
            o.verify(&m, &report, true).is_err(),
            "strict durability still fails"
        );
        set_word(&mut m, a, 1); // half the tx leaked through: never acceptable
        assert!(o.verify(&m, &report, false).is_err());
    }

    #[test]
    fn initial_image_is_the_baseline() {
        let mut m = mc();
        let a = m.map().data_base();
        let mut o = Oracle::new();
        o.record_initial(&[(a, 77)]);
        o.begin(key(0));
        o.record_write(key(0), a, 78);
        // Uncommitted: the initial value must remain.
        set_word(&mut m, a, 77);
        assert!(o.verify(&m, &RecoveryReport::default(), true).is_ok());
    }
}
