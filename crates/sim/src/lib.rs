//! The full-system simulator: in-order cores replaying workload traces over
//! the cache hierarchy, the log controller and the FRFCFS-WQF memory
//! controller — the role Gem5 + NVMain play in the paper's methodology
//! (§VI-A), built from scratch.
//!
//! * [`system`] — the [`system::System`]: construction for each of the six
//!   evaluated designs, the cycle engine, commit handling, crash injection
//!   and recovery.
//! * [`oracle`] — a transaction oracle recording every transactional
//!   write so crash/recovery tests can verify atomic persistence
//!   end-to-end.
//! * [`report`] — assembling [`morlog_sim_core::SimStats`] and the
//!   normalized metrics the paper's figures report.

#![deny(missing_docs)]

pub mod oracle;
pub mod report;
pub mod system;

pub use oracle::Oracle;
pub use report::RunReport;
pub use system::System;

// Sweep workers build and run whole `System`s on pool threads; this is the
// compile-time audit that a system (and everything it owns — controller,
// fault plan, oracle, stats) can move to / be shared by worker threads.
#[allow(dead_code)]
fn _system_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<System>();
    check::<RunReport>();
    check::<morlog_sim_core::SimStats>();
}
