//! End-to-end engine tests: every design runs every workload to completion,
//! recovery after a clean run is a no-op, and basic performance orderings
//! hold.

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn small_run(design: DesignKind, kind: WorkloadKind, txs: usize) -> morlog_sim_core::SimStats {
    let cfg = SystemConfig::for_design(design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = txs;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    let stats = sys.run();
    assert_eq!(
        stats.transactions_committed as usize,
        trace.total_transactions()
    );
    stats
}

#[test]
fn all_designs_complete_sps() {
    for design in DesignKind::ALL {
        let stats = small_run(design, WorkloadKind::Sps, 40);
        assert!(stats.cycles > 0, "{design}");
        assert!(stats.mem.nvmm_writes > 0, "{design} must write NVMM");
    }
}

#[test]
fn all_workloads_complete_under_morlog_slde() {
    for kind in WorkloadKind::ALL {
        let stats = small_run(DesignKind::MorLogSlde, kind, 60);
        assert!(stats.tx_stores > 0 || kind == WorkloadKind::Ycsb, "{kind}");
    }
}

#[test]
fn clean_run_recovery_is_consistent() {
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let cfg = SystemConfig::for_design(design);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 50;
        let trace = generate(WorkloadKind::Hash, &wl);
        let mut sys = System::new(cfg, &trace);
        sys.run();
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design}: {e}"));
    }
}

#[test]
fn morlog_writes_fewer_log_entries_than_fwb() {
    let fwb = small_run(DesignKind::FwbCrade, WorkloadKind::Tpcc, 80);
    let morlog = small_run(DesignKind::MorLogCrade, WorkloadKind::Tpcc, 80);
    assert!(
        morlog.log.entries_written < fwb.log.entries_written,
        "morlog {} vs fwb {}",
        morlog.log.entries_written,
        fwb.log.entries_written
    );
}

#[test]
fn slde_reduces_log_bits_vs_crade() {
    let crade = small_run(DesignKind::MorLogCrade, WorkloadKind::Sps, 60);
    let slde = small_run(DesignKind::MorLogSlde, WorkloadKind::Sps, 60);
    assert!(
        slde.mem.log_bits_programmed < crade.mem.log_bits_programmed,
        "slde {} vs crade {}",
        slde.mem.log_bits_programmed,
        crade.mem.log_bits_programmed
    );
}

#[test]
fn determinism_same_seed_same_stats() {
    let a = small_run(DesignKind::MorLogDp, WorkloadKind::Queue, 50);
    let b = small_run(DesignKind::MorLogDp, WorkloadKind::Queue, 50);
    assert_eq!(a, b);
}
