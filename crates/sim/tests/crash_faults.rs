//! End-to-end fault-injection tests: crashes under an active [`FaultPlan`]
//! must leave a state hardened recovery can repair — every transaction
//! all-there or all-gone, survival a commit-order prefix — even when the
//! crash tears or bit-flips in-flight log slots.

use morlog_sim::System;
use morlog_sim_core::fault::FaultPlan;
use morlog_sim_core::stats::SimStats;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

/// Runs a workload under `plan`, crashes, recovers, verifies — and returns
/// how many faults the plan injected plus whether recovery saw damage.
fn crash_with_plan(
    design: DesignKind,
    kind: WorkloadKind,
    plan: FaultPlan,
    crash_cycle: u64,
    seed: u64,
) -> (u32, bool) {
    let label = plan.label();
    let cfg = SystemConfig::for_design(design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    wl.seed = seed;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.set_fault_plan(plan);
    sys.run_for(crash_cycle);
    sys.crash();
    let report = sys.recover();
    sys.verify_recovery(&report).unwrap_or_else(|e| {
        panic!("{design}/{kind} plan={label} crash@{crash_cycle} seed={seed}: {e}")
    });
    (sys.memory().fault_plan().injected(), report.saw_damage())
}

#[test]
fn torn_drains_recover_atomically_across_designs() {
    let mut injected_total = 0;
    for design in [
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
        DesignKind::FwbCrade,
    ] {
        for seed in 0..6 {
            let (injected, _) = crash_with_plan(
                design,
                WorkloadKind::Hash,
                FaultPlan::single_torn(seed),
                8_000 + seed * 2_777,
                seed + 1,
            );
            injected_total += injected;
        }
    }
    assert!(
        injected_total > 0,
        "the sweep must actually exercise torn drains"
    );
}

#[test]
fn crash_flips_are_caught_by_the_crc() {
    let mut injected_total = 0;
    let mut damage_seen = false;
    for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
        for seed in 0..6 {
            let (injected, damaged) = crash_with_plan(
                design,
                WorkloadKind::Tpcc,
                FaultPlan::single_crash_flip(seed),
                6_000 + seed * 3_331,
                seed + 2,
            );
            injected_total += injected;
            damage_seen |= damaged;
        }
    }
    assert!(injected_total > 0, "the sweep must actually inject flips");
    assert!(
        damage_seen,
        "an injected flip must surface as a classified record"
    );
}

#[test]
fn fault_storms_never_break_atomicity() {
    for design in [
        DesignKind::FwbSlde,
        DesignKind::MorLogCrade,
        DesignKind::MorLogDp,
    ] {
        for seed in 0..4 {
            crash_with_plan(
                design,
                WorkloadKind::BTree,
                FaultPlan::storm(seed, 4),
                10_000 + seed * 1_999,
                seed + 3,
            );
        }
    }
}

#[test]
fn worn_slots_are_remapped_and_stay_recoverable() {
    // A tiny ring truncated aggressively (fast FWB) wraps constantly, so
    // physical slots are reused, wear accumulates and the endurance limit
    // trips: write-verify must remap the stuck slots to spares without
    // ever leaving damage for recovery to find.
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.mem.log_region_bytes = 4096;
    cfg.hierarchy.force_write_back_period = 4_000;
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 400;
    wl.seed = 17;
    let trace = generate(WorkloadKind::Queue, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.set_fault_plan(FaultPlan::worn_slots(5, 3));
    sys.run_for(600_000);
    sys.crash();
    let report = sys.recover();
    sys.verify_recovery(&report)
        .unwrap_or_else(|e| panic!("worn slots: {e}"));
    let stats = sys.memory().stats();
    assert!(
        stats.stuck_slots_remapped > 0,
        "wear must trip the remap path"
    );
    assert_eq!(
        stats.write_verify_retries,
        stats.stuck_slots_remapped * u64::from(cfg_retry_budget()),
        "every stuck slot burns the whole retry budget"
    );
    assert_eq!(
        report.torn_records + report.corrupt_records,
        0,
        "repaired writes leave no damage"
    );
}

fn cfg_retry_budget() -> u32 {
    morlog_sim_core::MemConfig::default().write_retry_budget
}

#[test]
fn inert_plan_matches_the_faultless_baseline() {
    // FaultPlan::none() must be bit-identical to not installing a plan:
    // the payload tracking, gating and verify paths all switch off.
    let run = |with_plan: bool| -> SimStats {
        let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 30;
        let trace = generate(WorkloadKind::Sps, &wl);
        let mut sys = System::new(cfg, &trace);
        if with_plan {
            sys.set_fault_plan(FaultPlan::none());
        }
        sys.run()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn fault_sweeps_are_deterministic() {
    let go = || {
        let cfg = SystemConfig::for_design(DesignKind::MorLogDp);
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 40;
        wl.seed = 9;
        let trace = generate(WorkloadKind::Hash, &wl);
        let mut sys = System::new(cfg, &trace);
        sys.set_fault_plan(FaultPlan::storm(21, 3));
        sys.run_for(14_000);
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report).expect("storm run verifies");
        (report, *sys.memory().stats())
    };
    let (r1, s1) = go();
    let (r2, s2) = go();
    assert_eq!(r1, r2, "same seed, same plan: identical recovery outcome");
    assert_eq!(s1, s2);
}
