//! Crash-injection tests (Fig. 2 semantics): at arbitrary crash points,
//! after recovery every transaction must be all-there or all-gone, with
//! the surviving set consistent with commit order.

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn crash_at(design: DesignKind, kind: WorkloadKind, txs: usize, crash_cycle: u64, seed: u64) {
    let cfg = SystemConfig::for_design(design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = txs;
    wl.seed = seed;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    let finished = sys.run_for(crash_cycle);
    sys.crash();
    let report = sys.recover();
    sys.verify_recovery(&report).unwrap_or_else(|e| {
        panic!("{design}/{kind} crash@{crash_cycle} (finished={finished}): {e}")
    });
}

#[test]
fn fwb_crade_crashes_at_many_points() {
    for crash in [500, 2_000, 5_000, 12_000, 30_000, 80_000, 200_000] {
        crash_at(DesignKind::FwbCrade, WorkloadKind::Hash, 60, crash, 1);
    }
}

#[test]
fn morlog_slde_crashes_at_many_points() {
    for crash in [500, 2_000, 5_000, 12_000, 30_000, 80_000, 200_000] {
        crash_at(DesignKind::MorLogSlde, WorkloadKind::Hash, 60, crash, 2);
    }
}

#[test]
fn morlog_dp_crashes_at_many_points() {
    for crash in [500, 2_000, 5_000, 12_000, 30_000, 80_000, 200_000] {
        crash_at(DesignKind::MorLogDp, WorkloadKind::Hash, 60, crash, 3);
    }
}

#[test]
fn crash_sweep_across_workloads() {
    for kind in [
        WorkloadKind::BTree,
        WorkloadKind::Queue,
        WorkloadKind::Tpcc,
        WorkloadKind::Sps,
    ] {
        for design in [
            DesignKind::FwbSlde,
            DesignKind::MorLogCrade,
            DesignKind::MorLogDp,
        ] {
            for crash in [1_000, 10_000, 60_000] {
                crash_at(design, kind, 40, crash, 7);
            }
        }
    }
}

#[test]
fn dense_crash_sweep_morlog_dp_tpcc() {
    // TPCC has the most intra-transaction structure; sweep densely.
    for i in 0..40 {
        crash_at(
            DesignKind::MorLogDp,
            WorkloadKind::Tpcc,
            30,
            800 + i * 977,
            11,
        );
    }
}

#[test]
fn dense_crash_sweep_morlog_slde_rbtree() {
    for i in 0..40 {
        crash_at(
            DesignKind::MorLogSlde,
            WorkloadKind::RBTree,
            30,
            600 + i * 1033,
            13,
        );
    }
}

#[test]
fn crash_after_truncation_scans() {
    // Shrink the force-write-back period so scans and log truncation run
    // during the test; recovery must stay consistent with entries gone.
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.hierarchy.force_write_back_period = 15_000;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 120;
        wl.seed = 21;
        let trace = generate(WorkloadKind::Tpcc, &wl);
        let mut sys = System::new(cfg, &trace);
        for crash in [40_000u64, 70_000, 100_000] {
            // Run in stages so several scans elapse before the crash.
            if sys.run_for(crash.saturating_sub(sys.now())) {
                break;
            }
        }
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design} with truncation: {e}"));
    }
}

#[test]
fn crash_with_tiny_caches_exercises_evictions() {
    // A tiny hierarchy forces constant L1/LLC evictions mid-transaction:
    // the hardest path for the redo-discard and write-ahead rules.
    for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.hierarchy.l1.capacity_bytes = 1024;
        cfg.hierarchy.l1.ways = 2;
        cfg.hierarchy.l2.capacity_bytes = 2048;
        cfg.hierarchy.l2.ways = 2;
        cfg.hierarchy.l3.capacity_bytes = 4096;
        cfg.hierarchy.l3.ways = 2;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 60;
        wl.seed = 31;
        let trace = generate(WorkloadKind::BTree, &wl);
        let mut sys = System::new(cfg, &trace);
        sys.run_for(25_000);
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design} tiny caches: {e}"));
    }
}

#[test]
fn distributed_logs_crash_recovery() {
    // §III-F distributed (per-thread) logs: commit order comes from the
    // timestamps in the commit records instead of the central ring order.
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.mem.log_slices = 4;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = 2;
        wl.total_transactions = 60;
        wl.seed = 77;
        let trace = generate(WorkloadKind::Tpcc, &wl);
        let mut sys = System::new(cfg, &trace);
        for crash in [3_000u64, 15_000, 50_000] {
            if sys.run_for(crash.saturating_sub(sys.now())) {
                break;
            }
        }
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design} distributed logs: {e}"));
    }
}

#[test]
fn distributed_logs_complete_runs_match_centralized_effects() {
    // Same workload, centralized vs distributed logs: both must commit all
    // transactions and leave identical persistent data after a clean run.
    let mut central_cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    central_cfg.mem.log_slices = 1;
    let mut dist_cfg = central_cfg.clone();
    dist_cfg.mem.log_slices = 8;
    let mut wl = WorkloadConfig::test_config(System::data_base(&central_cfg));
    wl.threads = 2;
    wl.total_transactions = 40;
    let trace = generate(WorkloadKind::Hash, &wl);
    let a = System::new(central_cfg, &trace).run();
    let b = System::new(dist_cfg, &trace).run();
    assert_eq!(a.transactions_committed, b.transactions_committed);
    assert_eq!(a.tx_stores, b.tx_stores);
}

#[test]
fn new_profiling_workloads_survive_crashes() {
    for kind in [WorkloadKind::Vacation, WorkloadKind::Ctree] {
        for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
            crash_at(design, kind, 40, 20_000, 5);
            crash_at(design, kind, 40, 60_000, 5);
        }
    }
}

#[test]
fn transaction_table_truncation_is_crash_safe() {
    use morlog_sim_core::config::TruncationPolicy;
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.log.truncation = TruncationPolicy::TransactionTable;
        cfg.hierarchy.force_write_back_period = 15_000; // persist data often
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 120;
        wl.seed = 51;
        let trace = generate(WorkloadKind::Tpcc, &wl);
        let mut sys = System::new(cfg, &trace);
        for crash in [40_000u64, 80_000, 120_000] {
            if sys.run_for(crash.saturating_sub(sys.now())) {
                break;
            }
        }
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design} with transaction-table truncation: {e}"));
    }
}

#[test]
fn transaction_table_truncates_earlier_than_fwb_horizon() {
    use morlog_sim_core::config::TruncationPolicy;
    let mk = |policy: TruncationPolicy| {
        let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
        cfg.log.truncation = policy;
        cfg.hierarchy.force_write_back_period = 10_000;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.total_transactions = 150;
        let trace = generate(WorkloadKind::Queue, &wl);
        let mut sys = System::new(cfg, &trace);
        sys.run_for(120_000);
        sys.memory().log_region().used_bytes()
    };
    let fwb_used = mk(TruncationPolicy::ForceWriteBack);
    let table_used = mk(TruncationPolicy::TransactionTable);
    assert!(
        table_used <= fwb_used,
        "table truncation frees the ring at least as aggressively ({table_used} vs {fwb_used})"
    );
}

#[test]
fn cache_workloads_survive_crashes() {
    for kind in [WorkloadKind::Redis, WorkloadKind::Memcached] {
        for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
            crash_at(design, kind, 40, 25_000, 9);
        }
    }
}
