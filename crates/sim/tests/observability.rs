//! Observability-layer tests: the cycle-attribution invariant, trace
//! capture, tracing non-interference, and the fig. 16 log-slice-sharing
//! regression (16 threads on 4 slices).

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SimStats, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn run_with(cfg: SystemConfig, kind: WorkloadKind, txs: usize, threads: usize) -> SimStats {
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = txs;
    wl.threads = threads;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run()
}

/// The profiler's invariant: for every design × workload pair the
/// `quick_check` harness can run, each core contributes exactly one unit
/// per execution cycle to exactly one attribution account, so the
/// accounts sum to `cycles × threads`.
#[test]
fn attribution_accounts_sum_to_core_cycles_for_every_design_and_workload() {
    for design in DesignKind::ALL {
        for kind in [
            WorkloadKind::Hash,
            WorkloadKind::Sps,
            WorkloadKind::Queue,
            WorkloadKind::BTree,
        ] {
            let cfg = SystemConfig::for_design(design);
            let stats = run_with(cfg, kind, 40, 2);
            assert_eq!(
                stats.attr.total(),
                stats.cycles * 2,
                "{design} × {kind}: accounts {:?} must sum to cycles {} × 2 threads",
                stats.attr,
                stats.cycles,
            );
            assert!(
                stats.attr.busy > 0,
                "{design} × {kind}: a completed run issued instructions"
            );
        }
    }
}

/// Enabling the trace sink must not perturb the simulation: the same
/// run with tracing on and off produces identical statistics (events are
/// recorded on the side; nothing reads them back into timing decisions).
#[test]
fn tracing_does_not_perturb_simulation() {
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let base = SystemConfig::for_design(design);
        let mut traced = base.clone();
        traced.trace.enabled = true;
        let off = run_with(base, WorkloadKind::Hash, 60, 2);
        let on = run_with(traced, WorkloadKind::Hash, 60, 2);
        assert_eq!(off, on, "{design}: traced run diverged from untraced");
    }
}

/// A traced run actually captures events from every layer that commits
/// transactions: log appends, write-queue accepts and commit phases.
#[test]
fn traced_run_captures_events() {
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.trace.enabled = true;
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 30;
    let trace = generate(WorkloadKind::Hash, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run();
    let tracer = sys.tracer();
    assert!(tracer.is_enabled());
    let records = tracer.records();
    assert!(!records.is_empty(), "a committing run must emit events");
    let jsonl = tracer.to_jsonl();
    for needle in ["\"log_append\"", "\"wq_accept\"", "\"commit_phase\""] {
        assert!(jsonl.contains(needle), "missing {needle} in trace dump");
    }
    // Every line is an object with a cycle and an event tag.
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"cycle\":"), "bad line {line:?}");
        assert!(line.contains("\"event\":\""), "bad line {line:?}");
    }
}

/// Fig. 16 regression: 16 threads over 4 log slices (the
/// `thread.index() % slices` mapping shares each slice between 4
/// threads). Interleaved appends are safe because the single simulated
/// engine serializes appends within a cycle and commit records carry
/// global timestamps, so recovery orders commits across slices — this
/// test pins that end-to-end: full completion, then crash + recovery
/// consistency in the shared-slice regime.
#[test]
fn sixteen_threads_share_four_log_slices_safely() {
    for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.cores.cores = 16;
        cfg.mem.log_slices = 4;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = 16;
        wl.total_transactions = 160;
        let trace = generate(WorkloadKind::Hash, &wl);
        let mut sys = System::new(cfg, &trace);
        let stats = sys.run();
        assert_eq!(
            stats.transactions_committed as usize,
            trace.total_transactions(),
            "{design}: every transaction must commit with shared slices"
        );
        assert_eq!(stats.attr.total(), stats.cycles * 16, "{design}");
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design}: {e}"));
    }
}
