//! Observability-layer tests: the cycle-attribution invariant, trace
//! capture, tracing non-interference, and the fig. 16 log-slice-sharing
//! regression (16 threads on 4 slices).

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SimStats, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn run_with(cfg: SystemConfig, kind: WorkloadKind, txs: usize, threads: usize) -> SimStats {
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = txs;
    wl.threads = threads;
    let trace = generate(kind, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run()
}

/// The profiler's invariant: for every design × workload pair the
/// `quick_check` harness can run, each core contributes exactly one unit
/// per execution cycle to exactly one attribution account, so the
/// accounts sum to `cycles × threads`.
#[test]
fn attribution_accounts_sum_to_core_cycles_for_every_design_and_workload() {
    for design in DesignKind::ALL {
        for kind in [
            WorkloadKind::Hash,
            WorkloadKind::Sps,
            WorkloadKind::Queue,
            WorkloadKind::BTree,
        ] {
            let cfg = SystemConfig::for_design(design);
            let stats = run_with(cfg, kind, 40, 2);
            assert_eq!(
                stats.attr.total(),
                stats.cycles * 2,
                "{design} × {kind}: accounts {:?} must sum to cycles {} × 2 threads",
                stats.attr,
                stats.cycles,
            );
            assert!(
                stats.attr.busy > 0,
                "{design} × {kind}: a completed run issued instructions"
            );
        }
    }
}

/// Enabling the trace sink must not perturb the simulation: the same
/// run with tracing on and off produces identical statistics (events are
/// recorded on the side; nothing reads them back into timing decisions).
#[test]
fn tracing_does_not_perturb_simulation() {
    for design in [
        DesignKind::FwbCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ] {
        let base = SystemConfig::for_design(design);
        let mut traced = base.clone();
        traced.trace.enabled = true;
        let off = run_with(base, WorkloadKind::Hash, 60, 2);
        let on = run_with(traced, WorkloadKind::Hash, 60, 2);
        assert_eq!(off, on, "{design}: traced run diverged from untraced");
    }
}

/// A traced run actually captures events from every layer that commits
/// transactions: log appends, write-queue accepts and commit phases.
#[test]
fn traced_run_captures_events() {
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.trace.enabled = true;
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 30;
    let trace = generate(WorkloadKind::Hash, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run();
    let tracer = sys.tracer();
    assert!(tracer.is_enabled());
    let records = tracer.records();
    assert!(!records.is_empty(), "a committing run must emit events");
    let jsonl = tracer.to_jsonl();
    for needle in ["\"log_append\"", "\"wq_accept\"", "\"commit_phase\""] {
        assert!(jsonl.contains(needle), "missing {needle} in trace dump");
    }
    // Every line is an object with a cycle and an event tag.
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"cycle\":"), "bad line {line:?}");
        assert!(line.contains("\"event\":\""), "bad line {line:?}");
    }
}

/// Every design's commit-latency histograms account for exactly the
/// committed transactions: the Begin→Complete histogram has one sample
/// per commit, and no phase histogram invents extra samples.
#[test]
fn commit_latency_counts_match_committed_transactions() {
    for design in DesignKind::ALL {
        let cfg = SystemConfig::for_design(design);
        let stats = run_with(cfg, WorkloadKind::Hash, 60, 2);
        let c = &stats.metrics.commit;
        assert_eq!(
            c.begin_to_complete.count(),
            stats.transactions_committed,
            "{design}: one Begin→Complete sample per committed transaction"
        );
        assert_eq!(c.begin_to_start.count(), stats.transactions_committed);
        assert_eq!(c.begin_to_persist.count(), stats.transactions_committed);
        if design.delay_persistence() {
            assert_eq!(
                c.dp_persist_lag.count(),
                stats.transactions_committed,
                "{design}: every DP commit carries a persistence-lag sample"
            );
        } else {
            assert!(
                c.dp_persist_lag.is_empty(),
                "{design}: sync designs have no persistence lag"
            );
        }
    }
}

/// The §III-C story as two numbers: under delay-persistence the commit
/// completes (atomicity point) before the commit record persists, so
/// Begin→Complete sits at or below Begin→RecordPersisted and the lag
/// histogram is strictly positive in aggregate. Sync designs order the
/// phases the other way around.
#[test]
fn delay_persistence_decouples_complete_from_persist() {
    let dp = run_with(
        SystemConfig::for_design(DesignKind::MorLogDp),
        WorkloadKind::Hash,
        60,
        2,
    );
    let c = &dp.metrics.commit;
    assert!(c.begin_to_complete.sum() <= c.begin_to_persist.sum());
    assert!(
        c.dp_persist_lag.sum() > 0,
        "DP must show a nonzero aggregate persistence lag"
    );
    assert!(c.begin_to_complete.p50() <= c.begin_to_persist.p50());

    let sync = run_with(
        SystemConfig::for_design(DesignKind::MorLogSlde),
        WorkloadKind::Hash,
        60,
        2,
    );
    let s = &sync.metrics.commit;
    assert!(
        s.begin_to_persist.sum() <= s.begin_to_complete.sum(),
        "sync commit completes only after the record persists"
    );
}

/// The cycle-driven sampler produces aligned, monotone series at the
/// configured period, and disabling it (period 0) produces none.
#[test]
fn sampler_emits_aligned_monotone_series() {
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.metrics.sample_cycles = 64;
    let stats = run_with(cfg, WorkloadKind::Hash, 60, 2);
    let series = &stats.metrics.series;
    assert_eq!(series.period, 64);
    let named = series.named();
    let len = named[0].1.len();
    assert!(len > 1, "a multi-thousand-cycle run must sample repeatedly");
    for (name, s) in named {
        assert_eq!(s.len(), len, "series {name} must align with the others");
        assert_eq!(s.cycles.len(), s.values.len(), "{name}");
        for pair in s.cycles.windows(2) {
            assert!(pair[0] < pair[1], "{name}: cycles must increase");
        }
        for &cycle in &s.cycles {
            assert_eq!(cycle % 64, 0, "{name}: samples land on period marks");
        }
    }

    let mut off = SystemConfig::for_design(DesignKind::MorLogSlde);
    off.metrics.sample_cycles = 0;
    let stats = run_with(off, WorkloadKind::Hash, 60, 2);
    assert!(
        stats
            .metrics
            .series
            .named()
            .iter()
            .all(|(_, s)| s.is_empty()),
        "period 0 disables the sampler"
    );
}

/// Per-kind log-entry-size histograms tie out exactly against the log
/// counters: commit-record samples equal `commit_records`, and
/// undo-redo + redo samples equal `entries_written`. SLDE designs also
/// report which encoder won each log write.
#[test]
fn log_write_metrics_tie_out_against_log_counters() {
    for design in [DesignKind::MorLogCrade, DesignKind::MorLogSlde] {
        let cfg = SystemConfig::for_design(design);
        let stats = run_with(cfg, WorkloadKind::Hash, 60, 2);
        let lw = &stats.metrics.log_writes;
        assert_eq!(
            lw.entry_bits[2].count(),
            stats.log.commit_records,
            "{design}: one size sample per commit record"
        );
        assert_eq!(
            lw.entry_bits[0].count() + lw.entry_bits[1].count(),
            stats.log.entries_written,
            "{design}: one size sample per data log entry"
        );
        assert!(
            lw.entry_bits[2].max() > 0,
            "{design}: commit records program a nonzero number of bits"
        );
    }
    let slde = run_with(
        SystemConfig::for_design(DesignKind::MorLogSlde),
        WorkloadKind::Hash,
        60,
        2,
    );
    assert!(
        slde.metrics.log_writes.encoder_choices.iter().sum::<u64>() > 0,
        "SLDE runs must record encoder choices"
    );
}

/// Fig. 16 regression: 16 threads over 4 log slices (the
/// `thread.index() % slices` mapping shares each slice between 4
/// threads). Interleaved appends are safe because the single simulated
/// engine serializes appends within a cycle and commit records carry
/// global timestamps, so recovery orders commits across slices — this
/// test pins that end-to-end: full completion, then crash + recovery
/// consistency in the shared-slice regime.
#[test]
fn sixteen_threads_share_four_log_slices_safely() {
    for design in [DesignKind::MorLogSlde, DesignKind::MorLogDp] {
        let mut cfg = SystemConfig::for_design(design);
        cfg.cores.cores = 16;
        cfg.mem.log_slices = 4;
        let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
        wl.threads = 16;
        wl.total_transactions = 160;
        let trace = generate(WorkloadKind::Hash, &wl);
        let mut sys = System::new(cfg, &trace);
        let stats = sys.run();
        assert_eq!(
            stats.transactions_committed as usize,
            trace.total_transactions(),
            "{design}: every transaction must commit with shared slices"
        );
        assert_eq!(stats.attr.total(), stats.cycles * 16, "{design}");
        sys.crash();
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("{design}: {e}"));
    }
}
