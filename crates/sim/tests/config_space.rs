//! Configuration-space smoke tests: unusual but legal configurations must
//! run to completion and stay crash-consistent.

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

fn run_with(mut tweak: impl FnMut(&mut SystemConfig), design: DesignKind) {
    let mut cfg = SystemConfig::for_design(design);
    tweak(&mut cfg);
    cfg.validate().expect("tweaked config stays valid");
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    wl.threads = wl.threads.min(cfg.cores.cores);
    let trace = generate(WorkloadKind::Tpcc, &wl);
    let mut sys = System::new(cfg, &trace);
    let stats = sys.run();
    assert_eq!(stats.transactions_committed, 40);
}

#[test]
fn single_core_single_channel() {
    run_with(
        |c| {
            c.cores.cores = 1;
            c.mem.channels = 1;
            c.mem.banks = 1;
        },
        DesignKind::MorLogSlde,
    );
}

#[test]
fn tiny_write_queue() {
    run_with(|c| c.mem.write_queue_entries = 2, DesignKind::MorLogDp);
}

#[test]
fn one_entry_buffers() {
    run_with(
        |c| {
            c.log.undo_redo_entries = 1;
            c.log.redo_entries = 1;
        },
        DesignKind::MorLogSlde,
    );
}

#[test]
fn minimal_eviction_window() {
    run_with(|c| c.log.eager_evict_cycles = 1, DesignKind::MorLogCrade);
}

#[test]
fn slow_cells_32x() {
    run_with(|c| c.mem.write_latency_scale = 32.0, DesignKind::FwbCrade);
}

#[test]
fn many_log_slices() {
    run_with(|c| c.mem.log_slices = 16, DesignKind::MorLogDp);
}

#[test]
fn invalid_configs_are_rejected() {
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.log.eager_evict_cycles = 1_000;
    assert!(cfg.validate().is_err());
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.mem.log_slices = 0;
    assert!(cfg.validate().is_err());
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.mem.write_latency_scale = -1.0;
    assert!(cfg.validate().is_err());
}

#[test]
fn crash_under_tiny_write_queue() {
    let mut cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    cfg.mem.write_queue_entries = 2;
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    let trace = generate(WorkloadKind::Queue, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run_for(15_000);
    sys.crash();
    let report = sys.recover();
    sys.verify_recovery(&report).unwrap();
}
