//! Double-crash tests: power fails again in the middle of recovery's
//! replay, and a second (complete) recovery pass must still converge to
//! a verifiable state. Recovery writes absolute values from log records
//! and only truncates the ring after a full pass, so an interrupted pass
//! is idempotent — re-running it from scratch revisits every record.

use morlog_sim::System;
use morlog_sim_core::{DesignKind, SystemConfig};
use morlog_workloads::{generate, WorkloadConfig, WorkloadKind};

/// Crashes `design` mid-run, interrupts the first recovery pass after
/// `budget` replay writes, then recovers fully and verifies.
fn crash_recover_crash_recover(design: DesignKind, crash_cycle: u64, budget: usize) {
    let cfg = SystemConfig::for_design(design);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 40;
    wl.seed = 11;
    let trace = generate(WorkloadKind::Hash, &wl);
    let mut sys = System::new(cfg, &trace);
    sys.run_for(crash_cycle);
    sys.crash();
    let first = sys.recover_interrupted(budget);
    if first.interrupted {
        // The second power loss wipes volatile state again; the log ring
        // survived the aborted pass.
        sys.crash();
    }
    let report = sys.recover();
    assert!(!report.interrupted);
    sys.verify_recovery(&report).unwrap_or_else(|e| {
        panic!("{design} crash@{crash_cycle} + recovery crash after {budget} writes: {e}")
    });
}

#[test]
fn morlog_slde_survives_a_crash_during_recovery() {
    for crash in [2_000, 12_000, 60_000] {
        for budget in [0, 1, 3, 9, 40] {
            crash_recover_crash_recover(DesignKind::MorLogSlde, crash, budget);
        }
    }
}

#[test]
fn morlog_dp_survives_a_crash_during_recovery() {
    for crash in [2_000, 12_000, 60_000] {
        for budget in [0, 1, 3, 9, 40] {
            crash_recover_crash_recover(DesignKind::MorLogDp, crash, budget);
        }
    }
}

#[test]
fn interrupted_recovery_is_observable_and_bounded() {
    // At least one (crash, budget) pair must actually interrupt — the
    // test above would be vacuous if every budget covered the whole
    // replay. Mid-run crash points of a multi-transaction workload
    // guarantee live records for the replay to spend writes on.
    let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
    let mut wl = WorkloadConfig::test_config(System::data_base(&cfg));
    wl.total_transactions = 24;
    wl.seed = 5;
    let trace = generate(WorkloadKind::Hash, &wl);
    let mut sys = System::new(cfg.clone(), &trace);
    sys.enable_persist_hash();
    sys.run();
    let events = sys.persist_hash_samples().len() as u64;
    let mut interrupted_once = false;
    for point in [events / 3, events / 2, 2 * events / 3] {
        let mut sys = System::new(cfg.clone(), &trace);
        sys.arm_crash_at(point);
        sys.run_until_crash_point();
        sys.crash();
        let first = sys.recover_interrupted(0);
        interrupted_once |= first.interrupted;
        if first.interrupted {
            sys.crash();
        }
        let report = sys.recover();
        sys.verify_recovery(&report)
            .unwrap_or_else(|e| panic!("double crash at point {point}: {e}"));
    }
    assert!(
        interrupted_once,
        "a zero-write budget must interrupt at least one mid-run recovery"
    );
}
