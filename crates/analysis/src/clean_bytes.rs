//! Clean-byte profiling (Fig. 5).
//!
//! For every transactional store, the old and new values of the word are
//! compared byte by byte; bytes that do not change are *clean*. The paper
//! measures 70.5 % clean bytes on average, which motivates discarding clean
//! log data (§II-C, CONSEQUENCE 2).

use std::collections::HashMap;

use morlog_sim_core::types::dirty_byte_mask;
use morlog_workloads::trace::{Op, WorkloadTrace};

/// Clean/dirty byte counts over a workload's transactional stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanByteStats {
    /// Bytes whose value did not change.
    pub clean_bytes: u64,
    /// Bytes whose value changed.
    pub dirty_bytes: u64,
    /// Stores whose whole word was unchanged (silent stores).
    pub silent_stores: u64,
    /// Stores profiled.
    pub stores: u64,
}

impl CleanByteStats {
    /// Profiles a workload by replaying its stores over shadow memory
    /// (seeded from the trace's initial image).
    pub fn profile(trace: &WorkloadTrace) -> Self {
        let mut stats = CleanByteStats::default();
        for thread in &trace.threads {
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            for &(addr, value) in &thread.initial {
                shadow.insert(addr.word_base().as_u64(), value);
            }
            for tx in &thread.transactions {
                for op in &tx.ops {
                    if let Op::Store(addr, new) = op {
                        let word = addr.word_base().as_u64();
                        let old = shadow.get(&word).copied().unwrap_or(0);
                        let mask = dirty_byte_mask(old, *new);
                        let dirty = mask.count_ones() as u64;
                        stats.dirty_bytes += dirty;
                        stats.clean_bytes += 8 - dirty;
                        stats.stores += 1;
                        if mask == 0 {
                            stats.silent_stores += 1;
                        }
                        shadow.insert(word, *new);
                    }
                }
            }
        }
        stats
    }

    /// Fraction of updated-data bytes that are clean (Fig. 5's y-axis).
    pub fn clean_fraction(&self) -> f64 {
        let total = self.clean_bytes + self.dirty_bytes;
        if total == 0 {
            0.0
        } else {
            self.clean_bytes as f64 / total as f64
        }
    }

    /// Fraction of stores that change nothing at all.
    pub fn silent_fraction(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.silent_stores as f64 / self.stores as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::Addr;
    use morlog_workloads::trace::{ThreadTrace, Transaction};

    fn trace_of(stores: Vec<(u64, u64)>, initial: Vec<(u64, u64)>) -> WorkloadTrace {
        WorkloadTrace {
            name: "t".into(),
            threads: vec![ThreadTrace {
                transactions: vec![Transaction {
                    ops: stores
                        .into_iter()
                        .map(|(a, v)| Op::Store(Addr::new(a), v))
                        .collect(),
                }],
                initial: initial
                    .into_iter()
                    .map(|(a, v)| (Addr::new(a), v))
                    .collect(),
            }],
        }
    }

    #[test]
    fn counts_clean_and_dirty() {
        // Initial 0 -> store 0xFF: 1 dirty, 7 clean.
        let s = CleanByteStats::profile(&trace_of(vec![(0, 0xFF)], vec![]));
        assert_eq!(s.dirty_bytes, 1);
        assert_eq!(s.clean_bytes, 7);
        assert!((s.clean_fraction() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn silent_store_detected() {
        let s = CleanByteStats::profile(&trace_of(vec![(0, 7), (0, 7)], vec![]));
        assert_eq!(s.silent_stores, 1);
        assert!((s.silent_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn initial_image_seeds_old_values() {
        // Initial value 0x11AA; store 0x11AB changes only the low byte.
        let s = CleanByteStats::profile(&trace_of(vec![(8, 0x11AB)], vec![(8, 0x11AA)]));
        assert_eq!(s.dirty_bytes, 1);
        assert_eq!(s.clean_bytes, 7);
    }

    #[test]
    fn sequential_stores_compare_against_latest() {
        let s = CleanByteStats::profile(&trace_of(vec![(0, 0xFF), (0, 0xFE)], vec![]));
        // Second store: only byte 0 changed (0xFF -> 0xFE).
        assert_eq!(s.dirty_bytes, 2);
        assert_eq!(s.clean_bytes, 14);
    }

    #[test]
    fn empty_trace() {
        let s = CleanByteStats::profile(&trace_of(vec![], vec![]));
        assert_eq!(s.clean_fraction(), 0.0);
        assert_eq!(s.silent_fraction(), 0.0);
    }
}
