//! Write-distance profiling (Fig. 3).
//!
//! The *write distance* of a store is the number of stores between it and
//! the previous store to the same (word) address within the transaction
//! region of execution; the first store to an address is the "First Write"
//! bucket. The paper's Fig. 3 buckets distances into 0-1, 2-3, 4-7, 8-15,
//! 16-31, 32-63, 64-127 and ≥128; 44.8 % of non-first writes land above 31,
//! which is what motivates buffering redo data in the L1 (§II-B).

use std::collections::HashMap;

use morlog_workloads::trace::{Op, WorkloadTrace};

/// The Fig. 3 histogram buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceBucket {
    /// First store to this address.
    FirstWrite,
    /// 0–1 stores in between.
    D0To1,
    /// 2–3 stores in between.
    D2To3,
    /// 4–7 stores in between.
    D4To7,
    /// 8–15 stores in between.
    D8To15,
    /// 16–31 stores in between.
    D16To31,
    /// 32–63 stores in between.
    D32To63,
    /// 64–127 stores in between.
    D64To127,
    /// 128 or more stores in between.
    D128Plus,
}

impl DistanceBucket {
    /// All buckets in Fig. 3's legend order.
    pub const ALL: [DistanceBucket; 9] = [
        DistanceBucket::FirstWrite,
        DistanceBucket::D0To1,
        DistanceBucket::D2To3,
        DistanceBucket::D4To7,
        DistanceBucket::D8To15,
        DistanceBucket::D16To31,
        DistanceBucket::D32To63,
        DistanceBucket::D64To127,
        DistanceBucket::D128Plus,
    ];

    /// Buckets a distance (`None` = first write).
    pub fn of(distance: Option<u64>) -> DistanceBucket {
        match distance {
            None => DistanceBucket::FirstWrite,
            Some(d) if d <= 1 => DistanceBucket::D0To1,
            Some(d) if d <= 3 => DistanceBucket::D2To3,
            Some(d) if d <= 7 => DistanceBucket::D4To7,
            Some(d) if d <= 15 => DistanceBucket::D8To15,
            Some(d) if d <= 31 => DistanceBucket::D16To31,
            Some(d) if d <= 63 => DistanceBucket::D32To63,
            Some(d) if d <= 127 => DistanceBucket::D64To127,
            Some(_) => DistanceBucket::D128Plus,
        }
    }

    /// The Fig. 3 legend label.
    pub fn label(self) -> &'static str {
        match self {
            DistanceBucket::FirstWrite => "First Write",
            DistanceBucket::D0To1 => "0-1",
            DistanceBucket::D2To3 => "2-3",
            DistanceBucket::D4To7 => "4-7",
            DistanceBucket::D8To15 => "8-15",
            DistanceBucket::D16To31 => "16-31",
            DistanceBucket::D32To63 => "32-63",
            DistanceBucket::D64To127 => "64-127",
            DistanceBucket::D128Plus => ">=128",
        }
    }
}

/// The write-distance histogram of one workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteDistanceHistogram {
    counts: [u64; 9],
    total: u64,
}

impl WriteDistanceHistogram {
    /// Profiles a workload trace. Distances are measured per thread (each
    /// hardware thread sees its own store stream, as PIN does) and reset at
    /// transaction boundaries: Fig. 3 defines the distance "within the
    /// transaction region of execution", so the first store of a new
    /// transaction to an address the previous transaction also wrote is a
    /// First Write, not a repeat (log entries do not survive commit, which
    /// is why cross-transaction locality cannot be coalesced).
    pub fn profile(trace: &WorkloadTrace) -> Self {
        let mut hist = WriteDistanceHistogram::default();
        for thread in &trace.threads {
            for tx in &thread.transactions {
                let mut last_store: HashMap<u64, u64> = HashMap::new();
                let mut store_idx: u64 = 0;
                for op in &tx.ops {
                    if let Op::Store(addr, _) = op {
                        let word = addr.word_base().as_u64();
                        let distance = last_store.get(&word).map(|&prev| store_idx - prev - 1);
                        hist.record(DistanceBucket::of(distance));
                        last_store.insert(word, store_idx);
                        store_idx += 1;
                    }
                }
            }
        }
        hist
    }

    fn record(&mut self, bucket: DistanceBucket) {
        let idx = DistanceBucket::ALL
            .iter()
            .position(|&b| b == bucket)
            .expect("known bucket");
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Fraction of stores in `bucket` (0 when the trace has no stores).
    pub fn fraction(&self, bucket: DistanceBucket) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = DistanceBucket::ALL
            .iter()
            .position(|&b| b == bucket)
            .expect("known bucket");
        self.counts[idx] as f64 / self.total as f64
    }

    /// Fraction of stores with distance > 31 among *non-first* writes —
    /// the paper's headline 44.8 % (§II-B measures the share of writes that
    /// a 32-entry log buffer cannot coalesce).
    pub fn fraction_beyond_31(&self) -> f64 {
        let far: u64 = [
            DistanceBucket::D32To63,
            DistanceBucket::D64To127,
            DistanceBucket::D128Plus,
        ]
        .iter()
        .map(|b| self.counts[DistanceBucket::ALL.iter().position(|x| x == b).unwrap()])
        .sum();
        let non_first = self.total - self.counts[0];
        if non_first == 0 {
            0.0
        } else {
            far as f64 / non_first as f64
        }
    }

    /// Fraction of stores that are re-writes (the paper's "83.1 % of data
    /// are updated more than once").
    pub fn fraction_repeat(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.counts[0]) as f64 / self.total as f64
    }

    /// Total stores profiled.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::Addr;
    use morlog_workloads::trace::{ThreadTrace, Transaction};

    fn trace_of(stores: &[u64]) -> WorkloadTrace {
        let ops = stores
            .iter()
            .map(|&a| Op::Store(Addr::new(a * 8), 1))
            .collect();
        WorkloadTrace {
            name: "t".into(),
            threads: vec![ThreadTrace {
                transactions: vec![Transaction { ops }],
                initial: Vec::new(),
            }],
        }
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(DistanceBucket::of(None), DistanceBucket::FirstWrite);
        assert_eq!(DistanceBucket::of(Some(0)), DistanceBucket::D0To1);
        assert_eq!(DistanceBucket::of(Some(1)), DistanceBucket::D0To1);
        assert_eq!(DistanceBucket::of(Some(2)), DistanceBucket::D2To3);
        assert_eq!(DistanceBucket::of(Some(31)), DistanceBucket::D16To31);
        assert_eq!(DistanceBucket::of(Some(32)), DistanceBucket::D32To63);
        assert_eq!(DistanceBucket::of(Some(128)), DistanceBucket::D128Plus);
    }

    #[test]
    fn distances_count_intervening_stores() {
        // Stores to words: A B A -> A's second store has distance 1.
        let h = WriteDistanceHistogram::profile(&trace_of(&[10, 11, 10]));
        assert_eq!(h.total(), 3);
        assert!((h.fraction(DistanceBucket::FirstWrite) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.fraction(DistanceBucket::D0To1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_stores_have_distance_zero() {
        let h = WriteDistanceHistogram::profile(&trace_of(&[5, 5]));
        assert!((h.fraction(DistanceBucket::D0To1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_repeat() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn far_fraction_over_non_first_writes() {
        // A, 40 different words, A again: distance 40 -> bucket 32-63.
        let mut seq = vec![0u64];
        seq.extend(1..=40);
        seq.push(0);
        let h = WriteDistanceHistogram::profile(&trace_of(&seq));
        assert!(
            (h.fraction_beyond_31() - 1.0).abs() < 1e-12,
            "the only repeat is far"
        );
    }

    #[test]
    fn distances_reset_at_transaction_boundaries() {
        // Two transactions on one thread, hand-computed:
        //   tx0: A B A   -> FirstWrite, FirstWrite, D0To1 (one store between)
        //   tx1: A C     -> FirstWrite (the map reset!), FirstWrite
        // Before the per-transaction reset, tx1's store to A was wrongly
        // bucketed as a distance-1 repeat of tx0's last store to A.
        let a = Addr::new(10 * 8);
        let b = Addr::new(11 * 8);
        let c = Addr::new(12 * 8);
        let trace = WorkloadTrace {
            name: "t".into(),
            threads: vec![ThreadTrace {
                transactions: vec![
                    Transaction {
                        ops: vec![Op::Store(a, 1), Op::Store(b, 1), Op::Store(a, 2)],
                    },
                    Transaction {
                        ops: vec![Op::Store(a, 3), Op::Store(c, 1)],
                    },
                ],
                initial: Vec::new(),
            }],
        };
        let h = WriteDistanceHistogram::profile(&trace);
        assert_eq!(h.total(), 5);
        assert!(
            (h.fraction(DistanceBucket::FirstWrite) - 4.0 / 5.0).abs() < 1e-12,
            "4 of 5 stores are first writes of their transaction"
        );
        assert!((h.fraction(DistanceBucket::D0To1) - 1.0 / 5.0).abs() < 1e-12);
        assert!((h.fraction_repeat() - 1.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zero() {
        let h = WriteDistanceHistogram::profile(&trace_of(&[]));
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_beyond_31(), 0.0);
        assert_eq!(h.fraction_repeat(), 0.0);
    }

    #[test]
    fn labels_nonempty() {
        for b in DistanceBucket::ALL {
            assert!(!b.label().is_empty());
        }
    }
}
