//! Offline profilers over workload traces, reproducing the paper's
//! motivation studies: the write-distance distribution (Fig. 3), the
//! clean-byte percentage among updated data (Fig. 5), and the DLDC pattern
//! coverage of dirty log data (Table II).
//!
//! The originals instrument WHISPER applications with PIN on a Xeon server;
//! here the same statistics are computed from the transactional store
//! streams of `morlog-workloads` (see `DESIGN.md` §2 for the substitution
//! argument).

#![deny(missing_docs)]

pub mod clean_bytes;
pub mod patterns;
pub mod write_distance;

pub use clean_bytes::CleanByteStats;
pub use patterns::PatternStats;
pub use write_distance::{DistanceBucket, WriteDistanceHistogram};
