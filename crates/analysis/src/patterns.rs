//! DLDC pattern-coverage profiling (Table II).
//!
//! For every *dirty* log word (a store whose value changed), the profiler
//! asks which Table II pattern DLDC would compress its dirty bytes with.
//! The paper reports that the eight patterns cumulatively cover ≈42.5 % of
//! dirty log data.

use std::collections::HashMap;

use morlog_encoding::dldc::{compress_dirty, DldcPattern};
use morlog_sim_core::types::dirty_byte_mask;
use morlog_workloads::trace::{Op, WorkloadTrace};

/// Per-pattern hit counts over a workload's dirty log words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternStats {
    counts: HashMap<DldcPattern, u64>,
    /// Dirty log words profiled (silent stores are excluded: they produce
    /// no log data at all under SLDE).
    pub dirty_words: u64,
}

impl PatternStats {
    /// Profiles a workload trace.
    pub fn profile(trace: &WorkloadTrace) -> Self {
        let mut stats = PatternStats::default();
        for thread in &trace.threads {
            let mut shadow: HashMap<u64, u64> = HashMap::new();
            for &(addr, value) in &thread.initial {
                shadow.insert(addr.word_base().as_u64(), value);
            }
            for tx in &thread.transactions {
                for op in &tx.ops {
                    if let Op::Store(addr, new) = op {
                        let word = addr.word_base().as_u64();
                        let old = shadow.get(&word).copied().unwrap_or(0);
                        shadow.insert(word, *new);
                        let mask = dirty_byte_mask(old, *new);
                        if mask == 0 {
                            continue;
                        }
                        let enc = compress_dirty(*new, mask).expect("mask nonzero");
                        *stats.counts.entry(enc.pattern).or_insert(0) += 1;
                        stats.dirty_words += 1;
                    }
                }
            }
        }
        stats
    }

    /// Fraction of dirty log words compressed with `pattern` (Table II's
    /// last column).
    pub fn fraction(&self, pattern: DldcPattern) -> f64 {
        if self.dirty_words == 0 {
            return 0.0;
        }
        self.counts.get(&pattern).copied().unwrap_or(0) as f64 / self.dirty_words as f64
    }

    /// Cumulative coverage of the eight Table II patterns (everything but
    /// the raw escape) — the paper's ≈42.5 %.
    pub fn pattern_coverage(&self) -> f64 {
        DldcPattern::TABLE_II
            .iter()
            .map(|&p| self.fraction(p))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::Addr;
    use morlog_workloads::trace::{ThreadTrace, Transaction};

    fn trace_of(stores: Vec<(u64, u64)>) -> WorkloadTrace {
        WorkloadTrace {
            name: "t".into(),
            threads: vec![ThreadTrace {
                transactions: vec![Transaction {
                    ops: stores
                        .into_iter()
                        .map(|(a, v)| Op::Store(Addr::new(a), v))
                        .collect(),
                }],
                initial: Vec::new(),
            }],
        }
    }

    #[test]
    fn classifies_patterns() {
        // 0 -> 0x10203040: dirty nibble-padded bytes.
        let s = PatternStats::profile(&trace_of(vec![(0, 0x1020_3040)]));
        assert_eq!(s.dirty_words, 1);
        assert!((s.fraction(DldcPattern::NibblePadded) - 1.0).abs() < 1e-12);
        assert!((s.pattern_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raw_words_are_outside_coverage() {
        let s = PatternStats::profile(&trace_of(vec![(0, 0xD3A1_57C2_9B64_E8F1)]));
        assert_eq!(s.dirty_words, 1);
        assert!((s.fraction(DldcPattern::Raw) - 1.0).abs() < 1e-12);
        assert_eq!(s.pattern_coverage(), 0.0);
    }

    #[test]
    fn silent_stores_excluded() {
        let s = PatternStats::profile(&trace_of(vec![(0, 5), (0, 5)]));
        assert_eq!(s.dirty_words, 1, "the repeat store is silent");
    }

    #[test]
    fn coverage_between_zero_and_one() {
        let cfg =
            morlog_workloads::WorkloadConfig::test_config(morlog_sim_core::Addr::new(0x1000_0000));
        let trace = morlog_workloads::generate(morlog_workloads::WorkloadKind::Tpcc, &cfg);
        let s = PatternStats::profile(&trace);
        assert!(s.dirty_words > 0);
        let c = s.pattern_coverage();
        assert!((0.0..=1.0).contains(&c), "coverage {c}");
    }
}
