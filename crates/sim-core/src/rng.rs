//! A small deterministic random-number generator.
//!
//! The whole evaluation must be reproducible (crash injection replays,
//! paper-figure regeneration), so every stochastic choice in the workspace
//! goes through [`DetRng`], a SplitMix64/xorshift* hybrid seeded explicitly.
//! We deliberately do not use `rand`'s thread RNG anywhere.

/// Deterministic 64-bit RNG (SplitMix64 state advance, xorshift-style
/// output mixing). Fast, tiny state, and good enough statistical quality for
/// workload generation.
///
/// # Example
///
/// ```
/// use morlog_sim_core::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire). Bias is negligible
        // for the bounds used in workloads (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    /// Splits off an independent generator (for per-thread streams).
    pub fn split(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Creates a generator for a keyed stream: the same `(seed, stream)`
    /// pair always yields the same sequence, and distinct stream keys yield
    /// independent sequences. Unlike [`split`](DetRng::split), the derived
    /// stream does not depend on draw order — fuzz campaigns key one stream
    /// per `(design, workload)` so per-campaign samples are stable however
    /// many campaigns a run interleaves.
    pub fn for_stream(seed: u64, stream: u64) -> DetRng {
        let mut keyed = DetRng::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn one output so `for_stream(s, 0)` differs from `new(s)`.
        keyed.next_u64();
        keyed
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = DetRng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = DetRng::new(1);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(2);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_honoured() {
        let mut r = DetRng::new(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn keyed_streams_are_stable_and_independent() {
        let a: Vec<u64> = {
            let mut r = DetRng::for_stream(9, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::for_stream(9, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same key, same stream");
        let c: Vec<u64> = {
            let mut r = DetRng::for_stream(9, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "stream key must steer the sequence");
        let d: Vec<u64> = {
            let mut r = DetRng::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(
            DetRng::for_stream(9, 0).next_u64(),
            d[0],
            "stream 0 is not the raw seed stream"
        );
    }

    #[test]
    fn split_streams_diverge() {
        let mut r = DetRng::new(4);
        let mut s1 = r.split();
        let mut s2 = r.split();
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).gen_range(0);
    }
}
