//! Persist-event classification shared between the memory controller's
//! reference-run recording and the crash checker's coverage/reduction
//! machinery.
//!
//! A checker reference run can record, alongside the persist-domain hash
//! samples, one [`PersistEventMeta`] entry per NVMM program acceptance
//! (plus interleaved truncation markers). The fuzz campaign buckets crash
//! points by `(event kind, progress phase)` to steer sampling toward
//! never-before-seen persist behaviour, and the partial-order reduction
//! replays the stream to decide which in-place data writes are pinned by
//! live log coverage (and therefore recovery-equivalent to their
//! predecessor point).

use crate::ids::TxKey;
use crate::types::Addr;

/// What kind of persist-domain program a persist event was. This is the
/// event-kind axis of the fuzz campaign's coverage buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistEventKind {
    /// An in-place data-line program (LLC write-back or FWB scan).
    DataLine,
    /// An undo+redo log-slot program (§III-A write-ahead records).
    UndoRedo,
    /// A redo-only log-slot program (§III-B coalesced redo).
    Redo,
    /// A commit-record program.
    Commit,
}

impl PersistEventKind {
    /// Every kind, in a stable order (coverage-map axis).
    pub const ALL: [PersistEventKind; 4] = [
        PersistEventKind::DataLine,
        PersistEventKind::UndoRedo,
        PersistEventKind::Redo,
        PersistEventKind::Commit,
    ];

    /// Stable label for reports and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            PersistEventKind::DataLine => "data_line",
            PersistEventKind::UndoRedo => "undo_redo",
            PersistEventKind::Redo => "redo",
            PersistEventKind::Commit => "commit",
        }
    }

    /// Dense index into [`PersistEventKind::ALL`].
    pub fn index(&self) -> usize {
        match self {
            PersistEventKind::DataLine => 0,
            PersistEventKind::UndoRedo => 1,
            PersistEventKind::Redo => 2,
            PersistEventKind::Commit => 3,
        }
    }
}

/// One entry of the reference run's persist-domain event stream.
///
/// `Data` and `Log` entries correspond one-to-one, in order, with persist
/// events (program acceptances); `Truncate` entries are interleaved where
/// log truncation ran between two acceptances. A consumer walking the
/// stream reconstructs the live-record set at any crash point by applying
/// `Log` insertions and `Truncate` deletions in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEventMeta {
    /// An in-place data-line program acceptance.
    Data {
        /// Line index (line base address / 64) of the programmed line.
        line: u64,
        /// Bitmask of words whose value changed (bit `i` = word `i` of the
        /// line). A zero mask is a silent rewrite.
        changed: u8,
    },
    /// A log-slot program acceptance.
    Log {
        /// Record kind (never [`PersistEventKind::DataLine`]).
        kind: PersistEventKind,
        /// Owning transaction.
        key: TxKey,
        /// Home word address of the logged data (commit records carry the
        /// placeholder address stored in the record).
        addr: Addr,
        /// Log slice holding the slot.
        slice: usize,
        /// Logical (monotone) byte offset of the slot within its slice —
        /// the record's identity for matching against `Truncate` entries.
        offset: u64,
    },
    /// Log records left the persist domain between two acceptances.
    Truncate {
        /// Slice the records were deleted from.
        slice: usize,
        /// Logical offsets of the deleted slots.
        offsets: Vec<u64>,
    },
}

impl PersistEventMeta {
    /// The event's coverage kind; `None` for truncation markers (which are
    /// not persist events).
    pub fn kind(&self) -> Option<PersistEventKind> {
        match self {
            PersistEventMeta::Data { .. } => Some(PersistEventKind::DataLine),
            PersistEventMeta::Log { kind, .. } => Some(*kind),
            PersistEventMeta::Truncate { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxId};

    #[test]
    fn kinds_have_stable_labels_and_dense_indices() {
        for (i, k) in PersistEventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let labels: Vec<&str> = PersistEventKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["data_line", "undo_redo", "redo", "commit"]);
    }

    #[test]
    fn meta_kind_classifies() {
        let data = PersistEventMeta::Data {
            line: 7,
            changed: 0b11,
        };
        assert_eq!(data.kind(), Some(PersistEventKind::DataLine));
        let log = PersistEventMeta::Log {
            kind: PersistEventKind::Commit,
            key: TxKey::new(ThreadId::new(0), TxId::new(1)),
            addr: Addr::new(64),
            slice: 0,
            offset: 0,
        };
        assert_eq!(log.kind(), Some(PersistEventKind::Commit));
        let trunc = PersistEventMeta::Truncate {
            slice: 0,
            offsets: vec![0],
        };
        assert_eq!(trunc.kind(), None);
    }
}
