//! Hardware thread and transaction identifiers.
//!
//! The paper's log entries carry an 8-bit thread id and a 16-bit transaction
//! id (Fig. 7). The wrap-around behaviour of the 16-bit transaction id is
//! part of the design (it bounds how many transactions can be outstanding in
//! the log region), so [`TxId::next`] wraps explicitly.

use std::fmt;

/// An 8-bit hardware thread identifier, as stored in log entries (Fig. 7).
///
/// # Example
///
/// ```
/// use morlog_sim_core::ThreadId;
/// let t = ThreadId::new(3);
/// assert_eq!(t.as_u8(), 3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Creates a thread id.
    pub fn new(raw: u8) -> Self {
        ThreadId(raw)
    }

    /// Returns the raw 8-bit value.
    pub fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the id as a `usize` index (for per-thread tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A 16-bit transaction identifier, as stored in log entries (Fig. 7).
///
/// Transaction ids are per-thread monotonic counters that wrap at 2^16; the
/// pair `(ThreadId, TxId)` identifies a transaction among those still present
/// in the log region.
///
/// # Example
///
/// ```
/// use morlog_sim_core::TxId;
/// let t = TxId::new(u16::MAX);
/// assert_eq!(t.next(), TxId::new(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(u16);

impl TxId {
    /// Creates a transaction id.
    pub fn new(raw: u16) -> Self {
        TxId(raw)
    }

    /// Returns the raw 16-bit value.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the next transaction id, wrapping at 2^16.
    pub fn next(self) -> TxId {
        TxId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// A globally unique transaction key: the `(thread, txid)` pair used to
/// associate log entries with their transaction.
///
/// # Example
///
/// ```
/// use morlog_sim_core::ids::TxKey;
/// use morlog_sim_core::{ThreadId, TxId};
/// let k = TxKey::new(ThreadId::new(1), TxId::new(7));
/// assert_eq!(k.thread, ThreadId::new(1));
/// assert_eq!(k.txid, TxId::new(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxKey {
    /// The hardware thread that ran the transaction.
    pub thread: ThreadId,
    /// The per-thread transaction id.
    pub txid: TxId,
}

impl TxKey {
    /// Creates a transaction key.
    pub fn new(thread: ThreadId, txid: TxId) -> Self {
        TxKey { thread, txid }
    }
}

impl fmt::Display for TxKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.thread, self.txid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_wraps() {
        assert_eq!(TxId::new(0).next(), TxId::new(1));
        assert_eq!(TxId::new(u16::MAX).next(), TxId::new(0));
    }

    #[test]
    fn thread_index() {
        assert_eq!(ThreadId::new(255).index(), 255);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId::new(2).to_string(), "T2");
        assert_eq!(TxId::new(9).to_string(), "tx9");
        assert_eq!(
            TxKey::new(ThreadId::new(2), TxId::new(9)).to_string(),
            "T2/tx9"
        );
    }
}
