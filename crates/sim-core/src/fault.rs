//! Deterministic fault injection for the NVMM persist domain.
//!
//! A [`FaultPlan`] describes which device-level failure modes the memory
//! controller should inject and at what rates. Every decision is a pure
//! function of the plan's seed and a caller-supplied *site* (a stable
//! identifier of the physical event: slot offset, drain sequence number,
//! word index), so two runs with the same seed inject exactly the same
//! faults — a failed sweep is replayable from its seed alone.
//!
//! Three TLC-RRAM failure modes are modelled:
//!
//! - **Torn drains**: a crash interrupts the write queue while a multi-word
//!   log slot is being programmed, persisting only a prefix of its words.
//!   The two metadata words of a slot are programmed as one atomic unit
//!   (a single 128-bit row program), so tearing only ever truncates the
//!   *data* words — a torn record is still attributable to its thread and
//!   transaction.
//! - **Bit flips**: resistance drift flips raw bits. Drain-time flips are
//!   caught by the controller's write-verify pass and repaired by retry;
//!   crash-time flips on in-flight records escape verification and must be
//!   caught by recovery (per-record CRC). Flip probability is keyed to the
//!   TLC state being programmed: erased cells never drift, low-resistance
//!   states drift at the base rate, high-resistance states at twice it.
//! - **Stuck-at cells**: a slot whose endurance counter passes the plan's
//!   limit no longer programs; write-verify fails deterministically and the
//!   controller remaps the slot to a spare after the retry budget runs out.
//!
//! A `fault_budget` caps the number of *injected* faults (rolls that come
//! up positive), letting sweeps ask for "at most one fault per run".

/// Bits per TLC cell (three-level cell: 8 resistance states).
const TLC_BITS: u32 = 3;

/// SplitMix64 finalizer: the deterministic site-hash underlying every roll.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seed-driven fault-injection plan.
///
/// # Example
///
/// ```
/// use morlog_sim_core::fault::FaultPlan;
///
/// let mut a = FaultPlan::single_torn(7);
/// let mut b = FaultPlan::single_torn(7);
/// // Same seed, same sites: identical decisions.
/// for site in 0..100 {
///     assert_eq!(a.torn_prefix(site, 2), b.torn_prefix(site, 2));
/// }
/// assert!(a.injected() <= 1, "budget caps injection at one fault");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed from which every injection decision derives.
    pub seed: u64,
    /// Per-mille probability that a crash tears an in-flight log slot.
    pub torn_drain_per_mille: u32,
    /// Base per-cell, per-mille probability that a crash-time flush flips a
    /// bit of an in-flight word (escapes write-verify).
    pub crash_flip_per_mille: u32,
    /// Base per-cell, per-mille probability that a drained word is written
    /// corrupted (caught by write-verify).
    pub drain_flip_per_mille: u32,
    /// Writes a log slot endures before its cells stick (None = no wear-out).
    pub endurance_limit: Option<u32>,
    /// Maximum number of faults this plan may inject (None = unlimited).
    pub fault_budget: Option<u32>,
    injected: u32,
    sites: u64,
}

// Fault plans ride inside `System`s that sweep workers own and run on pool
// threads; the plan is plain owned data, audited thread-safe here.
#[allow(dead_code)]
fn _fault_plan_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FaultPlan>();
    check::<crate::SystemConfig>();
}

impl FaultPlan {
    /// A plan that injects nothing (the default for every existing test).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            torn_drain_per_mille: 0,
            crash_flip_per_mille: 0,
            drain_flip_per_mille: 0,
            endurance_limit: None,
            fault_budget: Some(0),
            injected: 0,
            sites: 0,
        }
    }

    /// At most one torn drain, site chosen by `seed`.
    pub fn single_torn(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_drain_per_mille: 350,
            crash_flip_per_mille: 0,
            drain_flip_per_mille: 0,
            endurance_limit: None,
            fault_budget: Some(1),
            injected: 0,
            sites: 0,
        }
    }

    /// At most one crash-time bit flip (escapes write-verify), site chosen
    /// by `seed`.
    pub fn single_crash_flip(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_drain_per_mille: 0,
            crash_flip_per_mille: 300,
            drain_flip_per_mille: 0,
            endurance_limit: None,
            fault_budget: Some(1),
            injected: 0,
            sites: 0,
        }
    }

    /// At most one drain-time corruption (caught and repaired by
    /// write-verify), site chosen by `seed`.
    pub fn single_drain_flip(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_drain_per_mille: 0,
            crash_flip_per_mille: 0,
            drain_flip_per_mille: 5,
            endurance_limit: None,
            fault_budget: Some(1),
            injected: 0,
            sites: 0,
        }
    }

    /// Wear-out plan: log slots stick after `limit` programs and must be
    /// remapped to spares.
    pub fn worn_slots(seed: u64, limit: u32) -> Self {
        FaultPlan {
            seed,
            torn_drain_per_mille: 0,
            crash_flip_per_mille: 0,
            drain_flip_per_mille: 0,
            endurance_limit: Some(limit),
            fault_budget: None,
            injected: 0,
            sites: 0,
        }
    }

    /// Everything at once: a torn drain, a crash flip, drain flips and
    /// early wear, capped at `budget` injected faults.
    pub fn storm(seed: u64, budget: u32) -> Self {
        FaultPlan {
            seed,
            torn_drain_per_mille: 350,
            crash_flip_per_mille: 300,
            drain_flip_per_mille: 5,
            endurance_limit: Some(48),
            fault_budget: Some(budget),
            injected: 0,
            sites: 0,
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        (self.torn_drain_per_mille > 0
            || self.crash_flip_per_mille > 0
            || self.drain_flip_per_mille > 0
            || self.endurance_limit.is_some())
            && self.fault_budget != Some(0)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u32 {
        self.injected
    }

    /// Sites consulted so far (for coverage reporting).
    pub fn sites_consulted(&self) -> u64 {
        self.sites
    }

    /// A short human-readable tag for sweep matrices.
    pub fn label(&self) -> String {
        if !self.is_active() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.torn_drain_per_mille > 0 {
            parts.push("torn".to_string());
        }
        if self.crash_flip_per_mille > 0 {
            parts.push("flip".to_string());
        }
        if self.drain_flip_per_mille > 0 {
            parts.push("drainflip".to_string());
        }
        if let Some(l) = self.endurance_limit {
            parts.push(format!("wear{l}"));
        }
        format!("{}#{}", parts.join("+"), self.seed)
    }

    fn budget_left(&self) -> bool {
        match self.fault_budget {
            Some(b) => self.injected < b,
            None => true,
        }
    }

    fn roll(&mut self, kind: u64, site: u64) -> u64 {
        self.sites += 1;
        mix(self.seed ^ kind.wrapping_mul(0xA24B_AED4_963E_E407) ^ mix(site))
    }

    /// Crash-time tear decision for an in-flight log slot with `data_words`
    /// data words following its (atomic) metadata header. Returns
    /// `Some(k)` — the number of data words that persisted (`k <
    /// data_words`) — when the slot tears, `None` when it persists whole.
    pub fn torn_prefix(&mut self, site: u64, data_words: usize) -> Option<usize> {
        if self.torn_drain_per_mille == 0 || data_words == 0 || !self.budget_left() {
            return None;
        }
        let h = self.roll(1, site);
        if h % 1000 >= self.torn_drain_per_mille as u64 {
            return None;
        }
        self.injected += 1;
        Some(((h >> 32) % data_words as u64) as usize)
    }

    /// Crash-time bit flip on an in-flight data word: returns the corrupted
    /// value if this site drifts, `None` otherwise. The per-cell rate is
    /// keyed to the TLC state being programmed (see module docs).
    pub fn crash_flip_word(&mut self, site: u64, word: u64) -> Option<u64> {
        self.flip_word(2, self.crash_flip_per_mille, site, word)
    }

    /// Drain-time bit flip on a word being programmed: returns the
    /// corrupted value the array would hold, for write-verify to catch.
    pub fn drain_flip_word(&mut self, site: u64, word: u64) -> Option<u64> {
        self.flip_word(3, self.drain_flip_per_mille, site, word)
    }

    fn flip_word(&mut self, kind: u64, per_mille: u32, site: u64, word: u64) -> Option<u64> {
        if per_mille == 0 || !self.budget_left() {
            return None;
        }
        let cells = (u64::BITS / TLC_BITS) as u64; // 21 whole cells per word
        for cell in 0..cells {
            let state = (word >> (cell * TLC_BITS as u64)) & 0b111;
            // Erased cells hold no charge to drift; high-resistance states
            // drift at twice the base rate.
            let weight = match state {
                0 => 0,
                1..=3 => 1,
                _ => 2,
            };
            if weight == 0 {
                continue;
            }
            let h = self.roll(kind, site.wrapping_mul(64) ^ cell);
            if h % 1000 < (per_mille * weight) as u64 {
                self.injected += 1;
                let bit = cell * TLC_BITS as u64 + (h >> 32) % TLC_BITS as u64;
                return Some(word ^ (1u64 << bit));
            }
        }
        None
    }

    /// Whether a log slot with `wear` lifetime programs has worn out
    /// (its cells stick and write-verify will fail until it is remapped).
    pub fn slot_is_stuck(&self, wear: u32) -> bool {
        matches!(self.endurance_limit, Some(limit) if wear >= limit)
    }
}

/// The fault families a fuzz campaign composes with a sampled crash point.
///
/// Each variant derives a [`FaultPlan`] keyed to the crash point with the
/// same SplitMix64 site mixing the exhaustive explorer uses for its torn
/// variant, so a campaign item `(point, variant)` is replayable from the
/// campaign seed alone — sharding and execution order never change which
/// fault lands where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultVariantKind {
    /// No fault plan: the crash alone.
    Base,
    /// One in-flight log slot loses a suffix of its data words in the ADR
    /// flush (tear forced; the roll picks *which* slot).
    Torn,
    /// One crash-time bit flip on an in-flight data word (escapes
    /// write-verify; recovery's CRC must catch it).
    CrashFlip,
    /// Early wear-out: log slots stick after a handful of programs, forcing
    /// write-verify retries and remaps before the crash.
    StuckAt,
}

impl FaultVariantKind {
    /// Every variant, in the order campaigns cycle through them.
    pub const ALL: [FaultVariantKind; 4] = [
        FaultVariantKind::Base,
        FaultVariantKind::Torn,
        FaultVariantKind::CrashFlip,
        FaultVariantKind::StuckAt,
    ];

    /// Stable label for reports and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            FaultVariantKind::Base => "base",
            FaultVariantKind::Torn => "torn",
            FaultVariantKind::CrashFlip => "flip",
            FaultVariantKind::StuckAt => "stuck",
        }
    }

    /// Dense index into [`FaultVariantKind::ALL`] (sort key for
    /// deterministic report ordering).
    pub fn index(&self) -> usize {
        match self {
            FaultVariantKind::Base => 0,
            FaultVariantKind::Torn => 1,
            FaultVariantKind::CrashFlip => 2,
            FaultVariantKind::StuckAt => 3,
        }
    }

    /// The point-keyed seed shared by every variant's plan (and by the
    /// exhaustive explorer's `torn_plan_for`).
    pub fn point_seed(fault_seed: u64, point: u64) -> u64 {
        fault_seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Builds this variant's fault plan for one crash point; `None` for
    /// [`FaultVariantKind::Base`].
    pub fn plan_for(&self, fault_seed: u64, point: u64) -> Option<FaultPlan> {
        let seed = Self::point_seed(fault_seed, point);
        match self {
            FaultVariantKind::Base => None,
            FaultVariantKind::Torn => {
                let mut plan = FaultPlan::single_torn(seed);
                // Tear unconditionally (budget still 1): the interesting
                // roll is *which* in-flight slot tears, not whether one does.
                plan.torn_drain_per_mille = 1000;
                Some(plan)
            }
            FaultVariantKind::CrashFlip => {
                let mut plan = FaultPlan::single_crash_flip(seed);
                // Flip eagerly for the same reason; per-cell TLC-state
                // weighting still decides the victim bit.
                plan.crash_flip_per_mille = 400;
                Some(plan)
            }
            FaultVariantKind::StuckAt => Some(FaultPlan::worn_slots(seed, 24)),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) over a slice of 64-bit words, taken
/// little-endian byte order. This is the integrity footprint sealed into
/// every log record; recovery recomputes it to classify records as valid
/// or corrupt.
///
/// # Example
///
/// ```
/// use morlog_sim_core::fault::crc32_words;
/// let a = crc32_words(&[1, 2, 3]);
/// assert_eq!(a, crc32_words(&[1, 2, 3]));
/// assert_ne!(a, crc32_words(&[1, 2, 4]));
/// assert_eq!(crc32_words(&[]), 0);
/// ```
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut crc: u32 = !0;
    for &w in words {
        for byte in w.to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let mut p = FaultPlan::none();
        assert!(!p.is_active());
        for site in 0..1000 {
            assert_eq!(p.torn_prefix(site, 2), None);
            assert_eq!(p.crash_flip_word(site, u64::MAX), None);
            assert_eq!(p.drain_flip_word(site, u64::MAX), None);
            assert!(!p.slot_is_stuck(u32::MAX));
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn rolls_are_deterministic_in_seed_and_site() {
        for seed in 0..20 {
            let mut a = FaultPlan::storm(seed, u32::MAX);
            let mut b = FaultPlan::storm(seed, u32::MAX);
            for site in 0..200 {
                assert_eq!(a.torn_prefix(site, 2), b.torn_prefix(site, 2));
                assert_eq!(
                    a.crash_flip_word(site, 0x5555),
                    b.crash_flip_word(site, 0x5555)
                );
            }
        }
    }

    #[test]
    fn different_seeds_pick_different_sites() {
        let site_of = |seed| {
            let mut p = FaultPlan::single_torn(seed);
            (0..10_000u64).find(|&s| p.torn_prefix(s, 2).is_some())
        };
        let first = site_of(1);
        assert!(first.is_some());
        assert!(
            (2..50).any(|seed| site_of(seed) != first),
            "seed must steer the site"
        );
    }

    #[test]
    fn budget_caps_injection() {
        let mut p = FaultPlan::single_torn(3);
        let mut hits = 0;
        for site in 0..10_000 {
            if p.torn_prefix(site, 2).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 1);
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn torn_prefix_is_a_strict_prefix() {
        let mut p = FaultPlan::storm(11, u32::MAX);
        for site in 0..2000 {
            if let Some(k) = p.torn_prefix(site, 2) {
                assert!(k < 2);
            }
        }
    }

    #[test]
    fn flips_change_exactly_one_bit_and_spare_erased_words() {
        let mut p = FaultPlan::storm(5, u32::MAX);
        for site in 0..2000 {
            assert_eq!(
                p.crash_flip_word(site, 0),
                None,
                "all-erased words never drift"
            );
            if let Some(flipped) = p.crash_flip_word(site, u64::MAX) {
                assert_eq!((flipped ^ u64::MAX).count_ones(), 1);
            }
        }
    }

    #[test]
    fn wear_out_threshold() {
        let p = FaultPlan::worn_slots(0, 100);
        assert!(!p.slot_is_stuck(99));
        assert!(p.slot_is_stuck(100));
        assert!(p.slot_is_stuck(101));
        assert!(p.is_active());
    }

    #[test]
    fn crc_known_vector() {
        // CRC-32("12345678") — the ASCII bytes 0x31..0x38 packed LE into
        // one word — against a table-driven reference of the same IEEE
        // 802.3 polynomial.
        let table: Vec<u32> = (0..256u32)
            .map(|mut c| {
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                c
            })
            .collect();
        let mut reference: u32 = !0;
        for b in 0x31u8..=0x38 {
            reference = table[((reference ^ b as u32) & 0xFF) as usize] ^ (reference >> 8);
        }
        reference = !reference;
        assert_eq!(crc32_words(&[0x3837_3635_3433_3231]), reference);
    }

    #[test]
    fn crc_sensitive_to_order_and_length() {
        assert_ne!(crc32_words(&[1, 2]), crc32_words(&[2, 1]));
        assert_ne!(crc32_words(&[0]), crc32_words(&[0, 0]));
    }

    #[test]
    fn variant_plans_are_point_keyed() {
        for v in FaultVariantKind::ALL {
            let a = v.plan_for(42, 3);
            let b = v.plan_for(42, 4);
            match v {
                FaultVariantKind::Base => assert!(a.is_none() && b.is_none()),
                _ => {
                    let (a, b) = (a.unwrap(), b.unwrap());
                    assert!(a.is_active() && b.is_active());
                    assert_ne!(a.seed, b.seed, "{}", v.label());
                }
            }
        }
    }

    #[test]
    fn variant_indices_are_dense_and_labels_stable() {
        for (i, v) in FaultVariantKind::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        let labels: Vec<&str> = FaultVariantKind::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, ["base", "torn", "flip", "stuck"]);
    }

    #[test]
    fn labels_describe_modes() {
        assert_eq!(FaultPlan::none().label(), "none");
        assert!(FaultPlan::single_torn(9).label().starts_with("torn#"));
        assert!(FaultPlan::worn_slots(2, 64).label().contains("wear64"));
        assert!(FaultPlan::storm(1, 4)
            .label()
            .contains("torn+flip+drainflip"));
    }
}
