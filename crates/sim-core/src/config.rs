//! Configuration for every simulated component.
//!
//! Defaults reproduce Table III of the paper: 8 in-order 3 GHz cores, a
//! 32 KB/256 KB/8 MB cache hierarchy, and an 8 GB TLC-RRAM main memory with
//! 4 channels × 1 rank × 8 banks behind an FRFCFS-WQF controller with a
//! 64-entry write queue and an 80 % drain watermark.

use crate::timing::{Cycle, Frequency};

/// Which hardware logging design a simulated system runs.
///
/// These are the six configurations evaluated in §VI-A of the paper.
///
/// # Example
///
/// ```
/// use morlog_sim_core::DesignKind;
/// assert!(DesignKind::MorLogSlde.is_morlog());
/// assert!(DesignKind::FwbCrade.uses_crade_only());
/// assert_eq!(DesignKind::ALL.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignKind {
    /// FWB undo+redo logging (Ogleari et al., HPCA'18) with the CRADE codec.
    /// This is the normalisation baseline everywhere in the evaluation.
    FwbCrade,
    /// FWB with a log buffer as large as MorLog's two buffers combined.
    /// Cannot guarantee atomic persistence (kept for the same comparison the
    /// paper makes).
    FwbUnsafe,
    /// FWB with the SLDE codec (dirty flags derived from undo vs. redo data).
    FwbSlde,
    /// Morphable logging with the CRADE codec, synchronous commit.
    MorLogCrade,
    /// Morphable logging with the SLDE codec, synchronous commit.
    MorLogSlde,
    /// Morphable logging + SLDE + the delay-persistence commit protocol.
    MorLogDp,
}

impl DesignKind {
    /// All six designs, in the order the paper's figures list them.
    pub const ALL: [DesignKind; 6] = [
        DesignKind::FwbCrade,
        DesignKind::FwbUnsafe,
        DesignKind::FwbSlde,
        DesignKind::MorLogCrade,
        DesignKind::MorLogSlde,
        DesignKind::MorLogDp,
    ];

    /// Returns `true` for the three morphable-logging designs.
    pub fn is_morlog(self) -> bool {
        matches!(
            self,
            DesignKind::MorLogCrade | DesignKind::MorLogSlde | DesignKind::MorLogDp
        )
    }

    /// Returns `true` for designs that encode log data with CRADE only
    /// (no DLDC path).
    pub fn uses_crade_only(self) -> bool {
        matches!(
            self,
            DesignKind::FwbCrade | DesignKind::FwbUnsafe | DesignKind::MorLogCrade
        )
    }

    /// Returns `true` for designs using the delay-persistence commit.
    pub fn delay_persistence(self) -> bool {
        matches!(self, DesignKind::MorLogDp)
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::FwbCrade => "FWB-CRADE",
            DesignKind::FwbUnsafe => "FWB-Unsafe",
            DesignKind::FwbSlde => "FWB-SLDE",
            DesignKind::MorLogCrade => "MorLog-CRADE",
            DesignKind::MorLogSlde => "MorLog-SLDE",
            DesignKind::MorLogDp => "MorLog-DP",
        }
    }
}

impl std::fmt::Display for DesignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deliberately broken design variant for the crash-point model
/// checker's mutation self-test (`crates/checker`).
///
/// The checker proves it has teeth by enabling one of these sabotages and
/// demanding a counterexample; every real design runs with
/// [`CheckMutation::None`], where the simulated hardware is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckMutation {
    /// The correct hardware (the only variant benchmarks ever run).
    #[default]
    None,
    /// Drops the undo→data ordering fence: updated data may enter the
    /// persist domain while the undo+redo entry covering them is still
    /// buffered on chip (violates the §II-B write-ahead invariant).
    DropUndoFence,
    /// Skips the delay-persistence `ulog` counter bump at commit
    /// (§III-C): the commit record under-reports how many post-commit
    /// redo entries the transaction still owes the log.
    SkipUlogBump,
    /// Skews every redo-only log entry's data word by one: the program
    /// observes correct values, but recovery rolls winners forward to a
    /// different state than a faithful implementation of the same spec.
    /// This is the seeded spec-divergence target for the differential
    /// checker — two designs crash-recovered at matched persist progress
    /// must agree on program-visible state, and this sabotage makes them
    /// disagree.
    SkewRedoValue,
}

impl CheckMutation {
    /// Short label for tables and results records.
    pub fn label(self) -> &'static str {
        match self {
            CheckMutation::None => "none",
            CheckMutation::DropUndoFence => "drop-undo-fence",
            CheckMutation::SkipUlogBump => "skip-ulog-bump",
            CheckMutation::SkewRedoValue => "skew-redo-value",
        }
    }
}

/// Core pipeline parameters (Table III: 8 in-order cores at 3 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Number of simulated cores (= maximum worker threads).
    pub cores: usize,
    /// Core clock frequency.
    pub frequency: Frequency,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            cores: 8,
            frequency: Frequency::ghz(3.0),
        }
    }
}

/// One cache level's geometry and access latency.
///
/// # Example
///
/// ```
/// use morlog_sim_core::CacheLevelConfig;
/// let l1 = CacheLevelConfig::l1_default();
/// assert_eq!(l1.sets(), 32 * 1024 / 64 / 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheLevelConfig {
    /// Table III L1: private 32 KB, 8-way, 4 cycles.
    pub fn l1_default() -> Self {
        CacheLevelConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
            latency_cycles: 4,
        }
    }

    /// Table III L2: private 256 KB, 8-way, 12 cycles.
    pub fn l2_default() -> Self {
        CacheLevelConfig {
            capacity_bytes: 256 * 1024,
            ways: 8,
            latency_cycles: 12,
        }
    }

    /// Table III L3: shared 8 MB, 16-way, 28 cycles.
    pub fn l3_default() -> Self {
        CacheLevelConfig {
            capacity_bytes: 8 * 1024 * 1024,
            ways: 16,
            latency_cycles: 28,
        }
    }

    /// Number of sets implied by capacity, line size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / crate::types::LINE_BYTES;
        assert!(
            self.ways > 0 && lines > 0 && lines.is_multiple_of(self.ways),
            "invalid cache geometry: {self:?}"
        );
        lines / self.ways
    }
}

/// The three-level hierarchy of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private per-core L1 data cache.
    pub l1: CacheLevelConfig,
    /// Private per-core L2.
    pub l2: CacheLevelConfig,
    /// Shared L3 (the LLC).
    pub l3: CacheLevelConfig,
    /// Period of the force-write-back scan in cycles (§VI-A: every 3 M
    /// cycles, used both for persistence of updated data and log truncation).
    pub force_write_back_period: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheLevelConfig::l1_default(),
            l2: CacheLevelConfig::l2_default(),
            l3: CacheLevelConfig::l3_default(),
            force_write_back_period: 3_000_000,
        }
    }
}

impl HierarchyConfig {
    /// The minimum number of cycles for a dirty line evicted from L1 to reach
    /// the memory controller (traversal of L2 + L3). Log buffers must evict
    /// entries in fewer cycles than this to preserve the undo-before-data
    /// ordering (§II-B).
    pub fn min_traversal_cycles(&self) -> u64 {
        self.l2.latency_cycles + self.l3.latency_cycles
    }
}

/// Main-memory organisation and controller policy (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Write-queue capacity per channel (FRFCFS-WQF, 64 entries).
    pub write_queue_entries: usize,
    /// Fraction of write-queue occupancy that triggers a drain (0.8).
    pub drain_watermark: f64,
    /// Fraction of occupancy at which a drain stops (hysteresis low mark).
    pub drain_low_mark: f64,
    /// Array read latency in nanoseconds (Table III: 25 ns).
    pub read_latency_ns: f64,
    /// DRAM access latency in nanoseconds (DRAM traffic needs no encoding
    /// and no persistence; it bypasses the NVMM write queue).
    pub dram_latency_ns: f64,
    /// Multiplier applied to all cell write latencies (×1 in Table III; the
    /// §VI-E sensitivity study sweeps ×1..×32).
    pub write_latency_scale: f64,
    /// Size of the NVMM log region in bytes (per processor). The paper
    /// prevents overflow by "allocating a large-enough log region"
    /// (§III-A); truncation only advances at force-write-back scans, so the
    /// region must hold every entry between scans.
    pub log_region_bytes: usize,
    /// Number of log slices. 1 = the paper's evaluated centralized log;
    /// more = distributed (per-thread) logs, the §III-F variant where
    /// commit records carry timestamps to define the commit order.
    pub log_slices: usize,
    /// Write-verify retry budget: how many re-programs the controller
    /// attempts after a failed read-back before declaring the slot stuck
    /// and remapping it to a spare.
    pub write_retry_budget: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            channels: 4,
            ranks: 1,
            banks: 8,
            write_queue_entries: 64,
            drain_watermark: 0.8,
            drain_low_mark: 0.2,
            read_latency_ns: 25.0,
            dram_latency_ns: 15.0,
            write_latency_scale: 1.0,
            log_region_bytes: 256 * 1024 * 1024,
            log_slices: 1,
            write_retry_budget: 3,
        }
    }
}

/// How log entries of committed transactions are deleted (§III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TruncationPolicy {
    /// Entries of transactions committed before the last two
    /// force-write-back scans are deleted (simpler, less hardware).
    #[default]
    ForceWriteBack,
    /// A transaction table counts each transaction's still-dirty cache
    /// lines; entries are deleted as soon as the counter reaches zero
    /// (more flexible).
    TransactionTable,
}

/// Log-buffer sizes and logging policy (§III, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Undo+redo buffer entries (default 16). For FWB designs this is the
    /// single log buffer's size.
    pub undo_redo_entries: usize,
    /// Redo buffer entries (default 32). Unused by FWB designs, except
    /// FWB-Unsafe which folds them into its single buffer.
    pub redo_entries: usize,
    /// Cycles after which an undo+redo entry is eagerly written to NVMM.
    /// Must stay below [`HierarchyConfig::min_traversal_cycles`].
    pub eager_evict_cycles: u64,
    /// Whether redo-buffer entries are discarded when their cache line is
    /// evicted by the LLC (i.e. the updated data reached the persist domain
    /// first). On by default; an ablation switch.
    pub discard_redo_on_llc_evict: bool,
    /// The §III-F log-management option in use.
    pub truncation: TruncationPolicy,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            undo_redo_entries: 16,
            redo_entries: 32,
            eager_evict_cycles: 32,
            discard_redo_on_llc_evict: true,
            truncation: TruncationPolicy::ForceWriteBack,
        }
    }
}

/// Event-tracing configuration (see [`crate::trace`]).
///
/// Disabled by default; the `MORLOG_TRACE` environment variable can
/// force-enable tracing for a run regardless of this struct (the bench
/// harness reads it through [`crate::trace::Tracer::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether the system allocates a trace ring and emits events.
    pub enabled: bool,
    /// Ring capacity in records when enabled.
    pub buffer_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            buffer_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Telemetry configuration (see [`crate::metrics`]).
///
/// Histograms (commit latency, log-entry sizes, encoder choices) are
/// always collected — they are plain counters with negligible cost.
/// This struct only controls the cycle-driven time-series sampler; the
/// `MORLOG_SAMPLE_CYCLES` environment variable overrides
/// `sample_cycles` for a run when set (0 disables sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Time-series sample period in cycles; 0 disables sampling.
    pub sample_cycles: Cycle,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            sample_cycles: crate::metrics::DEFAULT_SAMPLE_CYCLES,
        }
    }
}

/// Complete configuration of one simulated system.
///
/// # Example
///
/// ```
/// use morlog_sim_core::{DesignKind, SystemConfig};
/// let cfg = SystemConfig::for_design(DesignKind::MorLogSlde);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.design, DesignKind::MorLogSlde);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The logging design under evaluation.
    pub design: DesignKind,
    /// Core parameters.
    pub cores: CoreConfig,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Main-memory parameters.
    pub mem: MemConfig,
    /// Logging parameters.
    pub log: LogConfig,
    /// Event-tracing parameters (off by default; zero simulation impact).
    pub trace: TraceConfig,
    /// Telemetry sampling parameters (histograms are always on).
    pub metrics: MetricsConfig,
    /// Model-checker sabotage switch ([`CheckMutation::None`] outside the
    /// checker's mutation self-test).
    pub mutation: CheckMutation,
}

impl SystemConfig {
    /// The default system (Table III) running the given design. FWB-Unsafe
    /// gets a single log buffer sized as the sum of the two MorLog buffers,
    /// exactly as §VI-A specifies.
    pub fn for_design(design: DesignKind) -> Self {
        let mut cfg = SystemConfig {
            design,
            cores: CoreConfig::default(),
            hierarchy: HierarchyConfig::default(),
            mem: MemConfig::default(),
            log: LogConfig::default(),
            trace: TraceConfig::default(),
            metrics: MetricsConfig::default(),
            mutation: CheckMutation::None,
        };
        if design == DesignKind::FwbUnsafe {
            cfg.log.undo_redo_entries += cfg.log.redo_entries;
            cfg.log.redo_entries = 0;
        }
        cfg
    }

    /// Checks cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a constraint is violated, e.g.
    /// when the eager eviction window would allow updated data to outrun its
    /// undo log data.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores.cores == 0 || self.cores.cores > 256 {
            return Err(format!(
                "core count {} out of range 1..=256",
                self.cores.cores
            ));
        }
        if self.log.eager_evict_cycles >= self.hierarchy.min_traversal_cycles() {
            return Err(format!(
                "eager_evict_cycles {} must be below the minimum cache traversal \
                 latency {} to preserve undo-before-data ordering",
                self.log.eager_evict_cycles,
                self.hierarchy.min_traversal_cycles()
            ));
        }
        if self.log.undo_redo_entries == 0 {
            return Err("undo+redo buffer must have at least one entry".to_string());
        }
        if !(0.0..=1.0).contains(&self.mem.drain_watermark)
            || !(0.0..=1.0).contains(&self.mem.drain_low_mark)
            || self.mem.drain_low_mark > self.mem.drain_watermark
        {
            return Err("drain watermarks must satisfy 0 <= low <= high <= 1".to_string());
        }
        if self.mem.channels == 0 || self.mem.banks == 0 || self.mem.ranks == 0 {
            return Err("memory organisation must be non-empty".to_string());
        }
        if self.mem.write_latency_scale <= 0.0 {
            return Err("write_latency_scale must be positive".to_string());
        }
        if self.mem.log_slices == 0 || self.mem.log_slices > 256 {
            return Err("log_slices must be in 1..=256".to_string());
        }
        // Exercises geometry assertions.
        let _ = self.hierarchy.l1.sets();
        let _ = self.hierarchy.l2.sets();
        let _ = self.hierarchy.l3.sets();
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::for_design(DesignKind::MorLogSlde)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.cores.cores, 8);
        assert_eq!(cfg.hierarchy.l1.capacity_bytes, 32 * 1024);
        assert_eq!(cfg.hierarchy.l2.latency_cycles, 12);
        assert_eq!(cfg.hierarchy.l3.ways, 16);
        assert_eq!(cfg.mem.channels, 4);
        assert_eq!(cfg.mem.write_queue_entries, 64);
        assert!((cfg.mem.drain_watermark - 0.8).abs() < 1e-12);
        assert_eq!(cfg.log.undo_redo_entries, 16);
        assert_eq!(cfg.log.redo_entries, 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn fwb_unsafe_gets_combined_buffer() {
        let cfg = SystemConfig::for_design(DesignKind::FwbUnsafe);
        assert_eq!(cfg.log.undo_redo_entries, 48);
        assert_eq!(cfg.log.redo_entries, 0);
    }

    #[test]
    fn validate_rejects_slow_eviction() {
        let mut cfg = SystemConfig::default();
        cfg.log.eager_evict_cycles = 100;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_watermarks() {
        let mut cfg = SystemConfig::default();
        cfg.mem.drain_low_mark = 0.9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut cfg = SystemConfig::default();
        cfg.cores.cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn design_kind_predicates() {
        assert!(DesignKind::MorLogDp.delay_persistence());
        assert!(!DesignKind::MorLogSlde.delay_persistence());
        assert!(DesignKind::FwbUnsafe.uses_crade_only());
        assert!(!DesignKind::FwbSlde.uses_crade_only());
        for d in DesignKind::ALL {
            assert!(!d.label().is_empty());
            assert_eq!(d.to_string(), d.label());
        }
    }

    #[test]
    fn min_traversal_matches_l2_plus_l3() {
        let h = HierarchyConfig::default();
        assert_eq!(h.min_traversal_cycles(), 40);
    }

    #[test]
    fn sets_arithmetic() {
        assert_eq!(CacheLevelConfig::l1_default().sets(), 64);
        assert_eq!(CacheLevelConfig::l2_default().sets(), 512);
        assert_eq!(CacheLevelConfig::l3_default().sets(), 8192);
    }
}
