//! Shared foundation types for the MorLog reproduction.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace: physical addresses and cache-line geometry, simulated-time
//! units, thread/transaction identifiers, configuration structures for each
//! simulated component, a deterministic random-number generator, and the
//! metric counters that the benchmark harness reports.
//!
//! Nothing in this crate models behaviour; it only defines the shared
//! language so that the substrate crates (`morlog-encoding`, `morlog-nvm`,
//! `morlog-cache`, `morlog-logging`, `morlog-sim`) can interoperate without
//! depending on each other.
//!
//! # Example
//!
//! ```
//! use morlog_sim_core::{Addr, WORDS_PER_LINE};
//!
//! let addr = Addr::new(0x1234_5678);
//! let line = addr.line();
//! assert_eq!(line.base().as_u64(), 0x1234_5640);
//! assert!(addr.word_index() < WORDS_PER_LINE);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod persist;
pub mod rng;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod types;

pub use config::{
    CacheLevelConfig, CheckMutation, CoreConfig, DesignKind, HierarchyConfig, LogConfig, MemConfig,
    MetricsConfig, SystemConfig, TraceConfig,
};
pub use fault::{FaultPlan, FaultVariantKind};
pub use ids::{ThreadId, TxId, TxKey};
pub use metrics::{CommitLatency, Histogram, LogWriteMetrics, MetricsSet, Series, SeriesSet};
pub use persist::{PersistEventKind, PersistEventMeta};
pub use rng::DetRng;
pub use stats::{CheckStats, FuzzStats, SimStats};
pub use timing::{Cycle, Frequency, NanoSeconds, PicoJoules};
pub use types::{Addr, LineAddr, LineData, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
