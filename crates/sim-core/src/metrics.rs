//! Deterministic, mergeable telemetry primitives: log2-bucketed
//! histograms, cycle-driven time series, and the aggregate metric set
//! attached to [`crate::SimStats`].
//!
//! Everything here is integer-exact and order-independent where the
//! sweep engine needs it to be: [`Histogram::merge`] is associative and
//! commutative (element-wise bucket addition plus min/max folds), so a
//! parallel sweep that merges per-run metrics in any grouping produces
//! byte-identical JSON to a serial sweep. Quantile extraction uses pure
//! integer arithmetic (no floating point) for the same reason.
//!
//! Time-series sampling is driven by the engine clock at a configurable
//! period (`MORLOG_SAMPLE_CYCLES`, default [`DEFAULT_SAMPLE_CYCLES`];
//! `0` disables sampling). Series merge by concatenation, which keeps
//! merge associative; per-run series are cycle-monotone and the results
//! validator checks that invariant on every emitted record.

use crate::timing::Cycle;
use crate::trace::LogKindTag;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, and bucket 64 holds
/// `[2^63, u64::MAX]`.
pub const HIST_BUCKETS: usize = 65;

/// Environment variable selecting the time-series sample period in
/// cycles. `0` disables sampling; malformed values abort with exit
/// code 2 (same convention as `MORLOG_TXS` / `MORLOG_JOBS`).
pub const SAMPLE_ENV: &str = "MORLOG_SAMPLE_CYCLES";

/// Default sample period when `MORLOG_SAMPLE_CYCLES` is unset: one
/// sample every 8192 cycles keeps series small (a 2000-transaction
/// `quick_check` run yields a few hundred points per design) while
/// still resolving write-queue and log-occupancy trends.
pub const DEFAULT_SAMPLE_CYCLES: Cycle = 8192;

/// A deterministic log2-bucketed histogram over `u64` samples.
///
/// Records are O(1) (a `leading_zeros` and two adds); quantiles are
/// extracted by walking the cumulative bucket counts and returning the
/// bucket's upper bound clamped to the observed `[min, max]` range, so
/// reported quantiles never exceed any actually-recorded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_upper(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact; internally 128-bit).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Quantile at `permille / 1000` using pure integer arithmetic:
    /// the sample with rank `ceil(permille · count / 1000)` determines
    /// the bucket, and the estimate is that bucket's upper bound
    /// clamped to the observed `[min, max]` range. Returns 0 when
    /// empty.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank_num = u128::from(permille) * u128::from(self.count);
        let rank = rank_num.div_ceil(1000).max(1);
        let mut cum: u128 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += u128::from(c);
            if cum >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile_permille`]).
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }

    /// Fold another histogram into this one. Element-wise addition of
    /// bucket counts plus min/max folds, so merge is associative and
    /// commutative — parallel sweeps may merge in any grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A cycle-stamped time series: two parallel vectors of sample cycles
/// and sampled values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    /// Cycle at which each sample was taken (monotone within one run).
    pub cycles: Vec<Cycle>,
    /// Sampled value at the corresponding cycle.
    pub values: Vec<u64>,
}

impl Series {
    /// Append one sample.
    pub fn push(&mut self, cycle: Cycle, value: u64) {
        self.cycles.push(cycle);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Append `other`'s samples after this series' samples.
    /// Concatenation keeps merge associative; cycle monotonicity is a
    /// per-run property and is not preserved across merged runs.
    pub fn merge(&mut self, other: &Series) {
        self.cycles.extend_from_slice(&other.cycles);
        self.values.extend_from_slice(&other.values);
    }
}

/// The fixed set of engine-sampled time series plus the sample period
/// that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesSet {
    /// Sample period in cycles; 0 means sampling was disabled.
    pub period: Cycle,
    /// NVM write-queue depth summed over channels.
    pub wq_depth: Series,
    /// Redo-buffer occupancy (lines) in the logging controller.
    pub redo_buf: Series,
    /// Undo+redo (CRADE) buffer occupancy in the logging controller.
    pub ur_buf: Series,
    /// Bytes of live log across all log slices (tail − head).
    pub log_bytes: Series,
    /// Delay-persistence transactions committed but not yet persisted.
    pub dp_outstanding: Series,
    /// Writebacks drained from the hierarchy but not yet issued to NVM.
    pub pending_writebacks: Series,
}

/// Display labels for the series in [`SeriesSet`], in field order.
pub const SERIES_LABELS: [&str; 6] = [
    "wq_depth",
    "redo_buf",
    "ur_buf",
    "log_bytes",
    "dp_outstanding",
    "pending_writebacks",
];

impl SeriesSet {
    /// An empty set with the given sample period.
    pub fn with_period(period: Cycle) -> Self {
        SeriesSet {
            period,
            ..Self::default()
        }
    }

    /// Label → series pairs in [`SERIES_LABELS`] order.
    pub fn named(&self) -> [(&'static str, &Series); 6] {
        [
            (SERIES_LABELS[0], &self.wq_depth),
            (SERIES_LABELS[1], &self.redo_buf),
            (SERIES_LABELS[2], &self.ur_buf),
            (SERIES_LABELS[3], &self.log_bytes),
            (SERIES_LABELS[4], &self.dp_outstanding),
            (SERIES_LABELS[5], &self.pending_writebacks),
        ]
    }

    /// Record one sample across every series at the same cycle.
    #[allow(clippy::too_many_arguments)]
    pub fn push_sample(
        &mut self,
        cycle: Cycle,
        wq_depth: u64,
        redo_buf: u64,
        ur_buf: u64,
        log_bytes: u64,
        dp_outstanding: u64,
        pending_writebacks: u64,
    ) {
        self.wq_depth.push(cycle, wq_depth);
        self.redo_buf.push(cycle, redo_buf);
        self.ur_buf.push(cycle, ur_buf);
        self.log_bytes.push(cycle, log_bytes);
        self.dp_outstanding.push(cycle, dp_outstanding);
        self.pending_writebacks.push(cycle, pending_writebacks);
    }

    /// Concatenate `other`'s samples onto this set. The period is
    /// taken from whichever side has a nonzero period first (self
    /// wins), so merging a disabled-sampling run into an enabled one
    /// keeps the enabled period.
    pub fn merge(&mut self, other: &SeriesSet) {
        if self.period == 0 {
            self.period = other.period;
        }
        self.wq_depth.merge(&other.wq_depth);
        self.redo_buf.merge(&other.redo_buf);
        self.ur_buf.merge(&other.ur_buf);
        self.log_bytes.merge(&other.log_bytes);
        self.dp_outstanding.merge(&other.dp_outstanding);
        self.pending_writebacks.merge(&other.pending_writebacks);
    }
}

/// Per-transaction commit-latency distributions, split by commit
/// phase. Phase timestamps come from the logging controller's commit
/// pipeline (the same points the tracer tags as `CommitPhaseTag`).
///
/// Two headline numbers deliberately coexist: `begin_to_complete`
/// measures when the *program* observes the commit (instant for
/// delay-persistence designs), while `begin_to_persist` measures when
/// the commit record is durable in NVM. For sync designs they track
/// each other; for DP designs the gap is the persistence lag that
/// §III-C trades for commit latency, reported in `dp_persist_lag`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitLatency {
    /// Begin → Start: transaction body execution until commit request.
    pub begin_to_start: Histogram,
    /// Start → RecordPersisted: commit-record drain to NVM.
    pub start_to_persist: Histogram,
    /// RecordPersisted → Complete: post-persist completion (0 for DP,
    /// where Complete precedes RecordPersisted).
    pub persist_to_complete: Histogram,
    /// Begin → RecordPersisted: time until the commit is durable.
    pub begin_to_persist: Histogram,
    /// Begin → Complete: time until the program observes the commit.
    pub begin_to_complete: Histogram,
    /// Complete → RecordPersisted: DP persistence lag (recorded only
    /// for delay-persistence designs).
    pub dp_persist_lag: Histogram,
}

/// Display labels for the histograms in [`CommitLatency`], in field
/// order.
pub const COMMIT_LATENCY_LABELS: [&str; 6] = [
    "begin_to_start",
    "start_to_persist",
    "persist_to_complete",
    "begin_to_persist",
    "begin_to_complete",
    "dp_persist_lag",
];

impl CommitLatency {
    /// Label → histogram pairs in [`COMMIT_LATENCY_LABELS`] order.
    pub fn named(&self) -> [(&'static str, &Histogram); 6] {
        [
            (COMMIT_LATENCY_LABELS[0], &self.begin_to_start),
            (COMMIT_LATENCY_LABELS[1], &self.start_to_persist),
            (COMMIT_LATENCY_LABELS[2], &self.persist_to_complete),
            (COMMIT_LATENCY_LABELS[3], &self.begin_to_persist),
            (COMMIT_LATENCY_LABELS[4], &self.begin_to_complete),
            (COMMIT_LATENCY_LABELS[5], &self.dp_persist_lag),
        ]
    }

    /// Record one fully-resolved transaction from its four phase
    /// timestamps. `delay_persistence` selects whether the lag
    /// histogram applies (Complete precedes RecordPersisted under DP,
    /// so all deltas saturate at zero rather than wrapping).
    pub fn record_commit(
        &mut self,
        begin: Cycle,
        start: Cycle,
        persisted: Cycle,
        complete: Cycle,
        delay_persistence: bool,
    ) {
        self.begin_to_start.record(start.saturating_sub(begin));
        self.start_to_persist
            .record(persisted.saturating_sub(start));
        self.persist_to_complete
            .record(complete.saturating_sub(persisted));
        self.begin_to_persist
            .record(persisted.saturating_sub(begin));
        self.begin_to_complete
            .record(complete.saturating_sub(begin));
        if delay_persistence {
            self.dp_persist_lag
                .record(persisted.saturating_sub(complete));
        }
    }

    /// Merge another set of commit-latency distributions.
    pub fn merge(&mut self, other: &CommitLatency) {
        self.begin_to_start.merge(&other.begin_to_start);
        self.start_to_persist.merge(&other.start_to_persist);
        self.persist_to_complete.merge(&other.persist_to_complete);
        self.begin_to_persist.merge(&other.begin_to_persist);
        self.begin_to_complete.merge(&other.begin_to_complete);
        self.dp_persist_lag.merge(&other.dp_persist_lag);
    }
}

/// Display labels for the per-kind log-entry histograms, in
/// `LogKindTag` order.
pub const LOG_KIND_LABELS: [&str; 3] = ["undo_redo", "redo", "commit"];

/// Display labels for the SLDE encoder-choice counters.
pub const ENCODER_CHOICE_LABELS: [&str; 3] = ["fpc", "dldc", "dldc_raw"];

/// Per-write log metrics collected at the NVM controller's log-append
/// path: programmed-bit distributions split by record kind, and counts
/// of which SLDE encoder each encoded log-data word chose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogWriteMetrics {
    /// Bits programmed per appended log entry, indexed by
    /// [`LOG_KIND_LABELS`] (`LogKindTag` order).
    pub entry_bits: [Histogram; 3],
    /// SLDE encoder choices per encoded log-data word, indexed by
    /// [`ENCODER_CHOICE_LABELS`].
    pub encoder_choices: [u64; 3],
}

impl LogWriteMetrics {
    /// Index into [`LogWriteMetrics::entry_bits`] for a record kind.
    pub fn kind_index(kind: LogKindTag) -> usize {
        match kind {
            LogKindTag::UndoRedo => 0,
            LogKindTag::Redo => 1,
            LogKindTag::Commit => 2,
        }
    }

    /// Merge another set of log-write metrics.
    pub fn merge(&mut self, other: &LogWriteMetrics) {
        for (a, b) in self.entry_bits.iter_mut().zip(other.entry_bits.iter()) {
            a.merge(b);
        }
        for (a, b) in self
            .encoder_choices
            .iter_mut()
            .zip(other.encoder_choices.iter())
        {
            *a += b;
        }
    }
}

/// The full telemetry set attached to [`crate::SimStats`]: commit
/// latency histograms, log-write metrics, and sampled time series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSet {
    /// Per-transaction commit-latency distributions.
    pub commit: CommitLatency,
    /// Log-append size distributions and encoder-choice counts.
    pub log_writes: LogWriteMetrics,
    /// Cycle-sampled occupancy series.
    pub series: SeriesSet,
}

impl MetricsSet {
    /// Merge another metric set; associative and commutative on the
    /// histogram side, concatenating on the series side.
    pub fn merge(&mut self, other: &MetricsSet) {
        self.commit.merge(&other.commit);
        self.log_writes.merge(&other.log_writes);
        self.series.merge(&other.series);
    }
}

/// Parse a `MORLOG_SAMPLE_CYCLES` value: a non-negative integer number
/// of cycles, where 0 disables sampling.
pub fn parse_sample_cycles(raw: &str) -> Result<Cycle, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "{SAMPLE_ENV} must be a cycle count, got empty string"
        ));
    }
    trimmed.parse::<Cycle>().map_err(|_| {
        format!("{SAMPLE_ENV} must be a non-negative integer cycle count (0 disables sampling), got {raw:?}")
    })
}

/// Read `MORLOG_SAMPLE_CYCLES` from the environment. Returns `None`
/// when unset (caller falls back to its configured default); exits
/// with code 2 on a malformed value, matching the `MORLOG_TXS` /
/// `MORLOG_JOBS` convention.
pub fn sample_cycles_from_env() -> Option<Cycle> {
    let raw = std::env::var(SAMPLE_ENV).ok()?;
    match parse_sample_cycles(&raw) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn bucket_boundaries_cover_u64_extremes() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of((1 << 20) - 1), 20);
        assert_eq!(Histogram::bucket_of(1 << 20), 21);
        assert_eq!(Histogram::bucket_of((1u64 << 63) - 1), 63);
        assert_eq!(Histogram::bucket_of(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lower(b)), b);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_upper(b)), b);
        }
    }

    #[test]
    fn extremes_do_not_overflow_and_quantiles_clamp() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.quantile_permille(1), 0);
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Rank 50 lands in bucket 6 ([32, 63]); upper bound 63 is
        // within the observed range so it is reported as-is.
        assert_eq!(h.p50(), 63);
        // Rank 99 lands in bucket 7 ([64, 127]); its upper bound 127
        // exceeds the observed max 100 and is clamped.
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile_permille(1000), 100);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Property-style over pseudo-random partitions: build three
        // histograms from a deterministic stream, then check the merge
        // laws hold exactly (full struct equality, not just summaries).
        let mut rng = DetRng::new(0xC0FFEE);
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..3000 {
            let raw = rng.next_u64();
            // Mix magnitudes: shift by a pseudo-random amount so all
            // buckets (including 0 and 64) are exercised.
            let v = raw >> (raw % 65).min(63);
            parts[i % 3].record(if i % 97 == 0 { 0 } else { v });
        }
        let [a, b, c] = parts;

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, a, "empty histogram must be the identity");
    }

    #[test]
    fn series_merge_concatenates() {
        let mut a = SeriesSet::with_period(64);
        a.push_sample(0, 1, 2, 3, 4, 5, 6);
        let mut b = SeriesSet::with_period(64);
        b.push_sample(64, 7, 8, 9, 10, 11, 12);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.wq_depth.cycles, vec![0, 64]);
        assert_eq!(merged.wq_depth.values, vec![1, 7]);
        assert_eq!(merged.pending_writebacks.values, vec![6, 12]);
        for (name, s) in merged.named() {
            assert_eq!(s.len(), 2, "{name}");
        }
    }

    #[test]
    fn commit_latency_saturates_for_dp_inversion() {
        let mut c = CommitLatency::default();
        // DP: Complete (cycle 12) precedes RecordPersisted (cycle 40).
        c.record_commit(10, 11, 40, 12, true);
        assert_eq!(c.persist_to_complete.max(), 0);
        assert_eq!(c.begin_to_complete.max(), 2);
        assert_eq!(c.begin_to_persist.max(), 30);
        assert_eq!(c.dp_persist_lag.max(), 28);
        // Sync: no lag sample is recorded.
        c.record_commit(0, 5, 20, 21, false);
        assert_eq!(c.dp_persist_lag.count(), 1);
        assert_eq!(c.persist_to_complete.max(), 1);
    }

    #[test]
    fn sample_cycles_parser_is_strict() {
        assert_eq!(parse_sample_cycles("0"), Ok(0));
        assert_eq!(parse_sample_cycles(" 8192 "), Ok(8192));
        assert!(parse_sample_cycles("").is_err());
        assert!(parse_sample_cycles("-1").is_err());
        assert!(parse_sample_cycles("8k").is_err());
        assert!(parse_sample_cycles("1.5").is_err());
    }
}
