//! Metric counters reported by the simulator.
//!
//! All component crates write into these plain counter structs; the
//! benchmark harness reads them to regenerate the paper's tables and
//! figures. Keeping them in `sim-core` avoids cross-crate dependencies
//! between substrates.

use crate::timing::{Cycle, Frequency};

/// Per-cache-level hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed in this level.
    pub misses: u64,
    /// Dirty lines written back from this level.
    pub writebacks: u64,
    /// Lines evicted (clean or dirty).
    pub evictions: u64,
}

impl CacheLevelStats {
    /// Hit rate in `[0,1]`; `None` when the level saw no accesses.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheLevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.evictions += other.evictions;
    }
}

/// NVMM device and controller counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Read requests serviced by NVMM.
    pub nvmm_reads: u64,
    /// Write requests serviced by NVMM (data + log). This is the "NVMM write
    /// traffic" of Fig. 13.
    pub nvmm_writes: u64,
    /// Write requests that were data (in-place) writes.
    pub data_writes: u64,
    /// Write requests that were log writes.
    pub log_writes: u64,
    /// TLC cells actually programmed (after DCW).
    pub cells_programmed: u64,
    /// Bits programmed (cells × bits-per-cell of the mapping used); the
    /// "log bits" of Table VI count only log writes.
    pub bits_programmed: u64,
    /// Bits programmed by log writes only.
    pub log_bits_programmed: u64,
    /// Total NVMM write energy in picojoules.
    pub write_energy_pj: f64,
    /// Write energy spent on log writes only, in picojoules.
    pub log_write_energy_pj: f64,
    /// Cycles any core spent stalled because a write queue was full.
    pub wq_full_stall_cycles: u64,
    /// Number of write-queue drain episodes.
    pub drains: u64,
    /// Reads delayed behind an in-progress drain.
    pub reads_blocked_by_drain: u64,
    /// Writes that were dropped because DCW found zero modified cells.
    pub silent_block_writes: u64,
    /// Total cycles NVMM reads spent from enqueue to completion.
    pub read_wait_cycles: u64,
    /// Times a log slice was extended with a temporary overflow region
    /// (§III-A option 2).
    pub log_overflow_growths: u64,
    /// Crash-time torn drains injected by the fault plan (a log slot
    /// persisted only a prefix of its words).
    pub faults_torn_drains: u64,
    /// Crash-time bit flips injected by the fault plan (escaped
    /// write-verify; must be caught by recovery's CRC check).
    pub faults_bit_flips: u64,
    /// Drain-time writes whose verify pass read back a mismatch (injected
    /// corruption or a stuck slot).
    pub write_verify_failures: u64,
    /// Re-programs performed after a failed verify.
    pub write_verify_retries: u64,
    /// Log slots remapped to spares after the retry budget was exhausted
    /// (stuck-at wear-out degradation path).
    pub stuck_slots_remapped: u64,
}

impl MemStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.nvmm_reads += other.nvmm_reads;
        self.nvmm_writes += other.nvmm_writes;
        self.data_writes += other.data_writes;
        self.log_writes += other.log_writes;
        self.cells_programmed += other.cells_programmed;
        self.bits_programmed += other.bits_programmed;
        self.log_bits_programmed += other.log_bits_programmed;
        self.write_energy_pj += other.write_energy_pj;
        self.log_write_energy_pj += other.log_write_energy_pj;
        self.wq_full_stall_cycles += other.wq_full_stall_cycles;
        self.drains += other.drains;
        self.reads_blocked_by_drain += other.reads_blocked_by_drain;
        self.silent_block_writes += other.silent_block_writes;
        self.read_wait_cycles += other.read_wait_cycles;
        self.log_overflow_growths += other.log_overflow_growths;
        self.faults_torn_drains += other.faults_torn_drains;
        self.faults_bit_flips += other.faults_bit_flips;
        self.write_verify_failures += other.write_verify_failures;
        self.write_verify_retries += other.write_verify_retries;
        self.stuck_slots_remapped += other.stuck_slots_remapped;
    }

    /// Whether any crash-time fault (torn drain or escaped bit flip) was
    /// injected — the damage classes recovery must detect and drop. The
    /// oracle relaxes strict durability exactly when this is set.
    pub fn crash_faults_injected(&self) -> bool {
        self.faults_torn_drains > 0 || self.faults_bit_flips > 0
    }
}

/// Logging-mechanism counters (§III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Undo+redo entries created.
    pub undo_redo_created: u64,
    /// Redo entries created.
    pub redo_created: u64,
    /// Entries coalesced into an existing buffer entry.
    pub coalesced: u64,
    /// Entries discarded as silent log writes (all bytes clean, §IV-A).
    pub silent_discarded: u64,
    /// Redo entries discarded because the line was evicted by the LLC or
    /// rewritten by the same transaction (§III-B).
    pub redo_discarded: u64,
    /// Log entries actually written to NVMM.
    pub entries_written: u64,
    /// Commit records written.
    pub commit_records: u64,
    /// Cycles transactions spent waiting at commit for log persistence.
    pub commit_stall_cycles: u64,
    /// Cycles stores stalled because a log buffer was full.
    pub buffer_full_stall_cycles: u64,
    /// Redo entries created after their transaction committed (tracked
    /// against the ulog counter by the delay-persistence protocol).
    pub post_commit_redo: u64,
    /// Times the log ring filled and appends had to wait for truncation.
    pub log_region_full_stalls: u64,
}

impl LogStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &LogStats) {
        self.undo_redo_created += other.undo_redo_created;
        self.redo_created += other.redo_created;
        self.coalesced += other.coalesced;
        self.silent_discarded += other.silent_discarded;
        self.redo_discarded += other.redo_discarded;
        self.entries_written += other.entries_written;
        self.commit_records += other.commit_records;
        self.commit_stall_cycles += other.commit_stall_cycles;
        self.buffer_full_stall_cycles += other.buffer_full_stall_cycles;
        self.post_commit_redo += other.post_commit_redo;
        self.log_region_full_stalls += other.log_region_full_stalls;
    }
}

/// Where one core-cycle went, for the cycle-attribution profiler.
///
/// The engine classifies every core × cycle pair into exactly one of
/// these buckets, so a run's [`CycleAttribution`] accounts sum exactly
/// to `cycles × cores`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Issuing instructions: compute, cache-hit service, store retire,
    /// transaction begin — the productive bucket.
    Busy,
    /// Waiting for a memory read (cache-miss service).
    ReadWait,
    /// Waiting for a memory read while a write-queue drain was in
    /// progress (drain interference on the read path).
    DrainWait,
    /// A store stalled on on-chip log-buffer backpressure.
    LogBufferStall,
    /// A store stalled because its log flush found the NVMM write queue
    /// full.
    WqStall,
    /// Waiting for commit: log persistence at `Tx_End`, or the §III-A
    /// transaction-begin backpressure behind a commit backlog.
    CommitWait,
    /// The core finished its trace while others were still running.
    Idle,
}

/// Per-component cycle accounts: how many core-cycles each stall class
/// consumed. All fields are in **core-cycles** (8 cores running for 10
/// cycles contribute 80), so the accounts of one run sum exactly to
/// `SimStats::cycles × cores` — the profiler's invariant, checked by
/// [`CycleAttribution::total`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Core-cycles spent issuing (compute, cache hits, store retire).
    pub busy: u64,
    /// Core-cycles waiting on cache-miss read service.
    pub read_wait: u64,
    /// Core-cycles waiting on reads delayed by a write-queue drain.
    pub drain_wait: u64,
    /// Core-cycles stores stalled on log-buffer backpressure.
    pub log_buffer_stall: u64,
    /// Core-cycles stores stalled on a full NVMM write queue.
    pub wq_stall: u64,
    /// Core-cycles waiting for commit persistence or begin backpressure.
    pub commit_wait: u64,
    /// Core-cycles idle after a core retired its whole trace.
    pub idle: u64,
}

impl CycleAttribution {
    /// Stable column labels, in field order (for tables and JSON).
    pub const LABELS: [&'static str; 7] = [
        "busy",
        "read_wait",
        "drain_wait",
        "log_buffer_stall",
        "wq_stall",
        "commit_wait",
        "idle",
    ];

    /// Charges one core-cycle to `kind`.
    pub fn add(&mut self, kind: StallKind) {
        match kind {
            StallKind::Busy => self.busy += 1,
            StallKind::ReadWait => self.read_wait += 1,
            StallKind::DrainWait => self.drain_wait += 1,
            StallKind::LogBufferStall => self.log_buffer_stall += 1,
            StallKind::WqStall => self.wq_stall += 1,
            StallKind::CommitWait => self.commit_wait += 1,
            StallKind::Idle => self.idle += 1,
        }
    }

    /// The accounts in [`CycleAttribution::LABELS`] order.
    pub fn values(&self) -> [u64; 7] {
        [
            self.busy,
            self.read_wait,
            self.drain_wait,
            self.log_buffer_stall,
            self.wq_stall,
            self.commit_wait,
            self.idle,
        ]
    }

    /// Sum of all accounts. Equals `cycles × cores` for a completed run
    /// (the attribution invariant).
    pub fn total(&self) -> u64 {
        self.values().iter().sum()
    }

    /// Adds another run's accounts into this one.
    pub fn merge(&mut self, other: &CycleAttribution) {
        self.busy += other.busy;
        self.read_wait += other.read_wait;
        self.drain_wait += other.drain_wait;
        self.log_buffer_stall += other.log_buffer_stall;
        self.wq_stall += other.wq_stall;
        self.commit_wait += other.commit_wait;
        self.idle += other.idle;
    }
}

/// Whole-run statistics for one simulated system.
///
/// # Example
///
/// ```
/// use morlog_sim_core::{Frequency, SimStats};
/// let mut s = SimStats::default();
/// s.cycles = 3_000_000_000;
/// s.transactions_committed = 600;
/// let tput = s.tx_per_second(Frequency::ghz(3.0));
/// assert!((tput - 600.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Transactions committed across all threads.
    pub transactions_committed: u64,
    /// Stores executed inside transactions.
    pub tx_stores: u64,
    /// Loads executed inside transactions.
    pub tx_loads: u64,
    /// Per-level cache counters: `[L1, L2, L3]` summed over cores.
    pub cache: [CacheLevelStats; 3],
    /// Memory-system counters.
    pub mem: MemStats,
    /// Logging counters.
    pub log: LogStats,
    /// Cycle-attribution accounts (core-cycles per stall class; sum is
    /// exactly `cycles × cores` for a completed run).
    pub attr: CycleAttribution,
    /// Telemetry: commit-latency histograms, log-write distributions
    /// and cycle-sampled occupancy series (see [`crate::metrics`]).
    pub metrics: crate::metrics::MetricsSet,
}

impl SimStats {
    /// Transaction throughput in transactions per simulated second.
    ///
    /// Returns 0 when no cycles elapsed.
    pub fn tx_per_second(&self, freq: Frequency) -> f64 {
        let secs = freq.cycles_to_seconds(self.cycles);
        if secs == 0.0 {
            0.0
        } else {
            self.transactions_committed as f64 / secs
        }
    }

    /// Adds another run's counters into this one (for multi-workload means).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.transactions_committed += other.transactions_committed;
        self.tx_stores += other.tx_stores;
        self.tx_loads += other.tx_loads;
        for (a, b) in self.cache.iter_mut().zip(other.cache.iter()) {
            a.merge(b);
        }
        self.mem.merge(&other.mem);
        self.log.merge(&other.log);
        self.attr.merge(&other.attr);
        self.metrics.merge(&other.metrics);
    }
}

/// Coverage counters of one crash-point model-checking sweep
/// (`crates/checker`): how many persist-point crash states the reference
/// schedule contained, how many were pruned as equivalent, and how many
/// replay-crash-recover-verify runs actually executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Persist events in the reference schedule (crash points `0..=events`).
    pub events: u64,
    /// Candidate crash points (reference events plus the initial state).
    pub points_total: u64,
    /// Points skipped because the persist-domain state hash did not change
    /// from the previous event (equivalence pruning).
    pub pruned: u64,
    /// Points dropped by an explicit `MORLOG_CHECK_MAX_POINTS` cap.
    pub capped: u64,
    /// Points actually replayed, crashed and recovered.
    pub explored: u64,
    /// Replay runs whose recovery the oracle verified (two per explored
    /// point when the torn-drain fault variant is enabled).
    pub verified: u64,
    /// Verification failures (counterexamples found).
    pub failures: u64,
}

impl CheckStats {
    /// Adds another sweep's counters into this one.
    pub fn merge(&mut self, other: &CheckStats) {
        self.events += other.events;
        self.points_total += other.points_total;
        self.pruned += other.pruned;
        self.capped += other.capped;
        self.explored += other.explored;
        self.verified += other.verified;
        self.failures += other.failures;
    }
}

/// Coverage counters of one coverage-guided random crash campaign
/// (`crates/checker` fuzz mode). Invariants the results validator checks:
/// `executed + pruned == sampled` and `verified + failures == executed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Persist events in the reference schedule (the sampling universe is
    /// crash points `0..=events`).
    pub events: u64,
    /// Campaign items after dedup: base draws plus the neighborhood points
    /// queued around novel-coverage hits, each paired with its fault
    /// variant.
    pub sampled: u64,
    /// Draws whose `(event kind, progress phase)` coverage bucket had never
    /// been seen before in this campaign (these trigger neighborhood
    /// resampling).
    pub novel: u64,
    /// Sampled items skipped because the persist-domain state hash did not
    /// change at their crash point (equivalence pruning, as in the
    /// exhaustive mode).
    pub pruned: u64,
    /// Items actually replayed, crashed and recovered.
    pub executed: u64,
    /// Replays whose recovery the oracle verified.
    pub verified: u64,
    /// Verification failures (counterexamples found).
    pub failures: u64,
}

impl FuzzStats {
    /// Adds another campaign's counters into this one.
    pub fn merge(&mut self, other: &FuzzStats) {
        self.events += other.events;
        self.sampled += other.sampled;
        self.novel += other.novel;
        self.pruned += other.pruned;
        self.executed += other.executed;
        self.verified += other.verified;
        self.failures += other.failures;
    }
}

/// Geometric mean of a series of ratios (the paper reports Gmean bars).
///
/// Returns `None` for an empty series or if any value is non-positive.
///
/// # Example
///
/// ```
/// use morlog_sim_core::stats::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(geometric_mean(&[]).is_none());
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        let s = CacheLevelStats::default();
        assert_eq!(s.hit_rate(), None);
        let s = CacheLevelStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            transactions_committed: 1,
            ..Default::default()
        };
        a.mem.nvmm_writes = 10;
        a.cache[0].hits = 5;
        a.log.coalesced = 2;
        let mut b = SimStats {
            transactions_committed: 2,
            ..Default::default()
        };
        b.mem.nvmm_writes = 20;
        b.cache[0].hits = 7;
        b.log.coalesced = 3;
        a.merge(&b);
        assert_eq!(a.transactions_committed, 3);
        assert_eq!(a.mem.nvmm_writes, 30);
        assert_eq!(a.cache[0].hits, 12);
        assert_eq!(a.log.coalesced, 5);
    }

    #[test]
    fn attribution_accounts_add_and_total() {
        let mut a = CycleAttribution::default();
        a.add(StallKind::Busy);
        a.add(StallKind::Busy);
        a.add(StallKind::WqStall);
        a.add(StallKind::Idle);
        assert_eq!(a.busy, 2);
        assert_eq!(a.wq_stall, 1);
        assert_eq!(a.total(), 4);
        let mut b = CycleAttribution::default();
        b.add(StallKind::CommitWait);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.values().len(), CycleAttribution::LABELS.len());
    }

    #[test]
    fn throughput_zero_when_no_cycles() {
        let s = SimStats::default();
        assert_eq!(s.tx_per_second(Frequency::ghz(3.0)), 0.0);
    }

    #[test]
    fn gmean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
        assert!(geometric_mean(&[f64::NAN]).is_none());
    }

    #[test]
    fn gmean_of_constant_is_constant() {
        let g = geometric_mean(&[2.5, 2.5, 2.5]).unwrap();
        assert!((g - 2.5).abs() < 1e-12);
    }
}
