//! Simulated-time and energy units.
//!
//! The simulator counts processor cycles; device parameters (Table III) are
//! specified in nanoseconds and picojoules. [`Frequency`] converts between
//! the two domains.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A processor-cycle timestamp or duration.
pub type Cycle = u64;

/// A duration in nanoseconds (device-side timing, Table III).
///
/// # Example
///
/// ```
/// use morlog_sim_core::NanoSeconds;
/// let t = NanoSeconds::new(15.2) + NanoSeconds::new(4.8);
/// assert!((t.as_f64() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct NanoSeconds(f64);

impl NanoSeconds {
    /// Creates a duration from a floating-point nanosecond count.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn new(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns}");
        NanoSeconds(ns)
    }

    /// A zero-length duration.
    pub fn zero() -> Self {
        NanoSeconds(0.0)
    }

    /// Returns the duration as `f64` nanoseconds.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: NanoSeconds) -> NanoSeconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(self, factor: f64) -> NanoSeconds {
        NanoSeconds::new(self.0 * factor)
    }
}

impl Add for NanoSeconds {
    type Output = NanoSeconds;
    fn add(self, rhs: NanoSeconds) -> NanoSeconds {
        NanoSeconds(self.0 + rhs.0)
    }
}

impl AddAssign for NanoSeconds {
    fn add_assign(&mut self, rhs: NanoSeconds) {
        self.0 += rhs.0;
    }
}

impl Sub for NanoSeconds {
    type Output = NanoSeconds;
    fn sub(self, rhs: NanoSeconds) -> NanoSeconds {
        NanoSeconds::new(self.0 - rhs.0)
    }
}

impl Sum for NanoSeconds {
    fn sum<I: Iterator<Item = NanoSeconds>>(iter: I) -> NanoSeconds {
        iter.fold(NanoSeconds::zero(), Add::add)
    }
}

impl fmt::Display for NanoSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}ns", self.0)
    }
}

/// An energy amount in picojoules (Table III cell energies).
///
/// # Example
///
/// ```
/// use morlog_sim_core::PicoJoules;
/// let e: PicoJoules = [PicoJoules::new(2.0), PicoJoules::new(1.5)].into_iter().sum();
/// assert!((e.as_f64() - 3.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PicoJoules(f64);

impl PicoJoules {
    /// Creates an energy amount.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    pub fn new(pj: f64) -> Self {
        assert!(pj.is_finite() && pj >= 0.0, "invalid energy: {pj}");
        PicoJoules(pj)
    }

    /// Zero energy.
    pub fn zero() -> Self {
        PicoJoules(0.0)
    }

    /// Returns the energy as `f64` picojoules.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        iter.fold(PicoJoules::zero(), Add::add)
    }
}

impl fmt::Display for PicoJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}pJ", self.0)
    }
}

/// A core clock frequency, used to convert device nanoseconds into cycles.
///
/// # Example
///
/// ```
/// use morlog_sim_core::{Frequency, NanoSeconds};
/// let f = Frequency::ghz(3.0); // the paper's 3 GHz cores
/// assert_eq!(f.ns_to_cycles(NanoSeconds::new(25.0)), 75);
/// assert_eq!(f.ns_to_cycles(NanoSeconds::new(0.1)), 1); // rounds up
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency {
    ghz: f64,
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not a positive finite number.
    pub fn ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz}");
        Frequency { ghz }
    }

    /// Returns the frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        self.ghz
    }

    /// Converts a nanosecond duration to cycles, rounding up (a device busy
    /// for a fraction of a cycle occupies the whole cycle).
    pub fn ns_to_cycles(self, ns: NanoSeconds) -> Cycle {
        (ns.as_f64() * self.ghz).ceil() as Cycle
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(self, cycles: Cycle) -> NanoSeconds {
        NanoSeconds::new(cycles as f64 / self.ghz)
    }

    /// Converts a cycle count to seconds (for throughput reporting).
    pub fn cycles_to_seconds(self, cycles: Cycle) -> f64 {
        cycles as f64 / (self.ghz * 1e9)
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::ghz(3.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}GHz", self.ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_rounds_up() {
        let f = Frequency::ghz(3.0);
        assert_eq!(f.ns_to_cycles(NanoSeconds::zero()), 0);
        assert_eq!(f.ns_to_cycles(NanoSeconds::new(1.0)), 3);
        assert_eq!(f.ns_to_cycles(NanoSeconds::new(15.2)), 46); // 45.6 -> 46
        assert_eq!(f.ns_to_cycles(NanoSeconds::new(150.0)), 450);
    }

    #[test]
    fn cycles_round_trip() {
        let f = Frequency::ghz(2.0);
        let ns = f.cycles_to_ns(100);
        assert!((ns.as_f64() - 50.0).abs() < 1e-9);
        assert!((f.cycles_to_seconds(2_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = NanoSeconds::new(10.0);
        let b = NanoSeconds::new(4.0);
        assert!(((a - b).as_f64() - 6.0).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        assert!((a.scaled(3.0).as_f64() - 30.0).abs() < 1e-12);
        let mut acc = NanoSeconds::zero();
        acc += a;
        assert_eq!(acc, a);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        NanoSeconds::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn zero_frequency_panics() {
        Frequency::ghz(0.0);
    }

    #[test]
    fn energy_sums() {
        let total: PicoJoules = (0..4).map(|_| PicoJoules::new(1.5)).sum();
        assert!((total.as_f64() - 6.0).abs() < 1e-12);
    }
}
