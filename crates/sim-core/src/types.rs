//! Physical addresses, cache-line geometry and raw line data.

use std::fmt;

/// Number of bytes in a cache line / NVMM write block (64 B, as in the paper).
pub const LINE_BYTES: usize = 64;
/// Number of bytes in a machine word (the paper logs at 64-bit granularity).
pub const WORD_BYTES: usize = 8;
/// Number of 64-bit words per cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;

/// A byte-granularity physical address.
///
/// The paper uses 48-bit physical addresses in its log entries (Fig. 7); we
/// store the full `u64` but provide [`Addr::truncated48`] for entry layout
/// arithmetic.
///
/// # Example
///
/// ```
/// use morlog_sim_core::Addr;
/// let a = Addr::new(0x40);
/// assert_eq!(a.word_index(), 0);
/// assert_eq!(Addr::new(0x48).word_index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte offset.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address truncated to the 48 bits stored in log entries.
    pub fn truncated48(self) -> u64 {
        self.0 & 0x0000_FFFF_FFFF_FFFF
    }

    /// Returns the cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES as u64)
    }

    /// Returns the index of the 64-bit word within its cache line.
    pub fn word_index(self) -> usize {
        ((self.0 % LINE_BYTES as u64) / WORD_BYTES as u64) as usize
    }

    /// Returns the byte offset within its 64-bit word.
    pub fn byte_in_word(self) -> usize {
        (self.0 % WORD_BYTES as u64) as usize
    }

    /// Returns the address aligned down to its containing word.
    pub fn word_base(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES as u64 - 1))
    }

    /// Returns the address offset by `bytes`.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-granularity address (byte address divided by [`LINE_BYTES`]).
///
/// # Example
///
/// ```
/// use morlog_sim_core::{Addr, LineAddr};
/// let l: LineAddr = Addr::new(0x1040).line();
/// assert_eq!(l.base(), Addr::new(0x1040));
/// assert_eq!(l.word_addr(2), Addr::new(0x1050));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index (byte address / 64).
    pub fn from_index(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the line index (byte address / 64).
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES as u64)
    }

    /// Returns the byte address of word `word` (0..8) within the line.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn word_addr(self, word: usize) -> Addr {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        Addr(self.0 * LINE_BYTES as u64 + (word * WORD_BYTES) as u64)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// The raw 64 bytes of one cache line / NVMM block.
///
/// Provides word-granularity accessors used by the logging hardware (which
/// operates on 64-bit words) and byte-granularity accessors used by the
/// encoders (which operate on per-byte dirty flags).
///
/// # Example
///
/// ```
/// use morlog_sim_core::LineData;
/// let mut d = LineData::zeroed();
/// d.set_word(3, 0xDEAD_BEEF);
/// assert_eq!(d.word(3), 0xDEAD_BEEF);
/// assert_eq!(d.word(0), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData([u8; LINE_BYTES]);

impl LineData {
    /// A line of all-zero bytes.
    pub fn zeroed() -> Self {
        LineData([0; LINE_BYTES])
    }

    /// Wraps raw bytes as a line.
    pub fn from_bytes(bytes: [u8; LINE_BYTES]) -> Self {
        LineData(bytes)
    }

    /// Returns the raw bytes.
    pub fn bytes(&self) -> &[u8; LINE_BYTES] {
        &self.0
    }

    /// Returns the raw bytes mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8; LINE_BYTES] {
        &mut self.0
    }

    /// Reads word `index` (little-endian), `index` in `0..WORDS_PER_LINE`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= WORDS_PER_LINE`.
    pub fn word(&self, index: usize) -> u64 {
        let start = index * WORD_BYTES;
        u64::from_le_bytes(
            self.0[start..start + WORD_BYTES]
                .try_into()
                .expect("word slice"),
        )
    }

    /// Writes word `index` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `index >= WORDS_PER_LINE`.
    pub fn set_word(&mut self, index: usize, value: u64) {
        let start = index * WORD_BYTES;
        self.0[start..start + WORD_BYTES].copy_from_slice(&value.to_le_bytes());
    }

    /// Returns an iterator over the eight words of the line.
    pub fn words(&self) -> impl Iterator<Item = u64> + '_ {
        (0..WORDS_PER_LINE).map(move |i| self.word(i))
    }
}

impl Default for LineData {
    fn default() -> Self {
        LineData::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for i in 0..WORDS_PER_LINE {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:016x}", self.word(i))?;
        }
        write!(f, "]")
    }
}

/// Computes the per-byte dirty mask between two 64-bit words.
///
/// Bit `i` of the result is set iff byte `i` (little-endian) differs between
/// `old` and `new`. This is the "dirty flag" the paper attaches to log buffer
/// entries and L1 words (§IV-A).
///
/// # Example
///
/// ```
/// use morlog_sim_core::types::dirty_byte_mask;
/// assert_eq!(dirty_byte_mask(0, 0), 0);
/// assert_eq!(dirty_byte_mask(0x00FF, 0x00FE), 0b0000_0001);
/// assert_eq!(dirty_byte_mask(0, u64::MAX), 0xFF);
/// ```
pub fn dirty_byte_mask(old: u64, new: u64) -> u8 {
    let diff = old ^ new;
    let mut mask = 0u8;
    for byte in 0..8 {
        if (diff >> (byte * 8)) & 0xFF != 0 {
            mask |= 1 << byte;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_word() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.line().base().as_u64(), 0x1234_5640);
        assert_eq!(a.word_index(), 7);
        assert_eq!(a.byte_in_word(), 0);
        assert_eq!(a.word_base(), a);
        let b = Addr::new(0x43);
        assert_eq!(b.word_index(), 0);
        assert_eq!(b.byte_in_word(), 3);
        assert_eq!(b.word_base(), Addr::new(0x40));
    }

    #[test]
    fn addr_truncated48_masks_high_bits() {
        let a = Addr::new(0xFFFF_0000_0000_1234);
        assert_eq!(a.truncated48(), 0x1234);
    }

    #[test]
    fn line_addr_round_trip() {
        let l = LineAddr::from_index(42);
        assert_eq!(l.index(), 42);
        assert_eq!(l.base().as_u64(), 42 * 64);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.word_addr(7).as_u64(), 42 * 64 + 56);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_addr_word_out_of_range_panics() {
        LineAddr::from_index(0).word_addr(8);
    }

    #[test]
    fn line_data_words_round_trip() {
        let mut d = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            d.set_word(i, (i as u64) << 32 | 0xABCD);
        }
        for i in 0..WORDS_PER_LINE {
            assert_eq!(d.word(i), (i as u64) << 32 | 0xABCD);
        }
        let collected: Vec<u64> = d.words().collect();
        assert_eq!(collected.len(), 8);
        assert_eq!(collected[3], 3u64 << 32 | 0xABCD);
    }

    #[test]
    fn line_data_little_endian_layout() {
        let mut d = LineData::zeroed();
        d.set_word(0, 0x0102_0304_0506_0708);
        assert_eq!(d.bytes()[0], 0x08);
        assert_eq!(d.bytes()[7], 0x01);
    }

    #[test]
    fn dirty_byte_mask_examples() {
        assert_eq!(dirty_byte_mask(0xFFFF_FFFF, 0xFFFF_FFFF), 0);
        assert_eq!(dirty_byte_mask(0x0000_0000_0000_00FF, 0), 0b1);
        assert_eq!(dirty_byte_mask(0xFF00_0000_0000_0000, 0), 0b1000_0000);
        // Paper Fig. 11: A1 -> A2 changes every byte.
        assert_eq!(
            dirty_byte_mask(0x000300F9000500FE, 0xCDEFCDEFCDEFCDEF),
            0xFF
        );
    }

    #[test]
    fn debug_impls_nonempty() {
        assert!(!format!("{:?}", Addr::new(0)).is_empty());
        assert!(!format!("{:?}", LineAddr::from_index(0)).is_empty());
        assert!(!format!("{:?}", LineData::zeroed()).is_empty());
    }
}
