//! Structured event tracing for the simulator (the observability layer).
//!
//! Every component of the simulated machine can emit typed
//! [`TraceEvent`]s through a shared [`Tracer`] handle: log appends and
//! truncations, Fig. 8 word state-machine transitions, write-queue
//! accept/drain/watermark crossings, commit-protocol phases, and
//! crash/recovery steps. Events land in a bounded ring buffer
//! ([`TraceBuffer`]) and can be serialized to JSON Lines for offline
//! analysis.
//!
//! Tracing is **disabled by default** and costs one branch per
//! instrumentation site when off: [`Tracer::emit`] takes a closure, so
//! event construction is never executed on the disabled path. Enable it
//! per run via [`crate::config::TraceConfig`] or globally with the
//! `MORLOG_TRACE` environment variable (`1`/`true` for the default
//! buffer capacity, a number for a custom capacity, `0`/unset for off).
//!
//! # Example
//!
//! ```
//! use morlog_sim_core::trace::{TraceEvent, Tracer};
//!
//! let tracer = Tracer::with_capacity(16);
//! tracer.emit(42, || TraceEvent::WqAccept { channel: 0, occupancy: 1, is_log: false });
//! let records = tracer.records();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].cycle, 42);
//! assert!(tracer.to_jsonl().contains("\"event\":\"wq_accept\""));
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ids::TxKey;
use crate::timing::Cycle;

/// Default ring capacity when tracing is enabled without an explicit size.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The environment variable that force-enables tracing for every run.
pub const TRACE_ENV: &str = "MORLOG_TRACE";

/// Parses a `MORLOG_TRACE` value: `Ok(None)` disables tracing
/// (empty/`0`/`false`), `Ok(Some(capacity))` enables it (`1`/`true` →
/// [`DEFAULT_TRACE_CAPACITY`], any other non-negative integer → that
/// ring capacity). Anything else is an error so a typo cannot silently
/// drop a trace.
pub fn parse_trace_env(raw: &str) -> Result<Option<usize>, String> {
    match raw.trim() {
        "" | "0" | "false" => Ok(None),
        "1" | "true" => Ok(Some(DEFAULT_TRACE_CAPACITY)),
        other => other.parse::<usize>().map(Some).map_err(|_| {
            format!(
                "{TRACE_ENV} must be 0/false, 1/true, or a ring capacity \
                 in records, got {raw:?}"
            )
        }),
    }
}

/// A word's position in the Fig. 8 logging state machine, as seen by the
/// trace stream. Mirrors the cache crate's `WordLogState` without a
/// dependency (sim-core is the leaf crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordStateTag {
    /// Not modified by the owning transaction.
    Clean,
    /// Modified; its undo+redo entry is still buffered on-chip.
    Dirty,
    /// Its undo+redo entry persisted in the log.
    URLog,
    /// Re-modified after `URLog`; the line buffers the newest redo data.
    ULog,
}

impl WordStateTag {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            WordStateTag::Clean => "clean",
            WordStateTag::Dirty => "dirty",
            WordStateTag::URLog => "urlog",
            WordStateTag::ULog => "ulog",
        }
    }
}

/// The kind of log record an append carried (mirror of the nvm crate's
/// `LogRecordKind`, kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKindTag {
    /// An undo+redo entry.
    UndoRedo,
    /// A redo-only entry.
    Redo,
    /// A commit record.
    Commit,
}

impl LogKindTag {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            LogKindTag::UndoRedo => "undo_redo",
            LogKindTag::Redo => "redo",
            LogKindTag::Commit => "commit",
        }
    }
}

/// A commit-protocol milestone (§III-A synchronous / §III-C
/// delay-persistence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhaseTag {
    /// `Tx_Begin`: the transaction opened.
    Begin,
    /// `Tx_End` reached: the commit protocol started.
    Start,
    /// The commit record persisted in the log ring.
    RecordPersisted,
    /// The program observes the transaction as committed.
    Complete,
}

impl CommitPhaseTag {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            CommitPhaseTag::Begin => "begin",
            CommitPhaseTag::Start => "start",
            CommitPhaseTag::RecordPersisted => "record_persisted",
            CommitPhaseTag::Complete => "complete",
        }
    }
}

/// A step of the §III-E recovery routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStepTag {
    /// The log scan completed; the payload counts scanned records.
    Scan,
    /// Winner determination finished; the payload counts winners.
    Winners,
    /// Roll-forward applied; the payload counts redone transactions.
    RollForward,
    /// Roll-back applied; the payload counts undone transactions.
    RollBack,
    /// Recovery finished and the log was cleared.
    Done,
    /// Recovery was cut short by a second crash mid-replay; the log region
    /// is intact and another pass must run.
    Interrupted,
}

impl RecoveryStepTag {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStepTag::Scan => "scan",
            RecoveryStepTag::Winners => "winners",
            RecoveryStepTag::RollForward => "roll_forward",
            RecoveryStepTag::RollBack => "roll_back",
            RecoveryStepTag::Done => "done",
            RecoveryStepTag::Interrupted => "interrupted",
        }
    }
}

/// One typed simulator event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A log record was accepted into a slice's ring (and the ADR domain).
    LogAppend {
        /// The log slice appended to.
        slice: u32,
        /// Byte offset of the new slot in the ring.
        offset: u64,
        /// What the slot carries.
        kind: LogKindTag,
        /// The owning transaction.
        key: TxKey,
    },
    /// A slice's head advanced, deleting records of committed transactions.
    LogTruncate {
        /// The truncated slice.
        slice: u32,
        /// Head before the truncation.
        old_head: u64,
        /// Head after the truncation.
        new_head: u64,
    },
    /// A word moved in the Fig. 8 state machine.
    WordTransition {
        /// The owning transaction.
        key: TxKey,
        /// The word's home address.
        addr: u64,
        /// State before the event.
        from: WordStateTag,
        /// State after the event.
        to: WordStateTag,
    },
    /// A write entered a channel's write queue (the persist domain).
    WqAccept {
        /// The channel accepting the write.
        channel: u32,
        /// Queue occupancy after acceptance.
        occupancy: u32,
        /// Whether the write targets the log region.
        is_log: bool,
    },
    /// A channel's write queue crossed the high watermark and began
    /// draining (reads blocked).
    WqDrainStart {
        /// The draining channel.
        channel: u32,
        /// Queue occupancy at the crossing.
        occupancy: u32,
    },
    /// A draining channel fell to the low mark and resumed read priority.
    WqDrainEnd {
        /// The channel that stopped draining.
        channel: u32,
        /// Queue occupancy at the crossing.
        occupancy: u32,
    },
    /// The commit protocol reached a milestone for a transaction.
    CommitPhase {
        /// The committing transaction.
        key: TxKey,
        /// Which milestone.
        phase: CommitPhaseTag,
    },
    /// A dirty line left a cache level toward the persist domain.
    CacheWriteback {
        /// Cache level the line left (1 = L1, 3 = LLC).
        level: u32,
        /// The line's index.
        line: u64,
    },
    /// A force-write-back scan ran; the payload counts scheduled
    /// writebacks.
    FwbScan {
        /// Dirty lines the scan queued for writeback.
        writebacks: u64,
    },
    /// A crash was injected: volatile state vanished, the ADR flush ran.
    Crash,
    /// The recovery routine completed one of its steps.
    Recovery {
        /// Which step.
        step: RecoveryStepTag,
        /// Step-specific count (records scanned, transactions redone, …).
        count: u64,
    },
}

impl TraceEvent {
    /// Stable lower-case label naming the event type in the JSONL stream.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::LogAppend { .. } => "log_append",
            TraceEvent::LogTruncate { .. } => "log_truncate",
            TraceEvent::WordTransition { .. } => "word_transition",
            TraceEvent::WqAccept { .. } => "wq_accept",
            TraceEvent::WqDrainStart { .. } => "wq_drain_start",
            TraceEvent::WqDrainEnd { .. } => "wq_drain_end",
            TraceEvent::CommitPhase { .. } => "commit_phase",
            TraceEvent::CacheWriteback { .. } => "cache_writeback",
            TraceEvent::FwbScan { .. } => "fwb_scan",
            TraceEvent::Crash => "crash",
            TraceEvent::Recovery { .. } => "recovery",
        }
    }

    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEvent::LogAppend {
                slice,
                offset,
                kind,
                key,
            } => {
                let _ = write!(
                    out,
                    ",\"slice\":{},\"offset\":{},\"kind\":\"{}\",\"thread\":{},\"txid\":{}",
                    slice,
                    offset,
                    kind.label(),
                    key.thread.as_u8(),
                    key.txid.as_u16()
                );
            }
            TraceEvent::LogTruncate {
                slice,
                old_head,
                new_head,
            } => {
                let _ = write!(
                    out,
                    ",\"slice\":{slice},\"old_head\":{old_head},\"new_head\":{new_head}"
                );
            }
            TraceEvent::WordTransition {
                key,
                addr,
                from,
                to,
            } => {
                let _ = write!(
                    out,
                    ",\"thread\":{},\"txid\":{},\"addr\":{},\"from\":\"{}\",\"to\":\"{}\"",
                    key.thread.as_u8(),
                    key.txid.as_u16(),
                    addr,
                    from.label(),
                    to.label()
                );
            }
            TraceEvent::WqAccept {
                channel,
                occupancy,
                is_log,
            } => {
                let _ = write!(
                    out,
                    ",\"channel\":{channel},\"occupancy\":{occupancy},\"is_log\":{is_log}"
                );
            }
            TraceEvent::WqDrainStart { channel, occupancy }
            | TraceEvent::WqDrainEnd { channel, occupancy } => {
                let _ = write!(out, ",\"channel\":{channel},\"occupancy\":{occupancy}");
            }
            TraceEvent::CommitPhase { key, phase } => {
                let _ = write!(
                    out,
                    ",\"thread\":{},\"txid\":{},\"phase\":\"{}\"",
                    key.thread.as_u8(),
                    key.txid.as_u16(),
                    phase.label()
                );
            }
            TraceEvent::CacheWriteback { level, line } => {
                let _ = write!(out, ",\"level\":{level},\"line\":{line}");
            }
            TraceEvent::FwbScan { writebacks } => {
                let _ = write!(out, ",\"writebacks\":{writebacks}");
            }
            TraceEvent::Crash => {}
            TraceEvent::Recovery { step, count } => {
                let _ = write!(out, ",\"step\":\"{}\",\"count\":{}", step.label(), count);
            }
        }
    }
}

/// One event with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated cycle at which the event happened.
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Serializes the record as one JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"cycle\":{},\"event\":\"{}\"",
            self.cycle,
            self.event.label()
        );
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Bounded event ring: the newest `capacity` records are kept; older
/// records are dropped (and counted) when the ring wraps.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            ring: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Cloneable handle to a shared trace ring.
///
/// All components of one simulated [`System`] hold clones of the same
/// handle; a disabled handle carries no buffer and [`Tracer::emit`] is a
/// single branch.
///
/// [`System`]: ../../morlog_sim/struct.System.html
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Tracer {
    /// A disabled handle (the default): emits are no-ops.
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// An enabled handle with a ring of `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            buf: Some(Arc::new(Mutex::new(TraceBuffer::new(capacity)))),
        }
    }

    /// Builds a handle from the `MORLOG_TRACE` environment variable:
    /// unset/empty/`0`/`false` → disabled; `1`/`true` → enabled with
    /// [`DEFAULT_TRACE_CAPACITY`]; any other integer → enabled with that
    /// capacity. A malformed value aborts with exit code 2, matching the
    /// `MORLOG_TXS` / `MORLOG_JOBS` convention.
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV) {
            Err(_) => Tracer::disabled(),
            Ok(v) => match parse_trace_env(&v) {
                Ok(None) => Tracer::disabled(),
                Ok(Some(n)) => Tracer::with_capacity(n),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            },
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records an event. The closure only runs when tracing is enabled,
    /// so instrumentation sites cost one branch when tracing is off.
    #[inline]
    pub fn emit(&self, cycle: Cycle, event: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.buf {
            let record = TraceRecord {
                cycle,
                event: event(),
            };
            buf.lock().expect("trace buffer poisoned").push(record);
        }
    }

    /// Snapshot of the retained records, oldest first (empty when
    /// disabled).
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.buf {
            None => Vec::new(),
            Some(buf) => buf
                .lock()
                .expect("trace buffer poisoned")
                .records()
                .copied()
                .collect(),
        }
    }

    /// Retained record count (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.buf {
            None => 0,
            Some(buf) => buf.lock().expect("trace buffer poisoned").len(),
        }
    }

    /// Whether no records are retained (always `true` when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring wrapped (0 when disabled).
    pub fn dropped(&self) -> u64 {
        match &self.buf {
            None => 0,
            Some(buf) => buf.lock().expect("trace buffer poisoned").dropped(),
        }
    }

    /// Serializes the retained records as JSON Lines (one event object
    /// per line, oldest first; empty string when disabled).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ThreadId, TxId};

    fn key() -> TxKey {
        TxKey::new(ThreadId::new(2), TxId::new(7))
    }

    #[test]
    fn disabled_tracer_collects_nothing() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.emit(1, || {
            ran = true;
            TraceEvent::Crash
        });
        assert!(!ran, "closure must not run when disabled");
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn clones_share_one_ring() {
        let t = Tracer::with_capacity(8);
        let c = t.clone();
        c.emit(5, || TraceEvent::Crash);
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].cycle, 5);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.emit(i, || TraceEvent::FwbScan { writebacks: i });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4], "newest records are retained");
    }

    #[test]
    fn jsonl_shapes_are_stable() {
        let t = Tracer::with_capacity(32);
        t.emit(1, || TraceEvent::LogAppend {
            slice: 0,
            offset: 64,
            kind: LogKindTag::UndoRedo,
            key: key(),
        });
        t.emit(2, || TraceEvent::WordTransition {
            key: key(),
            addr: 4096,
            from: WordStateTag::Dirty,
            to: WordStateTag::URLog,
        });
        t.emit(3, || TraceEvent::WqDrainStart {
            channel: 1,
            occupancy: 52,
        });
        t.emit(4, || TraceEvent::CommitPhase {
            key: key(),
            phase: CommitPhaseTag::RecordPersisted,
        });
        t.emit(5, || TraceEvent::Recovery {
            step: RecoveryStepTag::Scan,
            count: 12,
        });
        let lines: Vec<String> = t.to_jsonl().lines().map(String::from).collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"cycle\":1,\"event\":\"log_append\",\"slice\":0,\"offset\":64,\
             \"kind\":\"undo_redo\",\"thread\":2,\"txid\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"cycle\":2,\"event\":\"word_transition\",\"thread\":2,\"txid\":7,\
             \"addr\":4096,\"from\":\"dirty\",\"to\":\"urlog\"}"
        );
        assert_eq!(
            lines[2],
            "{\"cycle\":3,\"event\":\"wq_drain_start\",\"channel\":1,\"occupancy\":52}"
        );
        assert_eq!(
            lines[3],
            "{\"cycle\":4,\"event\":\"commit_phase\",\"thread\":2,\"txid\":7,\
             \"phase\":\"record_persisted\"}"
        );
        assert_eq!(
            lines[4],
            "{\"cycle\":5,\"event\":\"recovery\",\"step\":\"scan\",\"count\":12}"
        );
    }

    #[test]
    fn env_parsing() {
        // Uses explicit constructors; from_env is exercised by the bench
        // harness integration (environment mutation is racy in tests).
        assert!(!Tracer::default().is_enabled());
        assert!(Tracer::with_capacity(1).is_enabled());
    }
}
