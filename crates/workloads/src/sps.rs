//! SPS: swap two random entries in an array (Table IV).
//!
//! The array entries are initialised with the same value, which is why the
//! paper calls out SPS-Large as the workload where clean-log-data discarding
//! shines (§VI-B): a swap of equal-valued entries writes almost entirely
//! clean bytes.

use morlog_sim_core::WORD_BYTES;

use crate::registry::WorkloadConfig;
use crate::trace::ThreadTrace;
use crate::workspace::Workspace;

/// Entries per thread-private array.
const ENTRIES: u64 = 1024;

/// Generates one thread's SPS trace.
pub fn generate_thread(cfg: &WorkloadConfig, thread: usize) -> ThreadTrace {
    let mut ws = Workspace::new(cfg.data_base, thread, cfg.seed);
    let entry_bytes = cfg.dataset.bytes();
    let words_per_entry = entry_bytes / WORD_BYTES as u64;
    let array = ws.pmalloc(ENTRIES * entry_bytes);

    // Initialise every entry with the same pattern (non-transactional
    // setup, like the benchmark's populate phase).
    for e in 0..ENTRIES {
        for w in 0..words_per_entry {
            ws.store(
                array.offset(e * entry_bytes + w * WORD_BYTES as u64),
                0x0101_0101_0101_0101,
            );
        }
    }
    // A tiny fraction of entries differ so swaps are not all no-ops.
    for e in (0..ENTRIES).step_by(97) {
        let v = 0x0101_0101_0101_0100 | (e & 0xFF);
        ws.store(array.offset(e * entry_bytes), v);
    }

    for _ in 0..cfg.per_thread() {
        let i = ws.rng().gen_range(ENTRIES);
        let j = ws.rng().gen_range(ENTRIES);
        ws.begin_tx();
        for w in 0..words_per_entry {
            let off = w * WORD_BYTES as u64;
            let a = array.offset(i * entry_bytes + off);
            let b = array.offset(j * entry_bytes + off);
            let va = ws.load(a);
            let vb = ws.load(b);
            ws.store(a, vb);
            ws.store(b, va);
        }
        ws.compute(10);
        ws.end_tx();
    }
    ws.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetSize, WorkloadConfig};
    use morlog_sim_core::Addr;

    #[test]
    fn small_swap_is_sixteen_stores() {
        let cfg = WorkloadConfig {
            threads: 1,
            total_transactions: 10,
            dataset: DatasetSize::Small,
            seed: 7,
            data_base: Addr::new(0x1000_0000),
        };
        let t = generate_thread(&cfg, 0);
        assert_eq!(t.transactions.len(), 10);
        for tx in &t.transactions {
            assert_eq!(tx.stores(), 16, "8 words swapped = 16 stores");
            assert_eq!(tx.loads(), 16);
        }
    }

    #[test]
    fn large_swap_scales_with_entry() {
        let cfg = WorkloadConfig {
            threads: 1,
            total_transactions: 2,
            dataset: DatasetSize::Large,
            seed: 7,
            data_base: Addr::new(0x1000_0000),
        };
        let t = generate_thread(&cfg, 0);
        assert_eq!(t.transactions[0].stores(), 1024, "512 words swapped");
    }

    #[test]
    fn swaps_mostly_move_identical_values() {
        // The point of SPS: most swapped values are equal (clean data).
        let cfg = WorkloadConfig {
            threads: 1,
            total_transactions: 50,
            dataset: DatasetSize::Small,
            seed: 7,
            data_base: Addr::new(0x1000_0000),
        };
        let t = generate_thread(&cfg, 0);
        let mut same = 0usize;
        let mut total = 0usize;
        for tx in &t.transactions {
            for op in &tx.ops {
                if let crate::trace::Op::Store(_, v) = op {
                    total += 1;
                    if *v == 0x0101_0101_0101_0101 {
                        same += 1;
                    }
                }
            }
        }
        assert!(
            same * 10 >= total * 8,
            "most stores rewrite the common value"
        );
    }
}
