//! The evaluation workloads (Table IV): transactional store/load traces for
//! the six micro-benchmarks (BTree, Hash, Queue, RBTree, SDG, SPS) and the
//! three WHISPER-style macro-benchmarks (Echo, YCSB, TPC-C new-order).
//!
//! Workloads run their real data-structure logic against a shadow memory
//! and record every transactional load and store (with actual values) into
//! a [`trace::WorkloadTrace`]; the simulator replays those traces on the
//! simulated cores. Values are real so that the clean-byte and
//! pattern-compressibility behaviour the paper measures (Fig. 5, Table II)
//! emerges from the data structures rather than from synthetic knobs.
//!
//! Memory is allocated with a persistent-heap allocator ([`heap`]), using
//! `pmalloc`/`pfree` semantics like the paper's modified WHISPER suite, and
//! every thread works in its own arena (isolation comes from software
//! locking in the paper; partitioning gives the same no-write-sharing
//! property).

#![deny(missing_docs)]

pub mod btree;
pub mod cache;
pub mod ctree;
pub mod echo;
pub mod hashmap;
pub mod heap;
pub mod memcached;
pub mod queue;
pub mod rbtree;
pub mod redis;
pub mod registry;
pub mod sdg;
pub mod sps;
pub mod tpcc;
pub mod trace;
pub mod vacation;
pub mod workspace;
pub mod ycsb;

pub use cache::{cached_generate, TraceCache};
pub use registry::{generate, DatasetSize, WorkloadConfig, WorkloadKind};
pub use trace::{Op, ThreadTrace, Transaction, WorkloadTrace};
pub use workspace::Workspace;
