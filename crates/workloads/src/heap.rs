//! A `pmalloc`/`pfree` persistent-heap allocator.
//!
//! The paper's macro-benchmarks are modified to allocate memory with
//! `pmalloc`/`pfree` instead of `mmap` (§VI-A). This allocator hands out
//! addresses from a per-thread arena of NVMM: size-class free lists over a
//! bump pointer. It manages *addresses only*; contents live in the
//! workload's shadow memory during generation and in the simulated NVMM at
//! run time.

use std::collections::HashMap;

use morlog_sim_core::Addr;

/// A persistent-heap arena.
///
/// # Example
///
/// ```
/// use morlog_workloads::heap::PHeap;
/// use morlog_sim_core::Addr;
/// let mut h = PHeap::new(Addr::new(0x1_0000), 4096);
/// let a = h.pmalloc(64);
/// let b = h.pmalloc(64);
/// assert_ne!(a, b);
/// h.pfree(a, 64);
/// assert_eq!(h.pmalloc(64), a, "freed block is recycled");
/// ```
#[derive(Debug, Clone)]
pub struct PHeap {
    base: Addr,
    limit: u64,
    brk: u64,
    free: HashMap<u64, Vec<Addr>>,
    live_bytes: u64,
}

impl PHeap {
    /// Creates an arena of `bytes` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 64-byte aligned.
    pub fn new(base: Addr, bytes: u64) -> Self {
        assert_eq!(base.as_u64() % 64, 0, "arena base must be line-aligned");
        PHeap {
            base,
            limit: bytes,
            brk: 0,
            free: HashMap::new(),
            live_bytes: 0,
        }
    }

    fn class(size: u64) -> u64 {
        // Round to 8 bytes; blocks of a cache line or more are line-aligned
        // so that "64 B dataset" nodes occupy exactly one line.
        let size = size.max(8).next_multiple_of(8);
        if size >= 64 {
            size.next_multiple_of(64)
        } else {
            size
        }
    }

    /// Allocates `size` bytes of persistent memory.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted — size the arena for the workload.
    pub fn pmalloc(&mut self, size: u64) -> Addr {
        let class = Self::class(size);
        self.live_bytes += class;
        if let Some(list) = self.free.get_mut(&class) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        if class >= 64 {
            self.brk = self.brk.next_multiple_of(64);
        }
        assert!(
            self.brk + class <= self.limit,
            "persistent arena exhausted: brk {} + {class} > {}",
            self.brk,
            self.limit
        );
        let addr = Addr::new(self.base.as_u64() + self.brk);
        self.brk += class;
        addr
    }

    /// Returns a block to its size-class free list.
    pub fn pfree(&mut self, addr: Addr, size: u64) {
        let class = Self::class(size);
        self.live_bytes = self.live_bytes.saturating_sub(class);
        self.free.entry(class).or_default().push(addr);
    }

    /// Bytes currently allocated (for arena-sizing assertions in tests).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of the bump pointer.
    pub fn high_water(&self) -> u64 {
        self.brk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_sized_blocks_are_line_aligned() {
        let mut h = PHeap::new(Addr::new(0), 1 << 20);
        h.pmalloc(8); // misalign the bump pointer
        let a = h.pmalloc(64);
        assert_eq!(a.as_u64() % 64, 0);
        let b = h.pmalloc(4096);
        assert_eq!(b.as_u64() % 64, 0);
    }

    #[test]
    fn small_blocks_pack() {
        let mut h = PHeap::new(Addr::new(0), 1 << 20);
        let a = h.pmalloc(8);
        let b = h.pmalloc(8);
        assert_eq!(b.as_u64() - a.as_u64(), 8);
    }

    #[test]
    fn free_list_recycles_per_class() {
        let mut h = PHeap::new(Addr::new(0), 1 << 20);
        let a = h.pmalloc(100); // class 128
        let _b = h.pmalloc(100);
        h.pfree(a, 100);
        assert_eq!(h.pmalloc(128), a, "same class recycles");
    }

    #[test]
    fn live_bytes_tracks_churn() {
        let mut h = PHeap::new(Addr::new(0), 1 << 20);
        let a = h.pmalloc(64);
        assert_eq!(h.live_bytes(), 64);
        h.pfree(a, 64);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut h = PHeap::new(Addr::new(0), 128);
        h.pmalloc(64);
        h.pmalloc(64);
        h.pmalloc(64);
    }
}
