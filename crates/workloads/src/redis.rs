//! Redis: an in-memory key-value store with an LRU list (one of the
//! paper's Fig. 3/Fig. 5 WHISPER profiling applications).
//!
//! A chained dictionary plus a doubly-linked LRU list. The characteristic
//! write pattern: *reads also write* — every GET moves its entry to the LRU
//! head, rewriting two or three pointer words, and the list-head word is
//! rewritten by every operation (extreme cross-operation temporal
//! locality).
//!
//! Entry layout: 0 = key, 1 = dict next, 2 = lru prev, 3 = lru next,
//! 4.. = value words.

use morlog_sim_core::{Addr, WORD_BYTES};

use crate::registry::WorkloadConfig;
use crate::trace::ThreadTrace;
use crate::workspace::Workspace;

const BUCKETS: u64 = 1024;
const KEY: u64 = 0;
const DNEXT: u64 = 8;
const LPREV: u64 = 16;
const LNEXT: u64 = 24;
const VALUE: u64 = 32;

fn hash(key: u64) -> u64 {
    (key.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 19) % BUCKETS
}

struct Redis {
    table: Addr,
    lru_head_p: Addr,
}

impl Redis {
    fn find(&self, ws: &mut Workspace, key: u64) -> u64 {
        let mut cur = ws.load(self.table.offset(hash(key) * 8));
        let mut hops = 0;
        while cur != 0 && hops < 16 {
            if ws.load(Addr::new(cur + KEY)) == key {
                return cur;
            }
            cur = ws.load(Addr::new(cur + DNEXT));
            hops += 1;
        }
        0
    }

    /// Unlinks `e` from the LRU list and reinserts it at the head — the
    /// pointer churn every GET performs.
    fn lru_touch(&self, ws: &mut Workspace, e: u64) {
        let head = ws.load(self.lru_head_p);
        if head == e {
            return;
        }
        let prev = ws.load(Addr::new(e + LPREV));
        let next = ws.load(Addr::new(e + LNEXT));
        if prev != 0 {
            ws.store(Addr::new(prev + LNEXT), next);
        }
        if next != 0 {
            ws.store(Addr::new(next + LPREV), prev);
        }
        ws.store(Addr::new(e + LPREV), 0);
        ws.store(Addr::new(e + LNEXT), head);
        if head != 0 {
            ws.store(Addr::new(head + LPREV), e);
        }
        ws.store(self.lru_head_p, e);
    }
}

/// Generates one thread's redis trace.
pub fn generate_thread(cfg: &WorkloadConfig, thread: usize) -> ThreadTrace {
    let mut ws = Workspace::new(cfg.data_base, thread, cfg.seed.wrapping_add(11));
    let entry_bytes = cfg.dataset.bytes();
    let value_words = ((entry_bytes - VALUE) / WORD_BYTES as u64).min(4);
    let r = Redis {
        table: ws.pmalloc(BUCKETS * 8),
        lru_head_p: ws.pmalloc(64),
    };
    let key_space: u64 = 4096;

    // Batched commands per durable transaction, like the other stores.
    const OPS_PER_TX: usize = 6;
    for _ in 0..cfg.per_thread() {
        ws.begin_tx();
        for _ in 0..OPS_PER_TX {
            let key = 1 + ws.rng().gen_range(key_space);
            if ws.rng().gen_bool(0.7) {
                // SET: update in place or insert at the bucket head.
                let found = r.find(&mut ws, key);
                let e = if found != 0 {
                    found
                } else {
                    let e = ws.pmalloc(entry_bytes).as_u64();
                    ws.store(Addr::new(e + KEY), key);
                    let bucket = r.table.offset(hash(key) * 8);
                    let head = ws.load(bucket);
                    ws.store(Addr::new(e + DNEXT), head);
                    ws.store(bucket, e);
                    e
                };
                for w in 0..value_words {
                    ws.store(Addr::new(e + VALUE + w * 8), (key * 3 + w) % 4096);
                }
                r.lru_touch(&mut ws, e);
            } else {
                // GET: loads plus the LRU pointer writes.
                let found = r.find(&mut ws, key);
                if found != 0 {
                    let _ = ws.load(Addr::new(found + VALUE));
                    r.lru_touch(&mut ws, found);
                }
            }
            ws.compute(8);
        }
        ws.end_tx();
    }
    ws.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetSize, WorkloadConfig};
    use crate::trace::Op;

    fn cfg(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads: 1,
            total_transactions: n,
            dataset: DatasetSize::Small,
            seed: 41,
            data_base: Addr::new(0x1000_0000),
        }
    }

    #[test]
    fn lru_head_is_rewritten_constantly() {
        let t = generate_thread(&cfg(200), 0);
        // The LRU head pointer word: find the most-stored address.
        let mut per_addr = std::collections::HashMap::new();
        for tx in &t.transactions {
            for op in &tx.ops {
                if let Op::Store(a, _) = op {
                    *per_addr.entry(a.as_u64()).or_insert(0u64) += 1;
                }
            }
        }
        let max = per_addr.values().copied().max().unwrap();
        assert!(max > 600, "the head word dominates stores ({max})");
    }

    #[test]
    fn gets_write_lru_pointers() {
        // Even read-dominated batches contain stores (the Redis LRU churn).
        let t = generate_thread(&cfg(300), 0);
        let storeless = t.transactions.iter().filter(|tx| tx.stores() == 0).count();
        assert!(
            storeless < 10,
            "almost no batch is store-free ({storeless})"
        );
    }

    #[test]
    fn lru_list_stays_consistent() {
        // Structural check on the shadow state: walk the LRU list from the
        // head; no cycles within a bounded length and prev/next agree.
        let c = cfg(400);
        let mut ws = Workspace::new(c.data_base, 0, c.seed.wrapping_add(11));
        let entry_bytes = c.dataset.bytes();
        let r = Redis {
            table: ws.pmalloc(BUCKETS * 8),
            lru_head_p: ws.pmalloc(64),
        };
        ws.begin_tx();
        let mut rng = morlog_sim_core::DetRng::new(4);
        for _ in 0..500 {
            let key = 1 + rng.gen_range(64);
            let found = r.find(&mut ws, key);
            let e = if found != 0 {
                found
            } else {
                let e = ws.pmalloc(entry_bytes).as_u64();
                ws.store(Addr::new(e + KEY), key);
                let bucket = r.table.offset(hash(key) * 8);
                let head = ws.load(bucket);
                ws.store(Addr::new(e + DNEXT), head);
                ws.store(bucket, e);
                e
            };
            r.lru_touch(&mut ws, e);
        }
        ws.end_tx();
        let mut seen = std::collections::HashSet::new();
        let mut cur = ws.peek(r.lru_head_p);
        let mut prev = 0u64;
        while cur != 0 {
            assert!(seen.insert(cur), "no cycle in the LRU list");
            assert_eq!(ws.peek(Addr::new(cur + LPREV)), prev, "prev agrees");
            prev = cur;
            cur = ws.peek(Addr::new(cur + LNEXT));
            assert!(seen.len() <= 64, "list bounded by distinct keys");
        }
        assert!(!seen.is_empty());
    }
}
