//! Keyed workload-trace cache.
//!
//! Every distinct `(kind, WorkloadConfig)` pair deterministically produces
//! the same [`WorkloadTrace`], so regenerating it per design (or per sweep
//! point) is pure waste — for the six-design comparison figures it is 6x
//! the trace-generation cost. The cache generates each distinct trace
//! exactly once and hands out `Arc` clones that are shared immutably
//! across simulations (and across sweep worker threads).
//!
//! Exactly-once generation is guaranteed even under concurrent lookups:
//! the map itself is only locked long enough to find or insert a per-key
//! [`OnceLock`] cell; generation runs outside the map lock inside
//! `OnceLock::get_or_init`, so concurrent requests for *different* keys
//! generate in parallel while concurrent requests for the *same* key
//! block on one generator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::registry::{generate, WorkloadConfig, WorkloadKind};
use crate::trace::WorkloadTrace;

/// A cache key: the full set of inputs `generate` depends on.
pub type TraceKey = (WorkloadKind, WorkloadConfig);

/// A keyed, thread-safe cache of generated workload traces.
#[derive(Default)]
pub struct TraceCache {
    cells: Mutex<HashMap<TraceKey, Arc<OnceLock<Arc<WorkloadTrace>>>>>,
    gen_counts: Mutex<HashMap<TraceKey, u64>>,
    generations: AtomicU64,
    hits: AtomicU64,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the trace for `(kind, cfg)`, generating it on first use and
    /// serving an `Arc` clone of the shared copy afterwards.
    pub fn get_or_generate(&self, kind: WorkloadKind, cfg: &WorkloadConfig) -> Arc<WorkloadTrace> {
        let key = (kind, *cfg);
        let cell = {
            let mut cells = self.cells.lock().unwrap();
            Arc::clone(cells.entry(key).or_default())
        };
        let mut generated = false;
        let trace = Arc::clone(cell.get_or_init(|| {
            generated = true;
            self.generations.fetch_add(1, Ordering::Relaxed);
            *self.gen_counts.lock().unwrap().entry(key).or_insert(0) += 1;
            Arc::new(generate(kind, cfg))
        }));
        if !generated {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        trace
    }

    /// Total number of traces actually generated (cache misses).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// How many times `generate` actually ran for one key. The cache
    /// invariant is that this never exceeds 1; sweeps assert on it to
    /// guard against regressing to per-design regeneration.
    pub fn generations_for(&self, kind: WorkloadKind, cfg: &WorkloadConfig) -> u64 {
        *self
            .gen_counts
            .lock()
            .unwrap()
            .get(&(kind, *cfg))
            .unwrap_or(&0)
    }

    /// Number of lookups served from the cache without generating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct traces currently cached.
    pub fn len(&self) -> usize {
        self.cells.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide trace cache shared by the bench harness.
pub fn global() -> &'static TraceCache {
    static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
    GLOBAL.get_or_init(TraceCache::new)
}

/// [`generate`] through the process-wide cache: each distinct
/// `(kind, cfg)` trace is generated once per process and shared.
pub fn cached_generate(kind: WorkloadKind, cfg: &WorkloadConfig) -> Arc<WorkloadTrace> {
    global().get_or_generate(kind, cfg)
}

// Traces are shared immutably across sweep worker threads; this is the
// compile-time audit that everything in a trace is thread-safe.
#[allow(dead_code)]
fn _trace_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<WorkloadTrace>();
    check::<TraceCache>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use morlog_sim_core::Addr;

    fn key_cfg(seed: u64) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::test_config(Addr::new(0x1000_0000));
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn same_key_generates_once_and_shares() {
        let cache = TraceCache::new();
        let cfg = key_cfg(7);
        let a = cache.get_or_generate(WorkloadKind::Sps, &cfg);
        let b = cache.get_or_generate(WorkloadKind::Sps, &cfg);
        assert!(Arc::ptr_eq(&a, &b), "hits must share the same trace");
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.generations_for(WorkloadKind::Sps, &cfg), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_generate_separately() {
        let cache = TraceCache::new();
        let cfg = key_cfg(7);
        let other = key_cfg(8);
        let a = cache.get_or_generate(WorkloadKind::Sps, &cfg);
        let b = cache.get_or_generate(WorkloadKind::Sps, &other);
        let c = cache.get_or_generate(WorkloadKind::Hash, &cfg);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a, b, "different seeds must differ");
        assert_ne!(a.name, c.name);
        assert_eq!(cache.generations(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cached_trace_matches_direct_generation() {
        let cache = TraceCache::new();
        let cfg = key_cfg(42);
        let cached = cache.get_or_generate(WorkloadKind::Queue, &cfg);
        let direct = generate(WorkloadKind::Queue, &cfg);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn concurrent_same_key_generates_once() {
        let cache = TraceCache::new();
        let cfg = key_cfg(9);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.get_or_generate(WorkloadKind::Hash, &cfg));
            }
        });
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.generations_for(WorkloadKind::Hash, &cfg), 1);
        assert_eq!(cache.hits(), 7);
    }
}
