//! Hash: insert/delete entries in a chained hash table (Table IV).

use morlog_sim_core::{Addr, WORD_BYTES};

use crate::registry::WorkloadConfig;
use crate::trace::ThreadTrace;
use crate::workspace::Workspace;

const BUCKETS: u64 = 1024;
/// Entry layout: word 0 = key, word 1 = next pointer, rest payload.
const KEY: u64 = 0;
const NEXT: u64 = 8;
const PAYLOAD: u64 = 16;

fn hash(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x % BUCKETS
}

/// Generates one thread's hash-table trace.
pub fn generate_thread(cfg: &WorkloadConfig, thread: usize) -> ThreadTrace {
    let mut ws = Workspace::new(cfg.data_base, thread, cfg.seed.wrapping_add(2));
    let entry_bytes = cfg.dataset.bytes();
    let payload_words = (entry_bytes - PAYLOAD) / WORD_BYTES as u64;
    let table = ws.pmalloc(BUCKETS * 8);
    let count_p = ws.pmalloc(64);
    let key_space: u64 = 8192;

    for _ in 0..cfg.per_thread() {
        let key = 1 + ws.rng().gen_range(key_space);
        let bucket = table.offset(hash(key) * 8);
        let insert = ws.rng().gen_bool(0.6);
        ws.begin_tx();
        if insert {
            let entry = ws.pmalloc(entry_bytes);
            ws.store(entry.offset(KEY), key);
            let head = ws.load(bucket);
            ws.store(entry.offset(NEXT), head);
            for w in 0..payload_words {
                ws.store(
                    entry.offset(PAYLOAD + w * 8),
                    key.wrapping_mul(w + 3) & 0xFFFF,
                );
            }
            ws.store(bucket, entry.as_u64());
            let c = ws.load(count_p);
            ws.store(count_p, c + 1);
        } else {
            // Delete the first chain entry matching the key, if any.
            let mut prev: Option<Addr> = None;
            let mut cur = ws.load(bucket);
            let mut hops = 0;
            while cur != 0 && hops < 64 {
                let k = ws.load(Addr::new(cur + KEY));
                if k == key {
                    let next = ws.load(Addr::new(cur + NEXT));
                    match prev {
                        Some(p) => ws.store(p.offset(NEXT), next),
                        None => ws.store(bucket, next),
                    }
                    let c = ws.load(count_p);
                    ws.store(count_p, c - 1);
                    ws.pfree(Addr::new(cur), entry_bytes);
                    break;
                }
                prev = Some(Addr::new(cur));
                cur = ws.load(Addr::new(cur + NEXT));
                hops += 1;
            }
        }
        ws.compute(15);
        ws.end_tx();
    }
    ws.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetSize, WorkloadConfig};
    use crate::trace::Op;

    fn cfg(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads: 1,
            total_transactions: n,
            dataset: DatasetSize::Small,
            seed: 11,
            data_base: Addr::new(0x1000_0000),
        }
    }

    #[test]
    fn inserts_store_entry_and_bucket() {
        let t = generate_thread(&cfg(50), 0);
        let inserts = t.transactions.iter().filter(|tx| tx.stores() >= 8).count();
        assert!(inserts > 0);
        // Small entry: key + next + 6 payload + bucket + count = 10 stores.
        let insert_tx = t.transactions.iter().find(|tx| tx.stores() >= 8).unwrap();
        assert_eq!(insert_tx.stores(), 10);
    }

    #[test]
    fn deletes_only_touch_pointers() {
        let t = generate_thread(&cfg(500), 0);
        let delete_with_hit = t
            .transactions
            .iter()
            .filter(|tx| tx.stores() > 0 && tx.stores() <= 3)
            .count();
        assert!(delete_with_hit > 0, "some deletes unlink an entry");
        // Failed deletes (key absent) store nothing.
        let noop = t.transactions.iter().filter(|tx| tx.stores() == 0).count();
        assert!(noop > 0, "some deletes miss");
    }

    #[test]
    fn chain_integrity_under_churn() {
        // Replay the trace's stores into a map and verify no store targets
        // an unallocated-looking address (all within the thread arena).
        let t = generate_thread(&cfg(300), 0);
        for tx in &t.transactions {
            for op in &tx.ops {
                if let Op::Store(a, _) = op {
                    assert!(a.as_u64() >= 0x1000_0000);
                    assert!(a.as_u64() < 0x1000_0000 + crate::workspace::ARENA_BYTES);
                }
            }
        }
    }
}
