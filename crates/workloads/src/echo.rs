//! Echo: a scalable key-value store (Table IV, from WHISPER).
//!
//! Echo is a versioned KV store: every put allocates a new version record,
//! links it into the key's chain, and bumps a global timestamp. The
//! timestamp and bucket heads are rewritten constantly — the temporal
//! locality that makes morphable logging shine on the macro-benchmarks
//! (§VI-D).

use morlog_sim_core::{Addr, WORD_BYTES};

use crate::registry::WorkloadConfig;
use crate::trace::ThreadTrace;
use crate::workspace::Workspace;

const BUCKETS: u64 = 2048;
/// Version record layout: key, timestamp, prev-version, value words.
const KEY: u64 = 0;
const TS: u64 = 8;
const PREV: u64 = 16;
const VALUE: u64 = 24;

fn hash(key: u64) -> u64 {
    (key.wrapping_mul(0xFF51_AFD7_ED55_8CCD) >> 17) % BUCKETS
}

/// Generates one thread's Echo trace.
pub fn generate_thread(cfg: &WorkloadConfig, thread: usize) -> ThreadTrace {
    let mut ws = Workspace::new(cfg.data_base, thread, cfg.seed.wrapping_add(6));
    let rec_bytes = cfg.dataset.bytes();
    let value_words = (rec_bytes - VALUE) / WORD_BYTES as u64;
    let table = ws.pmalloc(BUCKETS * 8);
    let meta = ws.pmalloc(64);
    let ts_p = meta; // global timestamp
    let puts_p = meta.offset(8); // operation counter
    let key_space: u64 = 4096;

    // Echo clients batch several operations per durable transaction; the
    // global timestamp word is rewritten once per put, giving the long
    // within-transaction write distances of Fig. 3.
    const OPS_PER_TX: usize = 8;
    for _ in 0..cfg.per_thread() {
        ws.begin_tx();
        for _ in 0..OPS_PER_TX {
            let key = 1 + ws.rng().gen_range(key_space);
            let bucket = table.offset(hash(key) * 8);
            let put = ws.rng().gen_bool(0.8);
            if put {
                let ts = ws.load(ts_p);
                ws.store(ts_p, ts + 1);
                // Update in place when the key exists (the common KV-store
                // case): rewrite the value words and stamp the new version.
                let mut cur = ws.load(bucket);
                let mut found = 0u64;
                let mut hops = 0;
                while cur != 0 && hops < 16 {
                    let k = ws.load(Addr::new(cur + KEY));
                    if k == key {
                        found = cur;
                        break;
                    }
                    cur = ws.load(Addr::new(cur + PREV));
                    hops += 1;
                }
                let rec = if found != 0 {
                    Addr::new(found)
                } else {
                    let rec = ws.pmalloc(rec_bytes);
                    ws.store(rec.offset(KEY), key);
                    let head = ws.load(bucket);
                    ws.store(rec.offset(PREV), head);
                    ws.store(bucket, rec.as_u64());
                    rec
                };
                ws.store(rec.offset(TS), ts + 1);
                // Values are textual-ish small words; rewrites of an existing
                // record change only a couple of bytes (Fig. 5's clean bytes).
                for w in 0..value_words {
                    ws.store(
                        rec.offset(VALUE + w * 8),
                        0x2020_2020_2020_0000 | ((ts + key + w) % 997),
                    );
                }
                let p = ws.load(puts_p);
                ws.store(puts_p, p + 1);
            } else {
                // Get: chase the newest version of the key (loads only).
                let mut cur = ws.load(bucket);
                let mut hops = 0;
                while cur != 0 && hops < 16 {
                    let k = ws.load(Addr::new(cur + KEY));
                    if k == key {
                        let _v = ws.load(Addr::new(cur + VALUE));
                        break;
                    }
                    cur = ws.load(Addr::new(cur + PREV));
                    hops += 1;
                }
            }
            ws.compute(8);
        }
        ws.end_tx();
    }
    ws.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetSize, WorkloadConfig};
    use crate::trace::Op;

    fn cfg(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads: 1,
            total_transactions: n,
            dataset: DatasetSize::Small,
            seed: 17,
            data_base: Addr::new(0x1000_0000),
        }
    }

    #[test]
    fn puts_dominate_and_bump_timestamp() {
        let t = generate_thread(&cfg(300), 0);
        let puts = t.transactions.iter().filter(|tx| tx.stores() > 0).count();
        assert!(
            puts > 290,
            "batches of 8 ops nearly always contain a put ({puts})"
        );
        // The timestamp word is the first store of every put.
        let ts_addr = t
            .transactions
            .iter()
            .find_map(|tx| {
                tx.ops.iter().find_map(|op| match op {
                    Op::Store(a, _) => Some(*a),
                    _ => None,
                })
            })
            .unwrap();
        let mut last_ts = 0;
        for tx in &t.transactions {
            for op in &tx.ops {
                if let Op::Store(a, v) = op {
                    if *a == ts_addr {
                        assert_eq!(*v, last_ts + 1, "timestamp strictly increments");
                        last_ts = *v;
                    }
                }
            }
        }
        assert!(last_ts > 0);
    }

    #[test]
    fn timestamp_word_repeats_within_transactions() {
        // The Fig. 3 motivation: the same word is updated more than once in
        // a transaction, with long distances between the updates.
        let t = generate_thread(&cfg(100), 0);
        let ts_addr = t.transactions[0]
            .ops
            .iter()
            .find_map(|op| match op {
                Op::Store(a, _) => Some(*a),
                _ => None,
            })
            .unwrap();
        let repeats = t
            .transactions
            .iter()
            .filter(|tx| {
                tx.ops
                    .iter()
                    .filter(|op| matches!(op, Op::Store(a, _) if *a == ts_addr))
                    .count()
                    > 1
            })
            .count();
        assert!(
            repeats > 80,
            "most batches bump the timestamp several times ({repeats})"
        );
    }
}
