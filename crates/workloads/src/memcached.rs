//! Memcached: a slab-allocated cache with per-class LRU eviction (one of
//! the paper's Fig. 3/Fig. 5 WHISPER profiling applications).
//!
//! Items live in pre-allocated slab chunks; a SET takes a chunk from the
//! free list or evicts the LRU tail; hits bump items to the LRU head.
//! Compared with `redis`, the distinguishing pattern is chunk *recycling*:
//! evicted chunks are rewritten with new items whose layout matches the old
//! one, producing the mostly-clean rewrites Fig. 5 measures.
//!
//! Chunk layout: 0 = key, 1 = hash next, 2-3 reserved (LRU order is
//! allocator metadata, kept in DRAM as real memcached does),
//! 4 = flags/size, 5.. = value words.

use morlog_sim_core::{Addr, WORD_BYTES};

use crate::registry::WorkloadConfig;
use crate::trace::ThreadTrace;
use crate::workspace::Workspace;

const BUCKETS: u64 = 512;
const CHUNKS: u64 = 512;
const KEY: u64 = 0;
const HNEXT: u64 = 8;
const FLAGS: u64 = 32;
const VALUE: u64 = 40;

fn hash(key: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 21) % BUCKETS
}

struct Slab {
    table: Addr,
    chunks: Addr,
    chunk_bytes: u64,
    /// Shadow-side free list and LRU order (allocator metadata lives in
    /// DRAM in real memcached; only item writes are transactional).
    free: Vec<u64>,
    lru: Vec<u64>, // front = most recent
}

impl Slab {
    fn find(&self, ws: &mut Workspace, key: u64) -> u64 {
        let mut cur = ws.load(self.table.offset(hash(key) * 8));
        let mut hops = 0;
        while cur != 0 && hops < 16 {
            if ws.load(Addr::new(cur + KEY)) == key {
                return cur;
            }
            cur = ws.load(Addr::new(cur + HNEXT));
            hops += 1;
        }
        0
    }

    fn unlink_hash(&self, ws: &mut Workspace, chunk: u64) {
        let key = ws.peek(Addr::new(chunk + KEY));
        let bucket = self.table.offset(hash(key) * 8);
        let mut prev = 0u64;
        let mut cur = ws.load(bucket);
        while cur != 0 {
            if cur == chunk {
                let next = ws.load(Addr::new(cur + HNEXT));
                if prev == 0 {
                    ws.store(bucket, next);
                } else {
                    ws.store(Addr::new(prev + HNEXT), next);
                }
                return;
            }
            prev = cur;
            cur = ws.load(Addr::new(cur + HNEXT));
        }
    }

    fn touch(&mut self, chunk: u64) {
        self.lru.retain(|&c| c != chunk);
        self.lru.insert(0, chunk);
    }
}

/// Generates one thread's memcached trace.
pub fn generate_thread(cfg: &WorkloadConfig, thread: usize) -> ThreadTrace {
    let mut ws = Workspace::new(cfg.data_base, thread, cfg.seed.wrapping_add(12));
    let chunk_bytes = cfg.dataset.bytes();
    let value_words = ((chunk_bytes - VALUE) / WORD_BYTES as u64).min(3);
    let mut slab = Slab {
        table: ws.pmalloc(BUCKETS * 8),
        chunks: ws.pmalloc(CHUNKS * chunk_bytes),
        chunk_bytes,
        free: (0..CHUNKS).rev().collect(),
        lru: Vec::new(),
    };
    // Pre-compute chunk addresses; free list holds indices.
    let chunk_addr = |i: u64, s: &Slab| s.chunks.offset(i * s.chunk_bytes).as_u64();
    let key_space: u64 = 2048;

    const OPS_PER_TX: usize = 6;
    for _ in 0..cfg.per_thread() {
        ws.begin_tx();
        for _ in 0..OPS_PER_TX {
            let key = 1 + ws.rng().gen_range(key_space);
            if ws.rng().gen_bool(0.6) {
                // SET.
                let found = slab.find(&mut ws, key);
                let chunk = if found != 0 {
                    found
                } else {
                    let idx = match slab.free.pop() {
                        Some(idx) => idx,
                        None => {
                            // Evict the LRU tail: unlink from its bucket;
                            // its chunk is recycled for the new item.
                            let victim = slab.lru.pop().expect("lru non-empty when full");
                            slab.unlink_hash(&mut ws, victim);
                            (victim - slab.chunks.as_u64()) / slab.chunk_bytes
                        }
                    };
                    let chunk = chunk_addr(idx, &slab);
                    ws.store(Addr::new(chunk + KEY), key);
                    let bucket = slab.table.offset(hash(key) * 8);
                    let head = ws.load(bucket);
                    ws.store(Addr::new(chunk + HNEXT), head);
                    ws.store(bucket, chunk);
                    chunk
                };
                // Items have similar layouts: recycled chunks are rewritten
                // with mostly-clean bytes (same flags, nearby values).
                ws.store(Addr::new(chunk + FLAGS), 0x10 | (value_words << 8));
                for w in 0..value_words {
                    ws.store(
                        Addr::new(chunk + VALUE + w * 8),
                        0x76_0000 | ((key + w) % 251),
                    );
                }
                slab.touch(chunk);
            } else {
                // GET.
                let found = slab.find(&mut ws, key);
                if found != 0 {
                    let _ = ws.load(Addr::new(found + VALUE));
                    slab.touch(found);
                }
            }
            ws.compute(8);
        }
        ws.end_tx();
    }
    ws.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetSize, WorkloadConfig};
    use crate::trace::Op;

    fn cfg(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads: 1,
            total_transactions: n,
            dataset: DatasetSize::Small,
            seed: 43,
            data_base: Addr::new(0x1000_0000),
        }
    }

    #[test]
    fn chunks_are_recycled_after_capacity() {
        // With 2048 keys and 512 chunks, evictions must recycle addresses:
        // the touched line set stays bounded by the slab.
        let t = generate_thread(&cfg(1500), 0);
        let mut lines = std::collections::HashSet::new();
        for tx in &t.transactions {
            for op in &tx.ops {
                if let Op::Store(a, _) = op {
                    lines.insert(a.line());
                }
            }
        }
        assert!(
            lines.len() <= (CHUNKS + BUCKETS / 8 + 8) as usize,
            "stores stay within the slab ({} lines)",
            lines.len()
        );
    }

    #[test]
    fn recycled_items_rewrite_mostly_clean_bytes() {
        use crate::trace::WorkloadTrace;
        let t = generate_thread(&cfg(1500), 0);
        let trace = WorkloadTrace {
            name: "memcached".into(),
            threads: vec![t],
        };
        // Clean-byte profile: the value/flags rewrites of recycled chunks
        // keep most bytes unchanged.
        let mut shadow = std::collections::HashMap::new();
        let (mut clean, mut total) = (0u64, 0u64);
        for (_, tx) in trace.iter_transactions() {
            for op in &tx.ops {
                if let Op::Store(a, v) = op {
                    let old = shadow.insert(a.as_u64(), *v).unwrap_or(0);
                    let dirty = morlog_sim_core::types::dirty_byte_mask(old, *v).count_ones();
                    clean += 8 - dirty as u64;
                    total += 8;
                }
            }
        }
        assert!(
            clean * 10 > total * 5,
            "majority-clean rewrites: {clean}/{total}"
        );
    }

    #[test]
    fn sets_and_gets_both_occur() {
        let t = generate_thread(&cfg(200), 0);
        assert!(t.transactions.iter().all(|tx| tx.loads() > 0));
        assert!(t.transactions.iter().filter(|tx| tx.stores() > 0).count() > 150);
    }
}
