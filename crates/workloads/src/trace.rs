//! The transaction-trace format replayed by the simulator.

use morlog_sim_core::Addr;

/// One operation of a transaction (or of non-transactional glue code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A 64-bit load from a word-aligned address.
    Load(Addr),
    /// A 64-bit store of `value` to a word-aligned address.
    Store(Addr, u64),
    /// `cycles` of non-memory work (address computation, comparisons...).
    Compute(u32),
}

/// One durable transaction: the ops between `Tx_Begin` and `Tx_End`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transaction {
    /// The operations, in program order.
    pub ops: Vec<Op>,
}

impl Transaction {
    /// Number of stores in the transaction.
    pub fn stores(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Store(..)))
            .count()
    }

    /// Number of loads in the transaction.
    pub fn loads(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Load(..)))
            .count()
    }
}

/// All transactions of one thread, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The transactions.
    pub transactions: Vec<Transaction>,
    /// Setup-phase (non-transactional) word writes: the NVMM image the
    /// thread's data structures start from. Pre-loaded before simulation.
    pub initial: Vec<(Addr, u64)>,
}

/// A complete workload: one trace per thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Workload name (paper's benchmark label).
    pub name: String,
    /// Per-thread transaction streams.
    pub threads: Vec<ThreadTrace>,
}

impl WorkloadTrace {
    /// Total transactions across threads.
    pub fn total_transactions(&self) -> usize {
        self.threads.iter().map(|t| t.transactions.len()).sum()
    }

    /// Total stores across threads.
    pub fn total_stores(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.transactions.iter())
            .map(|tx| tx.stores())
            .sum()
    }

    /// Iterates `(thread_index, transaction)` pairs.
    pub fn iter_transactions(&self) -> impl Iterator<Item = (usize, &Transaction)> + '_ {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(i, t)| t.transactions.iter().map(move |tx| (i, tx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let tx = Transaction {
            ops: vec![
                Op::Load(Addr::new(0)),
                Op::Store(Addr::new(8), 1),
                Op::Compute(3),
                Op::Store(Addr::new(16), 2),
            ],
        };
        assert_eq!(tx.stores(), 2);
        assert_eq!(tx.loads(), 1);
        let trace = WorkloadTrace {
            name: "t".into(),
            threads: vec![
                ThreadTrace {
                    transactions: vec![tx.clone()],
                    initial: Vec::new(),
                },
                ThreadTrace {
                    transactions: vec![tx.clone(), tx],
                    initial: Vec::new(),
                },
            ],
        };
        assert_eq!(trace.total_transactions(), 3);
        assert_eq!(trace.total_stores(), 6);
        assert_eq!(trace.iter_transactions().count(), 3);
    }
}
